//! Summed-area variance shadow maps (the GPU Gems 3 application the paper
//! cites), with both SATs computed on the virtual GPU.
//!
//! ```sh
//! cargo run --release --example variance_shadow_map
//! ```
//!
//! Builds a synthetic depth map (ground plane + floating box), computes the
//! SATs of depth and squared depth with the hybrid (1+r²)R1W algorithm, and
//! renders the filtered soft shadow a ground receiver sees.

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::{compute_sat, Matrix, SumTable};
use sat_image::synth::depth_map;
use sat_image::variance::VarianceShadowMap;

const RAMP: &[u8] = b"@%#*+=-:. "; // dark → light

fn render(title: &str, img: &Matrix<f64>) {
    println!("{title}:");
    for i in (0..img.rows()).step_by(2) {
        let mut line = String::new();
        for j in 0..img.cols() {
            let t = img.get(i, j).clamp(0.0, 1.0);
            let k = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            line.push(RAMP[k] as char);
        }
        println!("  {line}");
    }
}

fn main() {
    let (rows, cols) = (48, 64);
    let depth = depth_map(rows, cols);

    // Both SATs on the device; the hybrid picks its optimal ratio itself.
    let dev = Device::new(DeviceOptions::new(MachineConfig::with_width(16)));
    dev.reset_stats();
    let sat_d = compute_sat(&dev, SatAlgorithm::HybridR1W, &depth);
    let sat_d2 = compute_sat(&dev, SatAlgorithm::HybridR1W, &depth.map(|v| v * v));
    let stats = dev.stats();
    println!(
        "Two SATs on device: {} global ops, {} barrier steps\n",
        stats.global_ops(),
        stats.barrier_steps
    );

    let vsm = VarianceShadowMap::from_tables(
        SumTable::from_sat(sat_d),
        SumTable::from_sat(sat_d2),
        rows,
        cols,
    );

    // A receiver exactly on the ground plane: fully lit wherever the
    // ground itself is the nearest occluder, shadowed under the floating
    // box, with a Chebyshev penumbra at the box silhouette where the
    // filtered window mixes both depths.
    let receiver = Matrix::from_fn(rows, cols, |i, _| 10.0 + i as f64 * 0.05);
    let shadow = Matrix::from_fn(rows, cols, |i, j| {
        vsm.shadow_at(i, j, 3, receiver.get(i, j))
    });

    render(
        "Filtered light map (dark = shadowed, radius-3 kernel)",
        &shadow,
    );

    let umbra = shadow.as_slice().iter().filter(|&&l| l < 0.25).count();
    let penumbra = shadow
        .as_slice()
        .iter()
        .filter(|&&l| (0.25..0.95).contains(&l))
        .count();
    println!(
        "\n{umbra} umbra pixels, {penumbra} penumbra pixels (soft edge from the variance bound)."
    );
}
