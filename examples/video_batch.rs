//! Batched SATs for a stream of video frames: fuse the 1R1W wavefront
//! across the batch so its narrow corner stages finally hide latency.
//!
//! ```sh
//! cargo run --release --example video_batch
//! ```
//!
//! Computes the SAT of 16 synthetic frames two ways — one at a time versus
//! batch-fused — and compares launches and dependency-aware simulated time
//! per frame on the machine model.

use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_model::MachineConfig;
use hmm_sim::AsyncHmm;
use sat_core::par::{sat_1r1w, sat_1r1w_batch};
use sat_core::seq::sat_reference;
use sat_core::Matrix;
use sat_image::synth::scene_with_object;

fn main() {
    let (rows, cols, batch) = (128usize, 128usize, 16usize);
    let cfg = MachineConfig::with_width(16).latency(200).num_dmms(64);

    // Synthetic "video": the bright object drifts across the gradient.
    let frames: Vec<Matrix<f64>> = (0..batch)
        .map(|k| scene_with_object(rows, cols, 20 + 2 * k, 10 + 5 * k, 16, 16))
        .collect();
    println!(
        "{batch} frames of {rows}x{cols}, machine: w = {}, L = {}, d = {}\n",
        cfg.width, cfg.latency, cfg.num_dmms
    );

    // One frame at a time.
    let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
    for f in &frames {
        let a = GlobalBuffer::from_vec(f.as_slice().to_vec());
        let s = GlobalBuffer::filled(0.0f64, rows * cols);
        sat_1r1w(&dev, &a, &s, rows, cols);
    }
    let seq_launches = dev.launches();
    let seq_time = AsyncHmm::new(cfg).simulate(&dev.take_trace()).total_time;

    // Batch-fused wavefront.
    let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
    let ins: Vec<GlobalBuffer<f64>> = frames
        .iter()
        .map(|f| GlobalBuffer::from_vec(f.as_slice().to_vec()))
        .collect();
    let outs: Vec<GlobalBuffer<f64>> = (0..batch)
        .map(|_| GlobalBuffer::filled(0.0f64, rows * cols))
        .collect();
    sat_1r1w_batch(
        &dev,
        &ins.iter().collect::<Vec<_>>(),
        &outs.iter().collect::<Vec<_>>(),
        rows,
        cols,
    );
    let batch_launches = dev.launches();
    let batch_time = AsyncHmm::new(cfg).simulate(&dev.take_trace()).total_time;

    // Verify a couple of outputs while we are here (float tolerance:
    // different summation orders round differently).
    for (k, out) in outs.into_iter().enumerate().take(2) {
        let want = sat_reference(&frames[k]);
        let got = Matrix::from_vec(rows, cols, out.into_vec());
        let diff = got.max_abs_diff(&want);
        assert!(diff < 1e-6, "frame {k}: max diff {diff}");
    }

    println!(
        "{:<22} {:>10} {:>16} {:>16}",
        "strategy", "launches", "sim time", "per frame"
    );
    println!(
        "{:<22} {:>10} {:>16} {:>16.0}",
        "one frame at a time",
        seq_launches,
        seq_time,
        seq_time as f64 / batch as f64
    );
    println!(
        "{:<22} {:>10} {:>16} {:>16.0}",
        "wavefront fused",
        batch_launches,
        batch_time,
        batch_time as f64 / batch as f64
    );
    println!(
        "\nspeed-up per frame: {:.2}x with {}x fewer launches",
        seq_time as f64 / batch_time as f64,
        seq_launches / batch_launches
    );
}
