//! Tour of all six SAT algorithms of the paper on one input.
//!
//! ```sh
//! cargo run --release --example algorithm_tour [n]
//! ```
//!
//! Runs 2R2W, 4R4W, 4R1W, 2R1W, 1R1W and the hybrid (1+r²)R1W on an `n × n`
//! random matrix (default 256) with the GTX-780-Ti-calibrated machine
//! profile, verifies they all agree, and prints a live miniature of the
//! paper's Table I: measured reads/writes per element, access pattern,
//! barrier steps and the resulting global memory access cost.

use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_core::{compute_sat, par, seq, Matrix};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let cfg = MachineConfig::gtx780ti();
    let dev = Device::new(DeviceOptions::new(cfg));
    let gc = GlobalCost::new(cfg);

    println!(
        "SAT algorithms on a {n} x {n} matrix (w = {}, calibrated profile)\n",
        cfg.width
    );
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 256) as i64);
    let reference = seq::sat_reference(&a);

    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>9} {:>14} {:>14}",
        "algorithm", "R/elt", "W/elt", "stride%", "barriers", "measured cost", "Table I cost"
    );
    for alg in SatAlgorithm::ALL {
        // 4R1W needs 2n−1 kernel launches; cap it to keep the tour quick.
        if alg == SatAlgorithm::FourR1W && n > 1024 {
            println!("{:<12} (skipped for n > 1024: 2n-1 launches)", alg.name());
            continue;
        }
        dev.reset_stats();
        let sat = compute_sat(&dev, alg, &a);
        assert_eq!(sat, reference, "{alg:?} disagrees with the reference");
        let s = dev.stats();
        let stride_pct = 100.0 * s.stride_ops() as f64 / s.global_ops() as f64;
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>9.1}% {:>9} {:>14.0} {:>14.0}",
            alg.name(),
            s.reads_per_element(n),
            s.writes_per_element(n),
            stride_pct,
            s.barrier_steps,
            s.global_cost(&cfg),
            gc.cost(alg, n),
        );
    }
    // The pre-block-era baseline (reference [13]): log-step pairwise SAT.
    {
        dev.reset_stats();
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let tmp = GlobalBuffer::filled(0i64, n * n);
        par::sat_kogge_stone(&dev, &buf, &tmp, n, n);
        assert_eq!(buf.into_vec(), reference.as_slice());
        let s = dev.stats();
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>9.1}% {:>9} {:>14.0} {:>14}",
            "Kogge-Stone",
            s.reads_per_element(n),
            s.writes_per_element(n),
            100.0 * s.stride_ops() as f64 / s.global_ops() as f64,
            s.barrier_steps,
            s.global_cost(&cfg),
            "(Θ(n²·log n) ops)",
        );
    }

    println!("\nAll algorithms agree with the sequential reference.");
    println!(
        "Cost-model prediction for n = {n}: fastest = {}",
        gc.predicted_best(n).name()
    );
}
