//! Quickstart: compute the paper's Figure 3 example on the virtual GPU.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the summed area table of the paper's 9 × 9 worked example with the
//! memory-access-optimal 1R1W algorithm, prints input and SAT, answers a few
//! rectangle queries, and shows the memory-access statistics the machine
//! model collected along the way.

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::fixtures::{fig3_input, FIG_BLOCK_WIDTH};
use sat_core::{compute_sat, Matrix, Rect, SumTable};

fn print_matrix(title: &str, m: &Matrix<i64>) {
    println!("{title}:");
    for i in 0..m.rows() {
        let row: Vec<String> = (0..m.cols())
            .map(|j| format!("{:>3}", m.get(i, j)))
            .collect();
        println!("  {}", row.join(" "));
    }
}

fn main() {
    // The paper's figures use block width w = 3 for the 9 × 9 example.
    let cfg = MachineConfig::with_width(FIG_BLOCK_WIDTH);
    let dev = Device::new(DeviceOptions::new(cfg));

    let input = fig3_input();
    print_matrix("Input matrix (Figure 3, left)", &input);

    dev.reset_stats();
    let sat = compute_sat(&dev, SatAlgorithm::OneR1W, &input);
    print_matrix("\nSummed area table (Figure 3, right)", &sat);

    let stats = dev.stats();
    println!("\n1R1W memory access statistics on the asynchronous HMM:");
    println!(
        "  reads/element  = {:.3}  (optimal: every element read exactly once)",
        stats.reads_per_element(9)
    );
    println!(
        "  writes/element = {:.3}  (optimal: every result written exactly once)",
        stats.writes_per_element(9)
    );
    println!(
        "  barrier steps  = {} (block wavefront stages)",
        stats.barrier_steps
    );
    println!(
        "  coalesced/stride ops = {}/{}",
        stats.coalesced_ops(),
        stats.stride_ops()
    );

    let table = SumTable::from_sat(sat);
    println!("\nO(1) rectangle queries:");
    for (name, rect) in [
        ("whole image        ", Rect::new(0, 0, 8, 8)),
        ("centre 3x3 block   ", Rect::new(3, 3, 5, 5)),
        ("bottom-right corner", Rect::new(6, 6, 8, 8)),
        ("single pixel (4,4) ", Rect::new(4, 4, 4, 4)),
    ] {
        println!("  sum over {name} = {}", table.sum(rect));
    }
}
