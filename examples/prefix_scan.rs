//! Device-side 1-D prefix sums and a rectangular (non-square) image SAT.
//!
//! ```sh
//! cargo run --release --example prefix_scan
//! ```
//!
//! Demonstrates the two library extensions beyond the paper's square-matrix
//! setting: the 1-D scan primitive (same three-phase structure as the block
//! SAT algorithms) and a 270 × 480 image processed without square padding.

use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::scan::{inclusive_scan, inclusive_scan_host};
use sat_core::{compute_sat, Matrix, Rect, SumTable};

fn main() {
    let dev = Device::new(DeviceOptions::new(MachineConfig::with_width(32)));

    // --- 1-D prefix sums -------------------------------------------------
    let len = 1_000_000;
    let input: Vec<i64> = (0..len as i64).map(|i| (i * 37 + 11) % 101 - 50).collect();
    let gin = GlobalBuffer::from_vec(input.clone());
    let gout = GlobalBuffer::filled(0i64, len);
    dev.reset_stats();
    inclusive_scan(&dev, &gin, &gout, len);
    let stats = dev.stats();
    let result = gout.into_vec();
    assert_eq!(result, inclusive_scan_host(&input));
    println!("1-D inclusive scan of {len} elements on the device:");
    println!(
        "  {} global ops ({:.3} per element), {} barrier steps, all coalesced: {}",
        stats.global_ops(),
        stats.global_ops() as f64 / len as f64,
        stats.barrier_steps,
        stats.stride_ops() == 0
    );
    println!("  last prefix value = {}\n", result[len - 1]);

    // --- rectangular SAT --------------------------------------------------
    // A 270 × 480 "video frame": padded to 288 × 480 blocks internally
    // (not to 480 × 480 — no square-padding waste).
    let (rows, cols) = (270usize, 480usize);
    let frame = Matrix::from_fn(rows, cols, |i, j| ((i * 7 + j * 3) % 256) as i64);
    dev.reset_stats();
    let sat = compute_sat(&dev, SatAlgorithm::HybridR1W, &frame);
    let stats = dev.stats();
    println!("SAT of a {rows} x {cols} frame (hybrid algorithm, rectangular block grid):");
    println!(
        "  padded to {} x {}; {} global ops, {} barriers",
        rows.next_multiple_of(32),
        cols.next_multiple_of(32),
        stats.global_ops(),
        stats.barrier_steps
    );
    let table = SumTable::from_sat(sat);
    let centre = Rect::new(rows / 4, cols / 4, 3 * rows / 4, 3 * cols / 4);
    println!(
        "  mean brightness of the centre half: {:.2}",
        table.sum(centre) as f64 / centre.area() as f64
    );
    let full = Rect::new(0, 0, rows - 1, cols - 1);
    let brute: i64 = frame.as_slice().iter().sum();
    assert_eq!(table.sum(full), brute);
    println!("  total checked against direct summation: {brute}");
}
