//! Image-processing pipeline: device-computed SAT → box filter → adaptive
//! threshold.
//!
//! ```sh
//! cargo run --release --example box_filter
//! ```
//!
//! Generates a synthetic scene (radial gradient + bright object), computes
//! its SAT on the virtual GPU with the 1R1W algorithm, mean-filters it and
//! segments the object with Bradley–Roth adaptive thresholding, rendering
//! the stages as ASCII art.

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::{compute_sat, Matrix, SumTable};
use sat_image::boxfilter::mean_filter;
use sat_image::synth::scene_with_object;
use sat_image::threshold::adaptive_threshold;

const RAMP: &[u8] = b" .:-=+*#%@";

fn render(title: &str, img: &Matrix<f64>) {
    let (lo, hi) = img
        .as_slice()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    println!("{title}:");
    for i in (0..img.rows()).step_by(2) {
        let mut line = String::new();
        for j in 0..img.cols() {
            let t = if hi > lo {
                (img.get(i, j) - lo) / (hi - lo)
            } else {
                0.0
            };
            let k = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            line.push(RAMP[k] as char);
        }
        println!("  {line}");
    }
}

fn main() {
    let (rows, cols) = (48, 64);
    let img = scene_with_object(rows, cols, 10, 42, 9, 12);
    render("Input scene (gradient + object)", &img);

    // SAT on the virtual GPU with the memory-optimal algorithm.
    let dev = Device::new(DeviceOptions::new(MachineConfig::with_width(16)));
    dev.reset_stats();
    let sat = compute_sat(&dev, SatAlgorithm::OneR1W, &img);
    let stats = dev.stats();
    println!(
        "\nSAT built on device: {} global ops ({} coalesced, {} stride), {} barriers",
        stats.global_ops(),
        stats.coalesced_ops(),
        stats.stride_ops(),
        stats.barrier_steps
    );

    let table = SumTable::from_sat(sat);
    let smoothed = mean_filter(&table, 3);
    render("\nMean-filtered (radius 3, O(1) per pixel)", &smoothed);

    let bin = adaptive_threshold(&img, 6, 0.10);
    render(
        "\nAdaptive threshold (Bradley-Roth, r = 6, t = 0.10)",
        &bin.map(|v| v as f64),
    );
    let on: usize = bin.as_slice().iter().map(|&v| v as usize).sum();
    println!("\nSegmented {on} foreground pixels out of {}.", rows * cols);
}
