//! # sat-hmm — reproduction of "Parallel Algorithms for the Summed Area
//! # Table on the Asynchronous Hierarchical Memory Machine" (ICPP 2014)
//!
//! Umbrella crate re-exporting the workspace members:
//!
//! * [`hmm_model`] — the DMM/UMM/HMM machine models, diagonal arrangement
//!   and the global memory access cost model (Table I closed forms);
//! * [`gpu_exec`] — a CUDA-like virtual GPU on OS threads with
//!   asynchronous-HMM semantics and transaction accounting;
//! * [`hmm_sim`] — discrete-event replay of recorded executions on
//!   `d` DMM pipelines + one UMM pipeline;
//! * [`sat_core`] — the six SAT algorithms (2R2W, 4R4W, 4R1W, 2R1W, 1R1W,
//!   (1+r²)R1W), CPU baselines, block transpose and rectangle queries;
//! * [`sat_image`] — image-processing applications (box filter, variance
//!   shadow maps, adaptive threshold, Haar features, template matching).
//!
//! See the workspace `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use gpu_exec;
pub use hmm_model;
pub use hmm_sim;
pub use sat_core;
pub use sat_image;
