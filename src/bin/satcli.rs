//! `satcli` — command-line front end for the SAT pipelines.
//!
//! ```text
//! satcli gen <out.pgm> [--kind gradient|checker|noise|scene] [--size RxC] [--seed S]
//! satcli sat <in.pgm> <out.pgm> [--alg ALG]       # SAT, normalised to 16-bit
//! satcli boxfilter <in.pgm> <out.pgm> [--radius R] [--alg ALG]
//! satcli threshold <in.pgm> <out.pgm> [--radius R] [--t F]
//! satcli variance <in.pgm> <out.pgm> [--radius R]
//! satcli stats <in.pgm> [--alg ALG]               # access statistics + cost
//! ```
//!
//! `ALG` ∈ {2r2w, 4r4w, 4r1w, 2r1w, 1r1w, hybrid} (default: hybrid).
//! Everything runs on the virtual GPU with the GTX-780-Ti-calibrated
//! machine profile; `stats` prints the Table-I-style accounting for the
//! chosen algorithm on the given image.

use std::process::ExitCode;

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::{compute_sat, Matrix, SumTable};
use sat_image::boxfilter::mean_filter;
use sat_image::pgm;
use sat_image::synth;
use sat_image::threshold::adaptive_threshold;
use sat_image::variance::local_variance;

fn parse_alg(s: &str) -> Result<SatAlgorithm, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "2r2w" => SatAlgorithm::TwoR2W,
        "4r4w" => SatAlgorithm::FourR4W,
        "4r1w" => SatAlgorithm::FourR1W,
        "2r1w" => SatAlgorithm::TwoR1W,
        "1r1w" => SatAlgorithm::OneR1W,
        "hybrid" | "1.25r1w" => SatAlgorithm::HybridR1W,
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn flag_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for {name}: {v:?}")),
    }
}

fn device() -> Device {
    Device::new(DeviceOptions::new(MachineConfig::gtx780ti()))
}

fn load(path: &str) -> Result<Matrix<f64>, String> {
    Ok(pgm::read_pgm(path)
        .map_err(|e| format!("reading {path}: {e}"))?
        .pixels)
}

fn save(path: &str, img: &Matrix<f64>, maxval: u32) -> Result<(), String> {
    pgm::write_pgm(path, img, maxval).map_err(|e| format!("writing {path}: {e}"))
}

fn run() -> Result<(), String> {
    let all: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, args) = all.split_first().ok_or_else(|| {
        "usage: satcli <gen|sat|boxfilter|threshold|variance|stats> …".to_string()
    })?;
    match cmd.as_str() {
        "gen" => {
            let out = args.first().ok_or("gen: missing output path")?;
            let size = flag(args, "--size").unwrap_or("256x256");
            let (r, c) = size
                .split_once('x')
                .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                .ok_or_else(|| format!("bad --size {size:?} (want RxC)"))?;
            let seed: u64 = flag_parse(args, "--seed", 42)?;
            let kind = flag(args, "--kind").unwrap_or("scene");
            let img = match kind {
                "gradient" => synth::radial_gradient(r, c),
                "checker" => synth::checkerboard(r, c, 16),
                "noise" => synth::noise(r, c, seed),
                "scene" => synth::scene_with_object(r, c, r / 4, c / 2, r / 6, c / 6),
                other => return Err(format!("unknown --kind {other:?}")),
            };
            save(out, &img, 255)?;
            println!("wrote {r}x{c} {kind} image to {out}");
        }
        "sat" => {
            let input = args.first().ok_or("sat: missing input")?;
            let output = args.get(1).ok_or("sat: missing output")?;
            let alg = parse_alg(flag(args, "--alg").unwrap_or("hybrid"))?;
            let img = load(input)?;
            let dev = device();
            let sat = compute_sat(&dev, alg, &img);
            // Normalise monotone SAT values into 16 bits for viewing.
            let max = sat.get(sat.rows() - 1, sat.cols() - 1).max(1.0);
            let norm = sat.map(|v| v / max * 65535.0);
            save(output, &norm, 65535)?;
            println!(
                "SAT of {}x{} via {} → {output} (total sum {max})",
                img.rows(),
                img.cols(),
                alg.name()
            );
        }
        "boxfilter" => {
            let input = args.first().ok_or("boxfilter: missing input")?;
            let output = args.get(1).ok_or("boxfilter: missing output")?;
            let radius: usize = flag_parse(args, "--radius", 4)?;
            let alg = parse_alg(flag(args, "--alg").unwrap_or("hybrid"))?;
            let img = load(input)?;
            let dev = device();
            let table = SumTable::from_sat(compute_sat(&dev, alg, &img));
            let filtered = mean_filter(&table, radius);
            save(output, &filtered, 255)?;
            println!("mean-filtered (r = {radius}) via {} → {output}", alg.name());
        }
        "threshold" => {
            let input = args.first().ok_or("threshold: missing input")?;
            let output = args.get(1).ok_or("threshold: missing output")?;
            let radius: usize = flag_parse(args, "--radius", 8)?;
            let t: f64 = flag_parse(args, "--t", 0.15)?;
            let img = load(input)?;
            let bin = adaptive_threshold(&img, radius, t);
            save(output, &bin.map(|v| v as f64 * 255.0), 255)?;
            let on: usize = bin.as_slice().iter().map(|&v| v as usize).sum();
            println!("adaptive threshold (r = {radius}, t = {t}) → {output} ({on} foreground px)");
        }
        "variance" => {
            let input = args.first().ok_or("variance: missing input")?;
            let output = args.get(1).ok_or("variance: missing output")?;
            let radius: usize = flag_parse(args, "--radius", 3)?;
            let img = load(input)?;
            let var = local_variance(&img, radius);
            let max = var.as_slice().iter().fold(1.0f64, |m, &v| m.max(v));
            save(output, &var.map(|v| v / max * 255.0), 255)?;
            println!("local variance (r = {radius}) → {output} (max {max:.1})");
        }
        "stats" => {
            let input = args.first().ok_or("stats: missing input")?;
            let alg = parse_alg(flag(args, "--alg").unwrap_or("hybrid"))?;
            let img = load(input)?;
            let dev = device();
            dev.reset_stats();
            let _ = compute_sat(&dev, alg, &img);
            let s = dev.stats();
            let cfg = dev.config();
            // Per-element rates over the padded device matrix.
            let w = cfg.width;
            let area = (img.rows().next_multiple_of(w) * img.cols().next_multiple_of(w)) as f64;
            println!(
                "{} on {}x{} ({}):",
                alg.name(),
                img.rows(),
                img.cols(),
                input
            );
            println!(
                "  reads/element    {:.3}",
                (s.coalesced_reads + s.stride_reads) as f64 / area
            );
            println!(
                "  writes/element   {:.3}",
                (s.coalesced_writes + s.stride_writes) as f64 / area
            );
            println!("  coalesced ops    {}", s.coalesced_ops());
            println!("  stride ops       {}", s.stride_ops());
            println!("  barrier steps    {}", s.barrier_steps);
            println!("  shared ops       {}", s.shared_reads + s.shared_writes);
            println!("  model cost       {:.0} time units", s.global_cost(cfg));
        }
        other => {
            return Err(format!(
                "unknown command {other:?}; see --help in the module docs"
            ))
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("satcli: {e}");
            ExitCode::FAILURE
        }
    }
}
