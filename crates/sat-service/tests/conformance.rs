//! Model-conformance observatory, end to end: a fault-free service's
//! online fit converges to the configured machine with zero drift alerts,
//! and a fleet with one chronically slow shard raises a localized
//! shard-relative drift alert that reaches the flight recorder, the
//! post-mortem directory, and `/debug/conformance`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use gpu_exec::FaultPlan;
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::Matrix;
use sat_service::{PostmortemConfig, Service, ServiceConfig, TelemetryConfig};

fn image(seed: usize) -> Matrix<f64> {
    Matrix::from_fn(16, 16, |i, j| {
        ((i * 31 + j * 7 + seed * 13) % 29) as f64 - 14.0
    })
}

fn base_config() -> ServiceConfig {
    ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(2),
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_micros(200),
        default_deadline: Duration::from_secs(30),
        observer: obs::Obs::new(),
        ..ServiceConfig::default()
    }
}

/// Minimal HTTP GET against the telemetry listener; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("telemetry listener up");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    body.to_string()
}

#[test]
fn fault_free_service_converges_to_the_configured_machine() {
    let service = Service::start(base_config());
    let client = service.client();
    for k in 0..24usize {
        client
            .submit(image(k), SatAlgorithm::OneR1W, None)
            .expect("accepted");
    }
    let fit = service.conformance().fit();
    assert!(fit.samples >= 24, "{fit:?}");
    assert!(fit.converged, "the online fit must converge: {fit:?}");
    // The fitted parameters recover the configured machine: width 4 and
    // Λ = latency + barrier_overhead = 100, within the default tolerance
    // the check.sh gate also uses.
    let machine = MachineConfig::with_width(4);
    assert!(
        fit.matches(machine.width as u64, machine.window_overhead(), 0.1),
        "fitted (w, Λ) = ({}, {}) vs configured ({}, {})",
        fit.width,
        fit.window_overhead,
        machine.width,
        machine.window_overhead()
    );
    assert_eq!(
        service.conformance().alerts().len(),
        0,
        "a fault-free run never drifts"
    );
    // The observatory's gauges and histograms ride the shared registry.
    let text = service.metrics_text();
    for family in [
        "sat_service_model_samples_total",
        "sat_service_model_fitted_width",
        "sat_service_model_fitted_window_overhead",
        "sat_service_model_fit_converged 1",
        "sat_service_model_tau_ns",
        "sat_service_model_residual_relative",
        "sat_service_model_drift_alerts_total 0",
    ] {
        assert!(text.contains(family), "scrape is missing {family}:\n{text}");
    }
    // The report carries the contract fields and buckets the traffic under
    // its (algorithm, shape) cell.
    let report = service.conformance_report();
    assert!(
        report.contains("\"schema\":\"sat-hmm/conformance/v1\""),
        "{report}"
    );
    assert!(report.contains("\"1R1W/16x16\""), "{report}");
    assert!(report.contains("\"drifted\":false"), "{report}");
    service.shutdown();
}

#[test]
fn chronically_slow_shard_raises_a_localized_drift_alert() {
    // Shard 2 of 4 straggles on every launch from launch 0 — its own
    // baseline absorbs the slowness, so only the shard-relative channel
    // (own baseline vs sibling-median) can catch it.
    let dir = std::env::temp_dir().join(format!(
        "sat-conformance-drift-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let slow = FaultPlan::new(9).straggler(1.0, Duration::from_millis(1));
    let mut cfg = ServiceConfig {
        shards: 4,
        shard_fault_plans: vec![None, None, Some(slow), None],
        postmortem: PostmortemConfig {
            dir: Some(dir.clone()),
            max_bundles: 2,
            ..PostmortemConfig::default()
        },
        telemetry: TelemetryConfig {
            listen: Some("127.0.0.1:0".to_string()),
        },
        ..base_config()
    };
    // Short baselines so every shard's cell freezes its baseline quickly,
    // and drift bands widened well past scheduler noise: concurrent test
    // processes can slow a healthy shard a few-fold, but the injected
    // 1 ms-per-launch straggler sits at ≥20× its siblings — only a
    // chronic ≥6× asymmetry may alert here.
    let mut ccfg = obs::ConformanceConfig::for_machine(0, 0);
    ccfg.baseline_samples = 6;
    ccfg.drift_slack = 8.0;
    ccfg.shard_relative_band = 5.0;
    cfg.conformance = Some(ccfg);
    let service = Service::start(cfg);
    let addr = service.telemetry_addr().expect("listener configured");
    let client = service.client();
    for k in 0..48usize {
        client
            .submit(image(k), SatAlgorithm::OneR1W, None)
            .expect("accepted");
        if !service.conformance().alerts().is_empty() && k >= 8 {
            break;
        }
    }
    let alerts = service.conformance().alerts();
    assert!(!alerts.is_empty(), "the slow shard must be caught");
    assert!(
        alerts.iter().all(|a| a.cell.ends_with("@s2")),
        "only shard 2 drifted: {alerts:?}"
    );
    assert!(
        alerts.iter().any(|a| a.channel == "shard_relative"),
        "chronic slowness is the relative channel's case: {alerts:?}"
    );

    // The report names the offending cell, over HTTP and programmatically.
    let report = http_get(addr, "/debug/conformance");
    assert_eq!(report, service.conformance_report());
    assert!(
        report.contains("\"schema\":\"sat-hmm/conformance/v1\""),
        "{report}"
    );
    assert!(report.contains("@s2"), "{report}");
    assert!(report.contains("\"drifted\":true"), "{report}");
    assert!(
        report.contains("\"channel\":\"shard_relative\""),
        "{report}"
    );

    // The alert reached the flight recorder as a v3 DriftAlert event…
    let flight = http_get(addr, "/debug/flight");
    assert!(
        flight.contains("\"schema\":\"sat-hmm/flight/v3\""),
        "{flight}"
    );
    assert!(flight.contains("\"kind\":\"drift_alert\""), "{flight}");

    service.shutdown();

    // …and a drift-triggered post-mortem bundle was dumped and validates.
    let bundles: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!bundles.is_empty(), "drift must dump a bundle in {dir:?}");
    let drift_bundle = bundles
        .iter()
        .map(|p| std::fs::read_to_string(p).unwrap())
        .find(|text| text.contains("\"reason\":\"drift\""))
        .expect("one bundle carries the drift trigger");
    let stats = obs::flight::validate(&drift_bundle).expect("bundle validates");
    assert!(stats.events > 0);
    std::fs::remove_dir_all(&dir).ok();
}
