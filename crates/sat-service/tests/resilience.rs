//! Chaos tests: the service must survive every injected fault class with
//! bit-exact results — retrying, tripping the breaker, and degrading to
//! the CPU path rather than erroring.

use std::time::Duration;

use gpu_exec::{FaultPlan, LossWindow};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::{seq::sat_reference, Matrix};
use sat_service::{ResilienceConfig, Service, ServiceConfig};

fn image(seed: usize) -> Matrix<f64> {
    // Integer-valued so GPU, batched, and CPU paths all sum exactly and
    // results are bit-comparable across paths.
    Matrix::from_fn(16, 16, |i, j| {
        ((i * 31 + j * 7 + seed * 13) % 29) as f64 - 14.0
    })
}

fn chaos_config(plan: FaultPlan) -> ServiceConfig {
    ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(2),
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_micros(200),
        default_deadline: Duration::from_secs(30),
        fault_plan: Some(plan),
        resilience: ResilienceConfig {
            breaker_cooldown: Duration::from_millis(10),
            ..ResilienceConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// Submit `count` requests sequentially and assert every reply is the
/// bit-exact reference SAT.
fn submit_and_check(service: &Service, count: usize) {
    let client = service.client();
    for k in 0..count {
        let img = image(k);
        let got = client
            .submit(img.clone(), SatAlgorithm::OneR1W, None)
            .expect("self-healing service never errors");
        let want = sat_reference(&img);
        assert_eq!(got.sat().as_slice(), want.as_slice(), "request {k}");
    }
}

#[test]
fn launch_aborts_are_retried_to_bit_exact_results() {
    let service = Service::start(chaos_config(FaultPlan::new(42).launch_abort_p(0.5)));
    submit_and_check(&service, 8);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8);
    assert!(stats.attempts_failed > 0, "seed 42 must abort something");
    assert!(
        stats.retries > 0 || stats.degraded > 0,
        "failed attempts were either retried or degraded: {stats:?}"
    );
}

#[test]
fn silent_corruption_is_caught_by_verification_and_healed() {
    let service = Service::start(chaos_config(FaultPlan::new(7).corrupt_p(0.1)));
    submit_and_check(&service, 8);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8);
    assert!(
        stats.verify_fail > 0,
        "corruption at p=0.1 must trip verification: {stats:?}"
    );
    assert!(
        stats.verify_pass > 0,
        "clean attempts also verified: {stats:?}"
    );
}

#[test]
fn device_loss_opens_breaker_degrades_then_canary_recloses() {
    let plan = FaultPlan::new(9).loss(LossWindow::Wall {
        start_after_launch: 0,
        duration: Duration::from_millis(50),
    });
    let service = Service::start(chaos_config(plan));
    // Phase 1: inside the loss window every launch fails; the breaker
    // opens and requests complete on the CPU path.
    submit_and_check(&service, 4);
    let mid = service.stats();
    assert!(
        mid.breaker_opened >= 1,
        "loss must trip the breaker: {mid:?}"
    );
    assert!(mid.degraded >= 1, "open breaker degrades to CPU: {mid:?}");
    assert_eq!(mid.completed, 4, "degraded requests still complete");

    // Phase 2: after the window and the cooldown, a half-open canary finds
    // the device healthy and re-closes the breaker.
    std::thread::sleep(Duration::from_millis(80));
    submit_and_check(&service, 4);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8);
    assert!(stats.canary_probes >= 1, "{stats:?}");
    assert!(stats.breaker_closed >= 1, "canary re-closed: {stats:?}");
}

#[test]
fn fault_free_config_never_pays_for_verification() {
    // VerifyMode::Auto with no fault plan: the whole resilience layer must
    // stay off the hot path — no verification sweeps, no breaker churn,
    // no degradation.
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(2),
        max_linger: Duration::from_micros(200),
        observer: obs::Obs::disabled(),
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    submit_and_check(&service, 8);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.verify_pass + stats.verify_fail, 0, "no sweeps ran");
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.canary_probes, 0);
    assert_eq!(
        stats.breaker_opened + stats.breaker_half_open + stats.breaker_closed,
        0
    );
    assert_eq!(stats.attempts_failed, 0);
    assert_eq!(stats.attempts_ok, stats.batches);
}

#[test]
fn always_mode_verifies_clean_traffic_and_passes() {
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(0),
        observer: obs::Obs::disabled(),
        resilience: ResilienceConfig {
            verify: sat_service::VerifyMode::Always,
            ..ResilienceConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    submit_and_check(&service, 4);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.verify_pass, 4);
    assert_eq!(stats.verify_fail, 0);
}

#[test]
fn combined_fault_schedule_stays_bit_exact() {
    // Every class at once — the acceptance-gate shape.
    let plan = FaultPlan::new(1)
        .launch_abort_p(0.05)
        .corrupt_p(0.02)
        .straggler(0.05, Duration::from_micros(10))
        .loss(LossWindow::Launches {
            start: 20,
            count: 3,
        });
    let service = Service::start(chaos_config(plan));
    submit_and_check(&service, 24);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.rejected_deadline, 0);
}
