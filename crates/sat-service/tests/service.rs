//! Integration tests: concurrent mixed-shape traffic, deadlines,
//! backpressure, graceful drain, and batching efficiency.

use std::time::Duration;

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::{compute_sat, Matrix};
use sat_service::{Service, ServiceConfig, ServiceError};

fn small_config() -> ServiceConfig {
    ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(2),
        queue_capacity: 64,
        max_batch: 8,
        max_linger: Duration::from_millis(2),
        default_deadline: Duration::from_secs(30),
        ..ServiceConfig::default()
    }
}

fn image(rows: usize, cols: usize, seed: usize) -> Matrix<f64> {
    // Integer-valued so every summation order is exact.
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 31 + j * 7 + seed * 13) % 29) as f64 - 14.0
    })
}

#[test]
fn concurrent_mixed_shapes_match_compute_sat() {
    let service = Service::start(small_config());
    // Independent verification device, same machine model.
    let verify = Device::new(DeviceOptions::new(MachineConfig::with_width(4)).workers(0));
    let shapes = [(16usize, 16usize), (8, 24), (5, 7), (32, 16)];
    let algorithms = [
        SatAlgorithm::OneR1W,
        SatAlgorithm::OneR1W,
        SatAlgorithm::OneR1W,
        SatAlgorithm::TwoR1W,
        SatAlgorithm::HybridR1W,
    ];
    std::thread::scope(|s| {
        for t in 0..12usize {
            let client = service.client();
            s.spawn(move || {
                for k in 0..5usize {
                    let (rows, cols) = shapes[(t + k) % shapes.len()];
                    let alg = algorithms[(t * 5 + k) % algorithms.len()];
                    let img = image(rows, cols, t * 100 + k);
                    let table = client.submit(img, alg, None).expect("accepted");
                    assert_eq!(table.sat().rows(), rows);
                    assert_eq!(table.sat().cols(), cols);
                }
            });
        }
    });
    // Re-verify a sample against compute_sat bit-for-bit (the per-thread
    // shape/result assertions above ran inside the scope).
    let client = service.client();
    for t in 0..4usize {
        let (rows, cols) = shapes[t % shapes.len()];
        let img = image(rows, cols, t);
        let got = client
            .submit(img.clone(), SatAlgorithm::OneR1W, None)
            .expect("accepted");
        let want = compute_sat(&verify, SatAlgorithm::OneR1W, &img);
        assert_eq!(got.sat().as_slice(), want.as_slice(), "bit-equal");
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 12 * 5 + 4);
    assert_eq!(stats.submitted, stats.completed);
    assert_eq!(stats.rejected_deadline, 0);
}

#[test]
fn every_result_is_bit_equal_under_batching() {
    // Force wide batches: long linger, many same-shape requests in flight.
    let mut cfg = small_config();
    cfg.max_linger = Duration::from_millis(50);
    cfg.max_batch = 8;
    let service = Service::start(cfg);
    let verify = Device::new(DeviceOptions::new(MachineConfig::with_width(4)).workers(0));
    std::thread::scope(|s| {
        for t in 0..16usize {
            let client = service.client();
            let verify = &verify;
            s.spawn(move || {
                let img = image(16, 16, t);
                let got = client
                    .submit(img.clone(), SatAlgorithm::OneR1W, None)
                    .expect("accepted");
                let want = compute_sat(verify, SatAlgorithm::OneR1W, &img);
                assert_eq!(got.sat().as_slice(), want.as_slice(), "thread {t}");
            });
        }
    });
    let stats = service.shutdown();
    assert_eq!(stats.completed, 16);
    // 16 same-shape requests through width-8 batches: at least some fusing
    // must have happened (exact widths depend on thread timing).
    assert!(
        stats.mean_batch_width() > 1.0,
        "expected fusing, widths {:?}",
        stats.batch_width_hist
    );
    assert!(stats.launches_saved() > 0);
}

#[test]
fn full_batches_dispatch_without_waiting_for_linger() {
    // With linger far above the test budget, only the batch-full condition
    // can dispatch; 8 submitters of the same shape must form one batch.
    let mut cfg = small_config();
    cfg.max_linger = Duration::from_secs(3600);
    cfg.max_batch = 8;
    let service = Service::start(cfg);
    std::thread::scope(|s| {
        for t in 0..8usize {
            let client = service.client();
            s.spawn(move || {
                client
                    .submit(image(16, 16, t), SatAlgorithm::OneR1W, None)
                    .expect("accepted");
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.batches, 1, "widths {:?}", stats.batch_width_hist);
    assert_eq!(stats.batch_width_hist[8], 1);
    // 16×16 at w = 4: m = 4, so 2m − 1 = 7 launches for the whole batch
    // instead of 8 × 7.
    assert_eq!(stats.launches_issued, 7);
    assert_eq!(stats.launches_unbatched_equiv, 56);
    assert_eq!(stats.launch_reduction(), 8.0);
    assert_eq!(stats.barrier_windows_saved(), 48 - 6);
    service.shutdown();
}

#[test]
fn zero_deadline_requests_are_rejected_not_wedged() {
    let mut cfg = small_config();
    cfg.max_linger = Duration::from_millis(100);
    let service = Service::start(cfg);
    let client = service.client();
    let err = client
        .submit(image(16, 16, 0), SatAlgorithm::OneR1W, Some(Duration::ZERO))
        .expect_err("deadline already expired");
    assert_eq!(err, ServiceError::DeadlineExceeded);
    // The service keeps serving afterwards.
    client
        .submit(image(16, 16, 1), SatAlgorithm::OneR1W, None)
        .expect("still serving");
    let stats = service.shutdown();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn backpressure_rejects_when_queue_stays_full() {
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(0),
        queue_capacity: 1,
        max_batch: 64,
        // Lingering occupant: holds the single queue slot for the whole test.
        max_linger: Duration::from_secs(3600),
        default_deadline: Duration::from_secs(3600),
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    let occupant = service.client();
    let handle =
        std::thread::spawn(move || occupant.submit(image(16, 16, 0), SatAlgorithm::OneR1W, None));
    // Wait for the occupant to be admitted.
    while service.stats().submitted == 0 {
        std::thread::yield_now();
    }
    let err = service
        .client()
        .submit(
            image(16, 16, 1),
            SatAlgorithm::OneR1W,
            Some(Duration::from_millis(20)),
        )
        .expect_err("queue is full");
    assert_eq!(err, ServiceError::QueueFull);
    // Shutdown fails the still-queued occupant fast with the distinct
    // drain-time reason instead of computing it or letting it time out.
    let stats = service.shutdown();
    assert_eq!(handle.join().unwrap().err(), Some(ServiceError::Shutdown));
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.rejected_shutdown_drain, 1);
}

#[test]
fn shutdown_fails_queued_requests_fast() {
    let mut cfg = small_config();
    cfg.max_linger = Duration::from_secs(3600); // nothing dispatches on its own
    cfg.max_batch = 64;
    let service = Service::start(cfg);
    let mut handles = Vec::new();
    for t in 0..6usize {
        let client = service.client();
        handles.push(std::thread::spawn(move || {
            client.submit(image(16, 16, t), SatAlgorithm::OneR1W, None)
        }));
    }
    while service.stats().submitted < 6 {
        std::thread::yield_now();
    }
    let stats = service.shutdown();
    for h in handles {
        // Fail-fast drain: a distinct rejection, not a deadline timeout
        // (their deadlines were 30 s out) and not a computed result.
        assert_eq!(h.join().unwrap().err(), Some(ServiceError::Shutdown));
    }
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.rejected_shutdown_drain, 6);
    assert_eq!(stats.rejected_deadline, 0);
    assert_eq!(stats.batches, 0);
}

#[test]
fn submissions_after_shutdown_are_rejected() {
    let service = Service::start(small_config());
    let client = service.client();
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 0);
    let err = client
        .submit(image(8, 8, 0), SatAlgorithm::OneR1W, None)
        .expect_err("service is gone");
    assert_eq!(err, ServiceError::ShuttingDown);
}

#[test]
fn empty_matrices_are_rejected_before_queueing() {
    let service = Service::start(small_config());
    let err = service
        .client()
        .submit(Matrix::zeros(0, 5), SatAlgorithm::OneR1W, None)
        .expect_err("empty matrix");
    assert!(matches!(err, ServiceError::InvalidRequest(_)));
    let stats = service.shutdown();
    assert_eq!(stats.rejected_invalid, 1);
    assert_eq!(stats.submitted, 0);
}

#[test]
fn observed_service_exposes_metrics_text_and_lifecycle_spans() {
    let obs = obs::Obs::new();
    let mut cfg = small_config();
    cfg.observer = obs.clone();
    let service = Service::start(cfg);
    let client = service.client();
    for t in 0..3usize {
        client
            .submit(image(16, 16, t), SatAlgorithm::OneR1W, None)
            .expect("accepted");
    }
    let err = client
        .submit(Matrix::zeros(0, 1), SatAlgorithm::OneR1W, None)
        .expect_err("invalid");
    assert!(matches!(err, ServiceError::InvalidRequest(_)));

    // Prometheus-style exposition from the client handle: serving-layer
    // counters and the shared device's gpu_* family in one scrape.
    let text = client.metrics_text();
    assert!(text.contains("# TYPE sat_service_submitted_total counter"));
    assert!(text.contains("sat_service_submitted_total 3"));
    // Latency buckets carry OpenMetrics exemplars naming a request id.
    assert!(
        text.contains(" # {request_id=\""),
        "request histogram buckets carry exemplars"
    );
    assert!(text.contains("sat_service_completed_total 3"));
    assert!(text.contains("sat_service_rejected_total{reason=\"invalid\"} 1"));
    assert!(text.contains("# TYPE sat_service_queue_latency_ms gauge"));
    assert!(text.contains("# TYPE gpu_launches counter"));
    let launches_line = text
        .lines()
        .find(|l| l.starts_with("gpu_launches "))
        .expect("device counters share the registry");
    let launches: u64 = launches_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(launches >= 7, "16x16 at w=4 needs 2m-1=7 launches");

    let stats = service.shutdown();
    assert_eq!(stats.completed, 3);

    // The trace holds the full request lifecycle on the wall clock and is
    // valid Chrome trace-event JSON.
    let json = obs.trace_json();
    let trace_stats = obs::chrome::validate(&json).expect("valid chrome trace");
    let parsed = obs::json::JsonValue::parse(&json).unwrap();
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    let named = |want: &str| {
        events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some(want))
            .count()
    };
    assert_eq!(named("admit"), 3);
    assert_eq!(named("queue"), 3);
    assert!(named("batch") >= 1);
    assert!(named("launch") >= 7, "device spans share the trace");
    assert!(named("complete") >= 1);
    // Request-scoped chain: every completed request closed a terminal
    // `request` span with status "ok" and contributed flow points
    // (start + dispatch step + per-launch steps + end).
    let ok_spans = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("request")
                && e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("args")
                    .and_then(|a| a.get("status"))
                    .and_then(|s| s.as_str())
                    == Some("ok")
        })
        .count();
    assert_eq!(ok_spans, 3, "one terminal request span per completion");
    assert!(
        trace_stats.flows >= 9,
        "flow chain per request, got {}",
        trace_stats.flows
    );
}

#[test]
fn stats_serialize_to_json() {
    let service = Service::start(small_config());
    service
        .client()
        .submit(image(8, 8, 0), SatAlgorithm::OneR1W, None)
        .expect("accepted");
    let stats = service.shutdown();
    let json = serde_json::to_string(&stats).expect("serializable");
    assert!(json.contains("\"completed\":1"));
    assert!(json.contains("p99_ms"));
}
