//! Fleet-mode chaos tests: a multi-device service shards each SAT across
//! independent fault domains, and losing shards must never cost a bit of
//! accuracy — work reshards onto survivors, and the CPU path is reached
//! only when every fault domain is gone.

use std::time::Duration;

use gpu_exec::{FaultPlan, LossWindow};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::{seq::sat_reference, Matrix};
use sat_service::{ResilienceConfig, Service, ServiceConfig};

fn image(seed: usize) -> Matrix<f64> {
    // Integer-valued so banded fleet, whole-image, and CPU paths all sum
    // exactly and results are bit-comparable across paths.
    Matrix::from_fn(16, 16, |i, j| {
        ((i * 31 + j * 7 + seed * 13) % 29) as f64 - 14.0
    })
}

fn fleet_config(shards: usize, plans: Vec<Option<FaultPlan>>) -> ServiceConfig {
    ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(2),
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_micros(200),
        default_deadline: Duration::from_secs(30),
        shards,
        shard_fault_plans: plans,
        resilience: ResilienceConfig {
            breaker_cooldown: Duration::from_millis(10),
            ..ResilienceConfig::default()
        },
        observer: obs::Obs::new(),
        ..ServiceConfig::default()
    }
}

/// Submit `count` requests sequentially and assert every reply is the
/// bit-exact reference SAT.
fn submit_and_check(service: &Service, count: usize, algorithm: SatAlgorithm) {
    let client = service.client();
    for k in 0..count {
        let img = image(k);
        let got = client
            .submit(img.clone(), algorithm, None)
            .expect("fleet service never errors");
        let want = sat_reference(&img);
        assert_eq!(got.sat().as_slice(), want.as_slice(), "request {k}");
    }
}

#[test]
fn fault_free_fleet_is_bit_exact_and_accounts_per_shard_launches() {
    let service = Service::start(fleet_config(4, Vec::new()));
    submit_and_check(&service, 8, SatAlgorithm::OneR1W);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.shard_tasks_failed, 0);
    assert_eq!(stats.shard_failovers, 0);
    assert_eq!(stats.shards_lost, 0);
    // Every image decomposes into per-band tasks: D-1 column-sum bands,
    // one margin exchange, D band wavefronts.
    assert!(
        stats.shard_tasks_ok >= 8 * (4 - 1 + 1 + 4) as u64,
        "{stats:?}"
    );
    // The per-shard launch counters account for exactly what the fleet
    // issued, and at least one shard did real work.
    assert_eq!(stats.shard_launches.len(), 4, "{stats:?}");
    let spread: u64 = stats.shard_launches.iter().sum();
    assert_eq!(spread, stats.launches_issued, "{stats:?}");
    assert!(spread > 0);
}

#[test]
fn losing_one_shard_reshards_onto_survivors_without_degrading() {
    // The acceptance-gate shape: one of four fault domains dies mid-run
    // and every admitted request still completes bit-exactly with zero
    // CPU degradation. The healthy shards straggle (every launch sleeps),
    // which on a single-core host forces the scheduler to hand the CPU —
    // and therefore queue pops — to every worker, so the dead shard is
    // guaranteed to sample tasks and trip its breaker.
    let slow = || Some(FaultPlan::new(3).straggler(1.0, Duration::from_micros(200)));
    let dead = FaultPlan::new(5).loss(LossWindow::Launches {
        start: 0,
        count: u64::MAX,
    });
    let service = Service::start(fleet_config(4, vec![slow(), slow(), Some(dead), slow()]));
    submit_and_check(&service, 6, SatAlgorithm::OneR1W);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.degraded, 0, "survivors absorb the work: {stats:?}");
    assert!(stats.shards_lost >= 1, "{stats:?}");
    assert!(
        stats.shard_failovers >= 1,
        "queued bands must reshard: {stats:?}"
    );
    // Opening the breaker takes a full failure streak on the dying shard.
    assert!(stats.shard_tasks_failed >= 3, "{stats:?}");
    assert!(stats.breaker_opened >= 1, "{stats:?}");
}

#[test]
fn losing_every_shard_degrades_to_cpu_and_still_answers() {
    let dead = || {
        Some(FaultPlan::new(11).loss(LossWindow::Launches {
            start: 0,
            count: u64::MAX,
        }))
    };
    let service = Service::start(fleet_config(2, vec![dead(), dead()]));
    submit_and_check(&service, 3, SatAlgorithm::OneR1W);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.degraded, 3, "no healthy shard left: {stats:?}");
    assert!(stats.shards_lost >= 2, "{stats:?}");
}

#[test]
fn straggler_shard_slows_nothing_to_a_failure() {
    // A straggler is latency, not loss: the work-stealing queue routes
    // around it and nothing degrades or reshards.
    let slow = FaultPlan::new(3).straggler(1.0, Duration::from_micros(200));
    let service = Service::start(fleet_config(4, vec![None, Some(slow), None, None]));
    submit_and_check(&service, 6, SatAlgorithm::OneR1W);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.degraded, 0, "{stats:?}");
    assert_eq!(stats.shards_lost, 0, "{stats:?}");
    assert_eq!(stats.shard_tasks_failed, 0, "{stats:?}");
}

#[test]
fn non_banded_algorithms_run_whole_image_on_the_fleet() {
    // Only 1R1W has the banded decomposition; everything else runs whole
    // images on one shard — still fleet-scheduled, still bit-exact.
    let service = Service::start(fleet_config(2, Vec::new()));
    submit_and_check(&service, 4, SatAlgorithm::FourR4W);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.shard_tasks_ok, 4, "one whole-image task per request");
}

#[test]
fn fleet_flight_events_record_loss_and_failover() {
    let obs = obs::Obs::new();
    let slow = || Some(FaultPlan::new(3).straggler(1.0, Duration::from_micros(200)));
    let dead = FaultPlan::new(5).loss(LossWindow::Launches {
        start: 0,
        count: u64::MAX,
    });
    let cfg = ServiceConfig {
        observer: obs.clone(),
        ..fleet_config(4, vec![slow(), slow(), Some(dead), slow()])
    };
    let service = Service::start(cfg);
    submit_and_check(&service, 6, SatAlgorithm::OneR1W);
    service.shutdown();
    let flight = obs.flight_recent();
    let lost: Vec<_> = flight
        .iter()
        .filter(|e| e.kind == obs::FlightKind::DeviceLost)
        .collect();
    assert!(!lost.is_empty(), "device loss reaches the flight recorder");
    assert!(
        lost.iter().all(|e| e.a == 2),
        "the lost shard is shard 2: {lost:?}"
    );
    assert!(
        flight
            .iter()
            .any(|e| e.kind == obs::FlightKind::ShardFailover && e.a == 2),
        "failover event names the shard that died"
    );
}
