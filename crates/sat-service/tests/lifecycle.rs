//! Request-scoped observability integration tests: terminal `request`
//! spans on every early-exit path, the flow chain, the telemetry HTTP
//! listener, and post-mortem dumping.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gpu_exec::{FaultPlan, LossWindow};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::Matrix;
use sat_service::{
    PostmortemConfig, ResilienceConfig, Service, ServiceConfig, ServiceError, TelemetryConfig,
};

fn image(seed: usize) -> Matrix<f64> {
    Matrix::from_fn(16, 16, |i, j| {
        ((i * 31 + j * 7 + seed * 13) % 29) as f64 - 14.0
    })
}

/// Every `request` span in the trace as `(request_id, status)`.
fn request_spans(json: &str) -> Vec<(u64, String)> {
    let parsed = obs::json::JsonValue::parse(json).unwrap();
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    events
        .iter()
        .filter(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("request")
                && e.get("ph").and_then(|p| p.as_str()) == Some("X")
        })
        .map(|e| {
            let args = e.get("args").expect("request spans carry args");
            (
                args.get("request").unwrap().as_f64().unwrap() as u64,
                args.get("status").unwrap().as_str().unwrap().to_string(),
            )
        })
        .collect()
}

/// Flow points in the trace as `(phase, flow_id)`.
fn flow_points(json: &str) -> Vec<(String, u64)> {
    let parsed = obs::json::JsonValue::parse(json).unwrap();
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    events
        .iter()
        .filter_map(|e| {
            let ph = e.get("ph")?.as_str()?;
            if !matches!(ph, "s" | "t" | "f") {
                return None;
            }
            Some((ph.to_string(), e.get("id")?.as_f64()? as u64))
        })
        .collect()
}

#[test]
fn deadline_expiry_closes_the_request_span_with_terminal_status() {
    let obs = obs::Obs::new();
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(0),
        // Nothing dispatches on its own: the only exit is the deadline.
        max_linger: Duration::from_secs(3600),
        observer: obs.clone(),
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    let err = service
        .client()
        .submit(
            image(0),
            SatAlgorithm::OneR1W,
            Some(Duration::from_millis(40)),
        )
        .expect_err("deadline must expire while queued");
    assert_eq!(err, ServiceError::DeadlineExceeded);
    let stats = service.shutdown();
    assert_eq!(stats.rejected_deadline, 1);

    let json = obs.trace_json();
    obs::chrome::validate(&json).expect("valid trace");
    let spans = request_spans(&json);
    assert_eq!(spans.len(), 1, "exactly one request span: {spans:?}");
    let (id, status) = &spans[0];
    assert!(*id > 0);
    assert_eq!(status, "deadline_expired");
    // The flow chain still has both endpoints even though the request
    // never reached a device.
    let flows = flow_points(&json);
    assert!(flows.contains(&("s".to_string(), *id)), "{flows:?}");
    assert!(flows.contains(&("f".to_string(), *id)), "{flows:?}");
    // And the flight recorder saw the admission and the rejection.
    let flight = obs.flight_recent();
    assert!(flight
        .iter()
        .any(|e| e.kind == obs::FlightKind::Admit && e.request == *id));
    assert!(flight
        .iter()
        .any(|e| e.kind == obs::FlightKind::Reject && e.request == *id));
}

#[test]
fn shutdown_drain_closes_every_queued_request_span() {
    let obs = obs::Obs::new();
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(0),
        max_linger: Duration::from_secs(3600),
        max_batch: 64,
        observer: obs.clone(),
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    let mut handles = Vec::new();
    for t in 0..3usize {
        let client = service.client();
        handles.push(std::thread::spawn(move || {
            client.submit(image(t), SatAlgorithm::OneR1W, None)
        }));
    }
    while service.stats().submitted < 3 {
        std::thread::yield_now();
    }
    let stats = service.shutdown();
    for h in handles {
        assert_eq!(h.join().unwrap().err(), Some(ServiceError::Shutdown));
    }
    assert_eq!(stats.rejected_shutdown_drain, 3);

    let json = obs.trace_json();
    obs::chrome::validate(&json).expect("valid trace");
    let spans = request_spans(&json);
    assert_eq!(spans.len(), 3, "{spans:?}");
    assert!(spans.iter().all(|(_, s)| s == "shutdown_drain"));
    let flows = flow_points(&json);
    for (id, _) in &spans {
        assert!(flows.contains(&("s".to_string(), *id)));
        assert!(flows.contains(&("f".to_string(), *id)));
    }
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("telemetry listener up");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let code: u16 = resp
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

#[test]
fn telemetry_listener_serves_metrics_health_and_flight() {
    let obs = obs::Obs::new();
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(0),
        max_linger: Duration::from_micros(200),
        observer: obs.clone(),
        telemetry: TelemetryConfig {
            listen: Some("127.0.0.1:0".to_string()),
        },
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    let addr = service.telemetry_addr().expect("listener configured");
    service
        .client()
        .submit(image(1), SatAlgorithm::OneR1W, None)
        .expect("accepted");

    // /metrics serves exactly the bytes of metrics_text, exemplar included.
    let (code, body) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_eq!(body, service.metrics_text(), "byte-identical exposition");
    assert!(body.contains("sat_service_completed_total 1"));
    assert!(body.contains(" # {request_id=\""), "exemplar present");

    // /healthz reflects breaker + queue state as JSON.
    let (code, health) = http_get(addr, "/healthz");
    assert_eq!(code, 200);
    let v = obs::json::JsonValue::parse(&health).expect("health is JSON");
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("breaker").unwrap().as_str(), Some("closed"));
    assert_eq!(v.get("queue_depth").unwrap().as_f64(), Some(0.0));
    assert_eq!(v.get("shutting_down").unwrap().as_bool(), Some(false));

    // /debug/flight returns the recorder's recent structured events.
    let (code, flight) = http_get(addr, "/debug/flight");
    assert_eq!(code, 200);
    let v = obs::json::JsonValue::parse(&flight).expect("flight is JSON");
    let events = v.get("events").unwrap().as_array().unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(|k| k.as_str()) == Some("admit")),
        "{flight}"
    );

    let (code, _) = http_get(addr, "/nope");
    assert_eq!(code, 404);

    // Graceful shutdown: the listener is joined and the port closed.
    service.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener closed with the service"
    );
}

#[test]
fn shutdown_with_open_breaker_fails_queued_requests_fast_and_closes_telemetry() {
    // A dead device opens the breaker; the cooldown is far away, so a
    // canary probe is pending but cannot run. Shutdown must not wait for
    // it: requests still queued drain immediately with `Shutdown`, and
    // the telemetry port closes with the service.
    let plan = FaultPlan::new(4).loss(LossWindow::Launches {
        start: 0,
        count: u64::MAX,
    });
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(2),
        max_batch: 4,
        // Partial batches never linger out: requests that don't fill a
        // batch stay queued until shutdown drains them.
        max_linger: Duration::from_secs(3600),
        fault_plan: Some(plan),
        resilience: ResilienceConfig {
            breaker_cooldown: Duration::from_secs(600),
            ..ResilienceConfig::default()
        },
        telemetry: TelemetryConfig {
            listen: Some("127.0.0.1:0".to_string()),
        },
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    let addr = service.telemetry_addr().expect("listener configured");

    // A full batch dispatches at once, trips the breaker on the dead
    // device, and completes on the CPU path.
    let mut full_batch = Vec::new();
    for t in 0..4usize {
        let client = service.client();
        full_batch.push(std::thread::spawn(move || {
            client.submit(image(t), SatAlgorithm::OneR1W, None)
        }));
    }
    for h in full_batch {
        h.join().unwrap().expect("degraded requests still complete");
    }
    assert!(service.stats().breaker_opened >= 1, "breaker must be open");

    // Two more requests can't fill a batch: they sit in the queue while
    // the breaker is open and the canary probe is pending.
    let mut queued = Vec::new();
    for t in 4..6usize {
        let client = service.client();
        queued.push(std::thread::spawn(move || {
            client.submit(image(t), SatAlgorithm::OneR1W, None)
        }));
    }
    while service.stats().submitted < 6 {
        std::thread::yield_now();
    }

    let stats = service.shutdown();
    for h in queued {
        assert_eq!(h.join().unwrap().err(), Some(ServiceError::Shutdown));
    }
    assert_eq!(stats.rejected_shutdown_drain, 2);
    assert_eq!(stats.completed, 4);
    assert_eq!(
        stats.canary_probes, 0,
        "the pending probe never ran: {stats:?}"
    );
    assert!(
        TcpStream::connect(addr).is_err(),
        "telemetry port closed with the service"
    );
}

#[test]
fn breaker_open_dumps_exactly_one_validating_postmortem_bundle() {
    let dir = std::env::temp_dir().join(format!("sat-postmortem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let obs = obs::Obs::new();
    let plan = FaultPlan::new(9).loss(LossWindow::Wall {
        start_after_launch: 0,
        duration: Duration::from_millis(50),
    });
    let cfg = ServiceConfig {
        machine: MachineConfig::with_width(4),
        device_workers: Some(2),
        max_batch: 4,
        max_linger: Duration::from_micros(200),
        observer: obs.clone(),
        fault_plan: Some(plan),
        resilience: ResilienceConfig {
            breaker_cooldown: Duration::from_millis(10),
            ..ResilienceConfig::default()
        },
        postmortem: PostmortemConfig {
            dir: Some(dir.clone()),
            prefix: "lifecycle".to_string(),
            max_bundles: 1,
            ..PostmortemConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Service::start(cfg);
    let client = service.client();
    for k in 0..4usize {
        client
            .submit(image(k), SatAlgorithm::OneR1W, None)
            .expect("self-healing service never errors");
    }
    let stats = service.shutdown();
    assert!(stats.breaker_opened >= 1, "loss must open the breaker");

    let bundles: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with("postmortem-lifecycle-")
        })
        .collect();
    assert_eq!(
        bundles.len(),
        1,
        "max_bundles = 1 caps dumping even if the breaker re-opens"
    );
    let text = std::fs::read_to_string(bundles[0].path()).unwrap();
    let fstats = obs::flight::validate(&text).expect("bundle validates");
    assert!(fstats.events > 0, "bundle holds flight events");
    assert!(
        fstats.request_flow > 0,
        "bundle holds the triggering request's event chain"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
