//! Self-healing machinery: retry budgets with deterministic backoff, the
//! device circuit breaker, and cheap result verification.
//!
//! The serving layer assumes the device can fail the way real GPUs do
//! (lost launches, aborted launches, silently corrupted results — see
//! [`gpu_exec::FaultPlan`]) and recovers in three layers:
//!
//! 1. **Detect.** After each dispatch the executor checks the device's
//!    [fault epoch](gpu_exec::Device::fault_epoch) (launch abort / device
//!    loss are detectable, like a CUDA error code), compares measured
//!    operation counts against the paper's Table-I closed forms
//!    (missing work from skipped blocks shows up as missing transactions),
//!    and runs [`verify_sat`] on each result — the last row/column of a
//!    valid SAT are prefix sums of the input's margins, and every interior
//!    cell must satisfy the defining recurrence
//!    `s(i,j) − s(i−1,j) − s(i,j−1) + s(i−1,j−1) = a(i,j)`.
//! 2. **Retry.** Failed attempts are retried with exponential backoff and
//!    deterministic jitter, up to [`ResilienceConfig::max_attempts`].
//! 3. **Degrade.** Consecutive launch failures open a [`CircuitBreaker`];
//!    while it is open, dispatches complete on the sequential CPU path
//!    ([`sat_core::seq::sat_4r1w_cpu`]) instead of erroring, and after
//!    [`ResilienceConfig::breaker_cooldown`] a half-open canary launch
//!    probes whether the device recovered.

use std::time::{Duration, Instant};

use gpu_exec::Device;
use hmm_model::cost::SatAlgorithm;
use sat_core::{compute_sat, Matrix};

/// When the executor verifies device results against the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Verify iff the service was configured with a fault plan (the
    /// default: fault-free production traffic skips the sweep entirely).
    #[default]
    Auto,
    /// Always verify, even without injected faults.
    Always,
    /// Never verify (results are returned as the device produced them).
    Never,
}

/// Tuning for the self-healing path. The defaults match the chaos
/// acceptance gate: three GPU attempts, sub-millisecond backoff, a breaker
/// that opens after three consecutive launch failures and probes again
/// after 25 ms.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// GPU attempts per dispatch before degrading to the CPU path.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Hard upper bound on the delay actually slept: applied *after*
    /// jitter, so no retry ever waits longer than this.
    pub max_backoff: Duration,
    /// Seed of the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Consecutive launch failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before a half-open canary probe.
    pub breaker_cooldown: Duration,
    /// Result verification policy.
    pub verify: VerifyMode,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_attempts: 3,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(5),
            backoff_seed: 0x5EED,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(25),
            verify: VerifyMode::Auto,
        }
    }
}

/// The classic closed → open → half-open breaker, owned exclusively by the
/// batch-former thread (no locking).
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    state: State,
    threshold: u32,
    cooldown: Duration,
}

#[derive(Debug)]
enum State {
    /// Healthy; counts consecutive launch failures.
    Closed { failures: u32 },
    /// Tripped; GPU dispatches degrade to CPU until the cooldown elapses.
    Open { since: Instant },
    /// Cooldown elapsed; one canary probe decides re-close vs. re-open.
    HalfOpen,
}

/// What the executor should do with the device right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Breaker closed: use the GPU normally.
    Use,
    /// Breaker half-open: run a canary probe before trusting the device.
    Probe,
    /// Breaker open: degrade to the CPU path.
    Degrade,
}

impl CircuitBreaker {
    pub(crate) fn new(cfg: &ResilienceConfig) -> Self {
        CircuitBreaker {
            state: State::Closed { failures: 0 },
            threshold: cfg.breaker_threshold.max(1),
            cooldown: cfg.breaker_cooldown,
        }
    }

    /// Advance time-driven transitions and return the current disposition
    /// plus the transition that just happened, if any (for metrics).
    pub(crate) fn poll(&mut self, now: Instant) -> (Disposition, Option<&'static str>) {
        match self.state {
            State::Closed { .. } => (Disposition::Use, None),
            State::HalfOpen => (Disposition::Probe, None),
            State::Open { since } => {
                if now.duration_since(since) >= self.cooldown {
                    self.state = State::HalfOpen;
                    (Disposition::Probe, Some("half_open"))
                } else {
                    (Disposition::Degrade, None)
                }
            }
        }
    }

    /// A launch (or canary) succeeded.
    pub(crate) fn on_success(&mut self) -> Option<&'static str> {
        match self.state {
            State::Closed { failures: 0 } => None,
            State::Closed { .. } => {
                self.state = State::Closed { failures: 0 };
                None
            }
            State::HalfOpen | State::Open { .. } => {
                self.state = State::Closed { failures: 0 };
                Some("closed")
            }
        }
    }

    /// A launch (or canary) failed.
    pub(crate) fn on_failure(&mut self, now: Instant) -> Option<&'static str> {
        match self.state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    self.state = State::Open { since: now };
                    Some("open")
                } else {
                    self.state = State::Closed { failures };
                    None
                }
            }
            State::HalfOpen => {
                self.state = State::Open { since: now };
                Some("open")
            }
            State::Open { .. } => None,
        }
    }

    /// Whether the breaker is closed right now. The fleet router uses this
    /// as its "healthy shard" test between the phases of one dispatch —
    /// half-open probing happens only at dispatch boundaries, so a shard
    /// lost mid-image stays out until the next [`poll`](Self::poll).
    pub(crate) fn is_closed(&self) -> bool {
        matches!(self.state, State::Closed { .. })
    }

    #[cfg(test)]
    fn is_open(&self) -> bool {
        matches!(self.state, State::Open { .. })
    }
}

/// Deterministic exponential backoff with jitter: `base · 2^(attempt−1)`
/// scaled by a jitter factor in `[0.5, 1.0)` drawn from a splitmix64
/// stream — so two runs of the same fault schedule sleep the same amounts,
/// keeping chaos runs reproducible — then clamped to `max_backoff`. The
/// clamp is applied *after* jitter: `max_backoff` bounds the delay actually
/// slept, not some pre-jitter intermediate, so the documented ceiling holds
/// for every `(attempt, salt)` pair.
pub(crate) fn backoff_delay(cfg: &ResilienceConfig, attempt: u32, salt: u64) -> Duration {
    let exp = attempt.saturating_sub(1).min(20);
    let raw = cfg.base_backoff.saturating_mul(1u32 << exp);
    let h = splitmix(cfg.backoff_seed ^ (u64::from(attempt) << 32) ^ salt);
    let jitter = 0.5 + ((h >> 11) as f64) * (0.5 / (1u64 << 53) as f64);
    raw.mul_f64(jitter).min(cfg.max_backoff)
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Relative tolerance of the verification sweeps. Injected corruption flips
/// an exponent bit — a relative deviation near 1 — while honest float
/// reassociation across GPU/batch/CPU paths stays many orders below this.
const VERIFY_REL_TOL: f64 = 1e-9;

#[inline]
fn close(a: f64, b: f64) -> bool {
    // A corrupted exponent can land on ±inf/NaN, where `inf ≤ tol·inf`
    // would pass the relative test; only exact equality counts there.
    if !a.is_finite() || !b.is_finite() {
        return a == b;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= VERIFY_REL_TOL * scale
}

/// Cheap validity check of a SAT against its input, without recomputing the
/// SAT: the margins checksum (the last row and column of a valid SAT are
/// prefix sums of the input's column and row margins) catches global drift,
/// and the defining recurrence `s(i,j) − s(i−1,j) − s(i,j−1) + s(i−1,j−1) =
/// a(i,j)` — four reads per cell, no allocation — catches any corrupted
/// interior word. Returns `true` when the SAT is consistent with `image`.
pub(crate) fn verify_sat(image: &Matrix<f64>, sat: &Matrix<f64>) -> bool {
    let (rows, cols) = (image.rows(), image.cols());
    if sat.rows() != rows || sat.cols() != cols {
        return false;
    }
    if rows == 0 || cols == 0 {
        return true;
    }
    // Margins: last row = prefix sums of the column margins.
    let mut acc = 0.0f64;
    for j in 0..cols {
        let col_margin: f64 = (0..rows).map(|i| image.get(i, j)).sum();
        acc += col_margin;
        if !close(sat.get(rows - 1, j), acc) {
            return false;
        }
    }
    // Margins: last column = prefix sums of the row margins.
    let mut acc = 0.0f64;
    for i in 0..rows {
        let row_margin: f64 = (0..cols).map(|j| image.get(i, j)).sum();
        acc += row_margin;
        if !close(sat.get(i, cols - 1), acc) {
            return false;
        }
    }
    // Recurrence sweep with zero boundary.
    for i in 0..rows {
        for j in 0..cols {
            let up = if i > 0 { sat.get(i - 1, j) } else { 0.0 };
            let left = if j > 0 { sat.get(i, j - 1) } else { 0.0 };
            let diag = if i > 0 && j > 0 {
                sat.get(i - 1, j - 1)
            } else {
                0.0
            };
            if !close(sat.get(i, j) - up - left + diag, image.get(i, j)) {
                return false;
            }
        }
    }
    true
}

/// Half-open probe: one tiny `w × w` SAT on the device, checked for launch
/// failure *and* result validity. Cheap (a `w × w` grid is one block, one
/// wavefront) but exercises the full launch → kernel → readback path.
pub(crate) fn canary_ok(dev: &Device) -> bool {
    let w = dev.width();
    let image = Matrix::from_fn(w, w, |i, j| (i * 3 + j + 1) as f64);
    let epoch = dev.fault_epoch();
    let sat = compute_sat(dev, SatAlgorithm::OneR1W, &image);
    dev.fault_epoch() == epoch && verify_sat(&image, &sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_core::seq::sat_reference;

    fn cfg() -> ResilienceConfig {
        ResilienceConfig {
            breaker_cooldown: Duration::from_millis(5),
            ..ResilienceConfig::default()
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_via_half_open() {
        let mut b = CircuitBreaker::new(&cfg());
        let t0 = Instant::now();
        assert_eq!(b.poll(t0).0, Disposition::Use);
        assert_eq!(b.on_failure(t0), None);
        assert_eq!(b.on_failure(t0), None);
        assert_eq!(b.on_failure(t0), Some("open"));
        assert!(b.is_open());
        assert_eq!(b.poll(t0).0, Disposition::Degrade);
        // Cooldown elapsed: half-open probe.
        let later = t0 + Duration::from_millis(6);
        assert_eq!(b.poll(later), (Disposition::Probe, Some("half_open")));
        assert_eq!(b.poll(later), (Disposition::Probe, None));
        // Failed canary re-opens; a later successful one closes.
        assert_eq!(b.on_failure(later), Some("open"));
        let again = later + Duration::from_millis(6);
        assert_eq!(b.poll(again).0, Disposition::Probe);
        assert_eq!(b.on_success(), Some("closed"));
        assert_eq!(b.poll(again).0, Disposition::Use);
    }

    #[test]
    fn breaker_success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(&cfg());
        let t = Instant::now();
        b.on_failure(t);
        b.on_failure(t);
        assert_eq!(b.on_success(), None);
        // The streak restarted: two more failures do not open it.
        b.on_failure(t);
        b.on_failure(t);
        assert!(!b.is_open());
        assert_eq!(b.on_failure(t), Some("open"));
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let c = cfg();
        let d1 = backoff_delay(&c, 1, 9);
        let d2 = backoff_delay(&c, 2, 9);
        let d9 = backoff_delay(&c, 9, 9);
        assert_eq!(d1, backoff_delay(&c, 1, 9), "deterministic");
        assert!(d1 >= c.base_backoff / 2 && d1 < c.base_backoff);
        assert!(d2 > d1, "exponential growth");
        assert!(d9 <= c.max_backoff, "capped");
        assert!(d9 >= c.max_backoff / 2, "jitter keeps at least half");
        assert_ne!(
            backoff_delay(&c, 1, 1),
            backoff_delay(&c, 1, 2),
            "salt decorrelates"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64, ..Default::default()
        })]

        /// The documented ceiling is a hard one: for every attempt number
        /// (including the degenerate 0) and any salt, the post-jitter delay
        /// never exceeds `max_backoff`, and jitter never eats more than
        /// half of the (capped) exponential term.
        #[test]
        fn backoff_is_capped_post_jitter_for_all_attempts(
            attempt in 0u32..=64,
            salt in 0u64..1_000,
            base_us in 1u64..10_000,
            max_us in 1u64..10_000,
        ) {
            let c = ResilienceConfig {
                base_backoff: Duration::from_micros(base_us),
                max_backoff: Duration::from_micros(max_us),
                ..ResilienceConfig::default()
            };
            let d = backoff_delay(&c, attempt, salt);
            proptest::prop_assert!(
                d <= c.max_backoff,
                "attempt {} slept {:?} past the {:?} cap", attempt, d, c.max_backoff
            );
            let exp = attempt.saturating_sub(1).min(20);
            let raw = c.base_backoff.saturating_mul(1u32 << exp).min(c.max_backoff);
            proptest::prop_assert!(
                d + Duration::from_nanos(1) >= raw / 2,
                "attempt {} slept {:?}, below half of {:?}", attempt, d, raw
            );
        }
    }

    #[test]
    fn verify_accepts_valid_sats_and_rejects_corruption() {
        for (rows, cols) in [(1usize, 1usize), (5, 3), (8, 8), (13, 7)] {
            let image = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) % 29) as f64 - 14.0);
            let sat = sat_reference(&image);
            assert!(verify_sat(&image, &sat), "{rows}x{cols}");
            // Corrupt each word in turn the way fault injection does
            // (exponent-bit flip): every single corruption must be caught.
            for i in 0..rows {
                for j in 0..cols {
                    let mut bad = sat.clone();
                    let v = bad.get(i, j);
                    let flipped = f64::from_bits(v.to_bits() ^ (0x40u64 << 56));
                    bad.set(i, j, flipped);
                    if flipped != v {
                        assert!(!verify_sat(&image, &bad), "missed corruption at {i},{j}");
                    }
                }
            }
        }
    }

    #[test]
    fn verify_rejects_shape_mismatch_and_accepts_empty() {
        let image = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let sat = sat_reference(&image);
        assert!(verify_sat(&image, &sat));
        let wrong: Matrix<f64> = Matrix::zeros(3, 4);
        assert!(!verify_sat(&image, &wrong));
        let empty: Matrix<f64> = Matrix::zeros(0, 0);
        assert!(verify_sat(&empty, &empty));
    }

    #[test]
    fn verify_tolerates_float_reassociation() {
        // Sums accumulated in a different association order drift by ulps,
        // not by the 1e-9 relative tolerance.
        let image = Matrix::from_fn(16, 16, |i, j| ((i * 7 + j) % 5) as f64 * 0.1 + 0.01);
        let sat = sat_reference(&image);
        let mut nudged = sat.clone();
        for i in 0..16 {
            for j in 0..16 {
                let v = nudged.get(i, j);
                nudged.set(i, j, v * (1.0 + f64::EPSILON));
            }
        }
        assert!(verify_sat(&image, &nudged));
    }
}
