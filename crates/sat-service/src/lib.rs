//! # sat-service — a concurrent SAT serving layer with batch fusing
//!
//! The paper's §VII observation: 1R1W's `2n/w` barrier-separated stages
//! have corner launches too narrow to hide memory latency, and fusing the
//! wavefront **across a batch of matrices** repairs exactly that — the
//! launch count stays `2m − 1` while every launch is `B×` wider
//! ([`sat_core::par::sat_1r1w_batch`]). This crate turns that kernel-level
//! fact into a *serving* win: many independent client threads submit
//! matrices, and a single **batch-former** thread coalesces queued
//! same-shape requests into fused batched launches on one shared
//! [`gpu_exec::Device`].
//!
//! ```
//! use hmm_model::{cost::SatAlgorithm, MachineConfig};
//! use sat_core::{Matrix, Rect};
//! use sat_service::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig {
//!     machine: MachineConfig::with_width(4),
//!     ..ServiceConfig::default()
//! });
//! let client = service.client();
//! let image = Matrix::from_fn(16, 16, |i, j| (i + j) as f64);
//! let table = client
//!     .submit(image, SatAlgorithm::OneR1W, None)
//!     .expect("service accepted the request");
//! assert_eq!(table.sum(Rect::new(0, 0, 0, 0)), 0.0);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```
//!
//! ## Architecture
//!
//! * [`Client::submit`] validates the request, stamps its deadline, and
//!   pushes it onto a **bounded submission queue** — when the queue is
//!   full, submitters block until space frees or their deadline expires
//!   ([`ServiceError::QueueFull`]), which is the backpressure edge.
//! * The batch-former thread owns the device. It groups queued requests by
//!   `(rows, cols, algorithm)` and dispatches a group when it reaches
//!   [`ServiceConfig::max_batch`] width **or** its oldest request has
//!   lingered [`ServiceConfig::max_linger`] — the adaptive window that
//!   trades a bounded sliver of latency for launch-count amortisation.
//! * Requests whose **deadline** passes while queued are rejected
//!   ([`ServiceError::DeadlineExceeded`]) rather than wedging the queue.
//! * [`Service::shutdown`] stops admissions and **fails fast**: requests
//!   still queued are answered [`ServiceError::Shutdown`] immediately
//!   (counted under `reason="shutdown_drain"`) instead of being left to
//!   hit their deadlines; then the batch-former is joined. A request
//!   already dispatched to the device still completes.
//! * The executor **self-heals** ([`ResilienceConfig`]): failed or
//!   corrupted device attempts (detected via the device's fault epoch, the
//!   paper's Table-I closed-form operation counts, and a SAT checksum /
//!   recurrence sweep) are retried with exponential backoff; consecutive
//!   launch failures open a circuit breaker that degrades dispatches to
//!   the sequential CPU path — requests complete slower instead of
//!   erroring — until a half-open canary probe re-closes it.
//! * With [`ServiceConfig::shards`]` > 1` the executor runs a **device
//!   fleet**: `D` devices, each its own fault domain with its own circuit
//!   breaker. `OneR1W` requests shard into `D` row-bands (the banded
//!   decomposition with an explicit margin exchange), the band kernels
//!   are pulled from a shared queue by whichever shards are healthy, and
//!   a shard whose breaker opens mid-dispatch hands its remaining bands
//!   to the survivors (`ShardFailover` in the flight recorder) — results
//!   stay bit-exact, and the CPU degradation path is reached only when
//!   *every* shard is open.
//! * Everything is instrumented ([`ServiceStats`]): per-request queue /
//!   execute / total latency, a batch-width histogram, and the launches and
//!   barrier windows actually issued vs. what per-request execution would
//!   have cost.
//! * Observability is **request-scoped** end to end: every admitted
//!   request is minted a `RequestId` that rides through batch formation
//!   into device launch metadata, links its whole lifecycle with
//!   Chrome-trace flow arrows (admit → queue → batch → launch →
//!   complete), stamps OpenMetrics exemplars onto the latency buckets,
//!   and keys the flight recorder's post-mortem bundles
//!   ([`PostmortemConfig`]). A zero-dependency HTTP listener
//!   ([`TelemetryConfig`]) serves `/metrics`, `/healthz` and
//!   `/debug/flight`.
//!
//! Only [`SatAlgorithm::OneR1W`] requests batch (that is the fused kernel
//! the paper's analysis yields); other algorithms are served per-request on
//! the same device and simply see no amortisation.

#![warn(missing_docs)]

mod http;
mod metrics;
mod resilience;
mod service;

pub use metrics::{LatencySummary, ServiceStats, SloConfig};
pub use resilience::{ResilienceConfig, VerifyMode};
pub use service::{Client, Service};

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use hmm_model::MachineConfig;

/// Telemetry HTTP listener configuration ([`ServiceConfig::telemetry`]).
///
/// When `listen` is set the service serves three plain-HTTP endpoints on
/// it — no external dependencies, one short-lived connection per request:
///
/// * `/metrics` — the exact bytes of [`Service::metrics_text`]
///   (Prometheus text exposition, OpenMetrics exemplars included);
/// * `/healthz` — a JSON health document reflecting the circuit-breaker
///   state and submission-queue depth;
/// * `/debug/flight` — the flight recorder's recent structured events.
///
/// The listener thread shuts down with the service.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Bind address (e.g. `"127.0.0.1:0"` for an ephemeral port); `None`
    /// (the default) starts no listener. Binding failures panic at
    /// [`Service::start`] — an explicitly requested listener that cannot
    /// serve is a deployment error, not something to limp past.
    pub listen: Option<String>,
}

/// Post-mortem dump configuration ([`ServiceConfig::postmortem`]).
///
/// On a trigger — circuit breaker opening, a result failing verification,
/// the SLO error-budget burn crossing `burn_threshold`, or (opted in via
/// `panic_hook`) a panic — the service dumps a schema-versioned bundle of
/// recent flight-recorder events, a registry snapshot, the last launch's
/// trace slice and the triggering request's flow to
/// `dir/postmortem-<prefix>-<seq>-<reason>.json` (see [`obs::flight`]).
#[derive(Debug, Clone)]
pub struct PostmortemConfig {
    /// Directory bundles are written to; `None` (the default) disables
    /// dumping. The observer must also be enabled — a disabled observer
    /// has nothing to dump.
    pub dir: Option<PathBuf>,
    /// Filename tag distinguishing this service's bundles.
    pub prefix: String,
    /// At most this many bundles per service lifetime (the first triggers
    /// win; a flapping breaker must not fill the disk).
    pub max_bundles: u64,
    /// Dump when the SLO error-budget burn rate reaches this value
    /// (checked after every dispatched batch); `None` disables the burn
    /// trigger.
    pub burn_threshold: Option<f64>,
    /// Install a process-wide panic hook that dumps a bundle (reason
    /// `panic`) before delegating to the previous hook. Off by default:
    /// panic hooks are global, so only one service per process should
    /// opt in.
    pub panic_hook: bool,
}

impl Default for PostmortemConfig {
    fn default() -> Self {
        PostmortemConfig {
            dir: None,
            prefix: "svc".to_string(),
            max_bundles: 1,
            burn_threshold: None,
            panic_hook: false,
        }
    }
}

/// Construction parameters for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Machine model of the owned device.
    pub machine: MachineConfig,
    /// Background device workers; `None` uses the device default.
    pub device_workers: Option<usize>,
    /// Bounded submission-queue capacity; submitters block (up to their
    /// deadline) when it is full.
    pub queue_capacity: usize,
    /// Maximum requests fused into one batched launch sequence.
    pub max_batch: usize,
    /// Longest a request may linger waiting for same-shape company before
    /// its batch is dispatched anyway.
    pub max_linger: Duration,
    /// Deadline applied when [`Client::submit`] passes `None`.
    pub default_deadline: Duration,
    /// Observability sink. When enabled ([`obs::Obs::new`]) the service
    /// emits request-lifecycle spans (admit → queue → batch → complete)
    /// and the owned device shares the same trace and counter registry;
    /// the default ([`obs::Obs::disabled`]) records nothing.
    pub observer: obs::Obs,
    /// Deterministic fault schedule injected into the owned device —
    /// chaos-testing hook; `None` (the default) injects nothing. With
    /// `shards > 1` this is the per-shard default, overridden entirely by
    /// [`shard_fault_plans`](Self::shard_fault_plans) when that is
    /// non-empty.
    pub fault_plan: Option<gpu_exec::FaultPlan>,
    /// Number of device shards (fault domains). `1` — the default — keeps
    /// the single-device executor. `D > 1` builds a
    /// [`gpu_exec::DeviceFleet`] and serves `OneR1W` requests through the
    /// banded decomposition ([`sat_core::par::sat_1r1w_banded`]'s kernels):
    /// each request's matrix splits into `D` row-bands whose phase kernels
    /// are work-stolen by the healthy shards, each guarded by its own
    /// circuit breaker — losing a device resharding its bands onto the
    /// survivors instead of degrading the whole service.
    pub shards: usize,
    /// Per-shard fault schedules, chaos-testing hook for asymmetric fleet
    /// faults (one device lost, rolling loss, a straggler shard). Empty
    /// (the default): every shard inherits [`fault_plan`](Self::fault_plan).
    /// Non-empty: must have exactly [`shards`](Self::shards) entries and
    /// fully specifies each shard's plan (`None` = no injection).
    pub shard_fault_plans: Vec<Option<gpu_exec::FaultPlan>>,
    /// Retry / circuit-breaker / verification tuning.
    pub resilience: ResilienceConfig,
    /// Latency objective the service reports against (target gauge,
    /// attainment ratio and error-budget burn on the metrics endpoint).
    pub slo: SloConfig,
    /// Model-conformance observatory (see [`obs::conformance`]). `None` —
    /// the default — derives [`obs::ConformanceConfig::for_machine`] from
    /// [`machine`](Self::machine), so the observatory is always on: every
    /// launch feeds the online (w, Λ, τ) estimator and drift detector,
    /// `sat_service_model_*` gauges and residual histograms are exposed on
    /// `/metrics`, and `/debug/conformance` serves the full JSON report.
    /// Set to override the estimator/drift tuning; the `width` and
    /// `window_overhead` fields are always overwritten from
    /// [`machine`](Self::machine) (one source of truth for the reference
    /// model).
    pub conformance: Option<obs::ConformanceConfig>,
    /// Optional plain-HTTP telemetry listener (`/metrics`, `/healthz`,
    /// `/debug/flight`).
    pub telemetry: TelemetryConfig,
    /// Post-mortem flight-recorder dumps on breaker-open, verification
    /// failure, SLO burn or panic.
    pub postmortem: PostmortemConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            machine: MachineConfig::with_width(32),
            device_workers: None,
            queue_capacity: 256,
            max_batch: 16,
            max_linger: Duration::from_micros(500),
            default_deadline: Duration::from_secs(5),
            observer: obs::Obs::disabled(),
            fault_plan: None,
            shards: 1,
            shard_fault_plans: Vec::new(),
            resilience: ResilienceConfig::default(),
            slo: SloConfig::default(),
            conformance: None,
            telemetry: TelemetryConfig::default(),
            postmortem: PostmortemConfig::default(),
        }
    }
}

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The submission queue stayed full until the request's deadline.
    QueueFull,
    /// The deadline expired while the request waited in the queue.
    DeadlineExceeded,
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The service shut down before the queued request was dispatched
    /// (fail-fast drain; distinct from [`ServiceError::ShuttingDown`],
    /// which rejects at admission time).
    Shutdown,
    /// The request was malformed (e.g. an empty matrix).
    InvalidRequest(String),
    /// The serving thread died before answering (a bug, not load).
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "submission queue full past the deadline"),
            ServiceError::DeadlineExceeded => write!(f, "deadline expired while queued"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Shutdown => {
                write!(f, "service shut down before the request was dispatched")
            }
            ServiceError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ServiceError::Internal(m) => write!(f, "internal service error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}
