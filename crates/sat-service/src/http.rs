//! Zero-dependency plain-HTTP telemetry listener.
//!
//! One `TcpListener` thread serves three read-only endpoints, one
//! short-lived connection per request (`Connection: close`):
//!
//! * `GET /metrics` — the exact bytes of
//!   [`Service::metrics_text`](crate::Service::metrics_text), as
//!   Prometheus text exposition (OpenMetrics exemplars included);
//! * `GET /healthz` — a small JSON document: overall status, the circuit
//!   breaker's current state (the per-shard aggregate in fleet mode),
//!   the shard count, submission-queue depth/capacity, whether a drain is
//!   in progress, and how many post-mortem bundles have been dumped;
//! * `GET /debug/flight` — the flight recorder's surviving recent events
//!   ([`obs::flight::events_json`]), oldest first;
//! * `GET /debug/conformance` — the model-conformance observatory's JSON
//!   report ([`obs::Conformance::report_json`]): the online (w, Λ) fit
//!   vs the configured machine, per-cell residual statistics, and any
//!   drift alerts.
//!
//! The implementation is deliberately minimal — enough HTTP/1.1 for
//! `curl`, Prometheus scrapes and the `svcprobe` gate: it reads headers up
//! to a small cap, answers the request line's path, and closes. Graceful
//! shutdown rides a flag plus a self-connection to wake the blocking
//! `accept`, so [`Telemetry::stop`] returns only after the thread exits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::Shared;

/// Most bytes of request head (request line + headers) the listener will
/// buffer before answering 400 — nothing legitimate comes close.
const MAX_HEAD: usize = 8 * 1024;

/// A running telemetry listener; dropped into [`Telemetry::stop`] by the
/// service's shutdown path.
pub(crate) struct Telemetry {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Telemetry {
    /// Bind `listen` (e.g. `"127.0.0.1:0"`) and spawn the serving thread.
    pub(crate) fn start(shared: Arc<Shared>, listen: &str) -> std::io::Result<Telemetry> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sat-service-telemetry".to_string())
            .spawn(move || serve(&listener, &shared, &thread_stop))?;
        Ok(Telemetry {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves an ephemeral-port request).
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving: raise the flag, wake the blocking `accept` with a
    /// throwaway connection, and join the thread.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve(listener: &TcpListener, shared: &Shared, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            // Transient accept errors (connection reset mid-handshake)
            // should not kill the listener; check for shutdown and go on.
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        let _ = answer(stream, shared);
    }
}

/// Read one request head and write one response; any I/O error just drops
/// the connection.
fn answer(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD {
            return respond(&mut stream, 400, "text/plain", "request head too large\n");
        }
    }
    let line = match std::str::from_utf8(&head) {
        Ok(s) => s.lines().next().unwrap_or(""),
        Err(_) => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    let mut parts = line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let path = target.split('?').next().unwrap_or("");
    match path {
        "/metrics" => {
            let body = shared.metrics.expose_text();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let body = health_json(shared);
            respond(&mut stream, 200, "application/json", &body)
        }
        "/debug/flight" => {
            let events = obs::flight::events_json(&shared.cfg.observer.flight_recent());
            let body = format!(
                "{{\"schema\":\"{}\",\"events\":{events}}}",
                obs::flight::SCHEMA
            );
            respond(&mut stream, 200, "application/json", &body)
        }
        "/debug/conformance" => {
            let body = shared.conformance.report_json();
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// The `/healthz` document. Every value is a bare keyword or number, so
/// no JSON escaping is needed.
fn health_json(shared: &Shared) -> String {
    let (depth, shutting_down) = {
        let st = shared.state.lock();
        (st.depth(), st.shutdown)
    };
    let breaker = shared.metrics.breaker_state();
    let status = if shutting_down {
        "shutting_down"
    } else if breaker != "closed" {
        "degraded"
    } else {
        "ok"
    };
    format!(
        "{{\"status\":\"{status}\",\"breaker\":\"{breaker}\",\"shards\":{shards},\
         \"queue_depth\":{depth},\
         \"queue_capacity\":{cap},\"shutting_down\":{shutting_down},\
         \"postmortem_bundles\":{bundles}}}",
        shards = shared.metrics.shards(),
        cap = shared.cfg.queue_capacity,
        bundles = shared.postmortems.load(Ordering::Relaxed),
    )
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
