//! The service proper: bounded submission queue, client handles, and the
//! batch-former thread that owns the device.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_exec::{
    BufferPool, Device, DeviceFleet, DeviceOptions, FleetOptions, GlobalBuffer, LaunchContext,
};
use hmm_model::cost::{CostCounters, ExactCounts, GlobalCost, SatAlgorithm};
use obs::conformance::cell_label;
use obs::flight::Trigger;
use obs::{ArgValue, Conformance, FlightKind, FlowPhase, Obs, Track};
use parking_lot::{Condvar, Mutex};
use sat_core::par::{band_colsum, band_wavefront, margin_exchange, BandPlan};
use sat_core::{compute_sat, compute_sat_batch_with, Matrix, SumTable};

use crate::http::Telemetry;
use crate::metrics::Metrics;
use crate::resilience::{backoff_delay, canary_ok, verify_sat, CircuitBreaker, Disposition};
use crate::{ServiceConfig, ServiceError, ServiceStats, VerifyMode};

type Reply = mpsc::SyncSender<Result<SumTable<f64>, ServiceError>>;

pub(crate) struct Request {
    /// Request id minted at admission; the flow id of the request's
    /// Chrome-trace arrow chain and the key of its flight-recorder events.
    id: u64,
    image: Matrix<f64>,
    algorithm: SatAlgorithm,
    enqueued: Instant,
    deadline: Instant,
    reply: Reply,
}

#[derive(Default)]
pub(crate) struct QueueState {
    pub(crate) queue: VecDeque<Request>,
    pub(crate) shutdown: bool,
}

impl QueueState {
    /// Queue depth, for the health endpoint.
    pub(crate) fn depth(&self) -> usize {
        self.queue.len()
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServiceConfig,
    pub(crate) state: Mutex<QueueState>,
    /// Submitters wait here for queue space (backpressure edge).
    space_cv: Condvar,
    /// The batch-former waits here for work or its linger window.
    work_cv: Condvar,
    pub(crate) metrics: Metrics,
    /// Source of admission-time request ids (1-based; 0 means "no
    /// request" in flight-recorder events).
    next_request: AtomicU64,
    /// Post-mortem bundles dumped so far (capped by
    /// [`crate::PostmortemConfig::max_bundles`]).
    pub(crate) postmortems: AtomicU64,
    /// The live model-conformance observatory: every device launch feeds
    /// it a (counters, wall-time) sample; it fits (w, Λ) online and
    /// raises drift alerts. Shared with the fleet's devices.
    pub(crate) conformance: Conformance,
    /// Drift alerts already turned into post-mortem triggers — a cursor
    /// over [`Conformance::alert_count`], advanced at dispatch boundaries.
    drift_alerts_seen: AtomicU64,
}

/// A running SAT service. Created by [`Service::start`]; hand out
/// [`Client`]s with [`Service::client`]. Dropping the service shuts it
/// down (still-queued requests fail fast with [`ServiceError::Shutdown`]).
pub struct Service {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    telemetry: Option<Telemetry>,
}

/// A cheap, cloneable handle for submitting requests from any thread.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Service {
    /// Start the service: build the device fleet (one device unless
    /// [`ServiceConfig::shards`]` > 1`) and spawn the batch-former.
    pub fn start(cfg: ServiceConfig) -> Service {
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "max batch must be positive");
        assert!(cfg.shards > 0, "shard count must be positive");
        // Share one registry between serving-layer, device and conformance
        // metrics so a single scrape covers all three; fall back to a
        // private registry when observability is off (ServiceStats and the
        // conformance report keep working either way).
        let registry = cfg.observer.registry().unwrap_or_default();
        // The observatory is always on: launches are being timed anyway,
        // and a fit that never converges is itself a health signal. The
        // machine's configured parameters always win over a caller-supplied
        // config — they are what the fit is checked against.
        let mut ccfg = cfg
            .conformance
            .clone()
            .unwrap_or_else(|| obs::ConformanceConfig::for_machine(0, 0));
        ccfg.width = cfg.machine.width as u64;
        ccfg.window_overhead = cfg.machine.window_overhead();
        let conformance = Conformance::with_registry(ccfg, &registry, "sat_service_");
        let mut opts = DeviceOptions::new(cfg.machine)
            .observer(cfg.observer.clone())
            .conformance(conformance.clone());
        if let Some(w) = cfg.device_workers {
            opts = opts.workers(w);
        }
        if let Some(plan) = cfg.fault_plan.clone() {
            opts = opts.fault_plan(plan);
        }
        let mut fleet_opts = FleetOptions::new(opts, cfg.shards);
        if !cfg.shard_fault_plans.is_empty() {
            assert!(
                cfg.shard_fault_plans.len() == cfg.shards,
                "shard_fault_plans must be empty or have one entry per shard ({} vs {})",
                cfg.shard_fault_plans.len(),
                cfg.shards
            );
            fleet_opts = fleet_opts.fault_plans(cfg.shard_fault_plans.clone());
        }
        let fleet = DeviceFleet::new(fleet_opts);
        let mut metrics = Metrics::new(registry, cfg.slo);
        metrics.configure_shards(cfg.shards);
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(QueueState::default()),
            space_cv: Condvar::new(),
            work_cv: Condvar::new(),
            metrics,
            next_request: AtomicU64::new(0),
            postmortems: AtomicU64::new(0),
            conformance,
            drift_alerts_seen: AtomicU64::new(0),
        });
        if shared.cfg.postmortem.panic_hook {
            if let (Some(dir), true) = (
                shared.cfg.postmortem.dir.clone(),
                shared.cfg.observer.is_enabled(),
            ) {
                obs::flight::install_panic_hook(
                    shared.cfg.observer.clone(),
                    dir,
                    shared.cfg.postmortem.prefix.clone(),
                );
            }
        }
        let telemetry = shared.cfg.telemetry.listen.clone().map(|addr| {
            Telemetry::start(Arc::clone(&shared), &addr)
                .unwrap_or_else(|e| panic!("telemetry listener on {addr}: {e}"))
        });
        let for_batcher = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("sat-service-batcher".to_string())
            .spawn(move || batcher_loop(&for_batcher, &fleet))
            .expect("spawning the batch-former thread");
        Service {
            shared,
            batcher: Some(batcher),
            telemetry,
        }
    }

    /// A new submission handle.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Snapshot the service's instrumentation.
    pub fn stats(&self) -> ServiceStats {
        self.shared.metrics.snapshot()
    }

    /// Prometheus-style text exposition of every counter and gauge the
    /// service maintains (plus the device's `gpu_*` counters when the
    /// service was started with an enabled observer). The `/metrics`
    /// endpoint of the telemetry listener serves exactly these bytes.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.expose_text()
    }

    /// The live model-conformance observatory: online (w, Λ) fit,
    /// per-cell residual statistics and drift alerts, fed by every device
    /// launch the service issues.
    pub fn conformance(&self) -> &Conformance {
        &self.shared.conformance
    }

    /// The JSON conformance report — the same document the telemetry
    /// listener serves at `/debug/conformance`.
    pub fn conformance_report(&self) -> String {
        self.shared.conformance.report_json()
    }

    /// The telemetry listener's bound address, when one was configured
    /// ([`crate::TelemetryConfig::listen`]) — useful with an ephemeral
    /// port request like `127.0.0.1:0`.
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.as_ref().map(Telemetry::addr)
    }

    /// Stop admitting requests, fail everything still queued with
    /// [`ServiceError::Shutdown`] (counted under `reason="shutdown_drain"`),
    /// join the batch-former, and return the final statistics. A dispatch
    /// already on the device completes normally first.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        self.shared.metrics.snapshot()
    }

    fn begin_shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        if let Some(t) = self.telemetry.take() {
            t.stop();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

impl Client {
    /// Submit one matrix for SAT computation and block until the result or
    /// a rejection.
    ///
    /// `deadline` is the time budget for *queueing* (admission under
    /// backpressure plus waiting for a batch slot); `None` uses
    /// [`ServiceConfig::default_deadline`]. Once dispatched to the device a
    /// request always completes. The returned [`SumTable`] wraps a SAT
    /// bit-equal to `compute_sat` of the same image.
    pub fn submit(
        &self,
        image: Matrix<f64>,
        algorithm: SatAlgorithm,
        deadline: Option<Duration>,
    ) -> Result<SumTable<f64>, ServiceError> {
        let obs = &self.shared.cfg.observer;
        if image.rows() == 0 || image.cols() == 0 {
            let err = ServiceError::InvalidRequest("empty matrix".to_string());
            self.shared.metrics.on_reject(&err);
            obs.flight_event(FlightKind::Reject, 0, REJECT_INVALID, 0);
            return Err(err);
        }
        let enqueued = Instant::now();
        let deadline_at = enqueued + deadline.unwrap_or(self.shared.cfg.default_deadline);
        let (rows, cols) = (image.rows(), image.cols());
        let (tx, rx) = mpsc::sync_channel(1);
        let id;
        {
            let mut st = self.shared.state.lock();
            loop {
                if st.shutdown {
                    drop(st);
                    let err = ServiceError::ShuttingDown;
                    self.shared.metrics.on_reject(&err);
                    obs.flight_event(FlightKind::Reject, 0, REJECT_SHUTTING_DOWN, 0);
                    return Err(err);
                }
                if st.queue.len() < self.shared.cfg.queue_capacity {
                    break;
                }
                let timeout = deadline_at.saturating_duration_since(Instant::now());
                if timeout.is_zero() {
                    drop(st);
                    let err = ServiceError::QueueFull;
                    self.shared.metrics.on_reject(&err);
                    obs.flight_event(FlightKind::Reject, 0, REJECT_QUEUE_FULL, 0);
                    return Err(err);
                }
                self.shared.space_cv.wait_for(&mut st, timeout);
            }
            // Mint the request id at admission: 1-based so 0 can mean "no
            // request" in launch metadata and flight events.
            id = self.shared.next_request.fetch_add(1, Ordering::Relaxed) + 1;
            st.queue.push_back(Request {
                id,
                image,
                algorithm,
                enqueued,
                deadline: deadline_at,
                reply: tx,
            });
        }
        self.shared.metrics.on_submit();
        obs.instant(
            Track::wall(0),
            "admit",
            vec![
                ("request", ArgValue::from(id)),
                ("rows", ArgValue::from(rows)),
                ("cols", ArgValue::from(cols)),
                ("algo", ArgValue::from(algorithm.name())),
            ],
        );
        obs.flight_event(FlightKind::Admit, id, rows as u64, cols as u64);
        self.shared.work_cv.notify_all();
        match rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServiceError::Internal(
                "batch-former dropped the request without answering".to_string(),
            )),
        }
    }

    /// Snapshot the service's instrumentation.
    pub fn stats(&self) -> ServiceStats {
        self.shared.metrics.snapshot()
    }

    /// Prometheus-style text exposition; see [`Service::metrics_text`].
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.expose_text()
    }
}

/// Reason codes carried in the `a` word of [`FlightKind::Reject`] events.
const REJECT_QUEUE_FULL: u64 = 1;
const REJECT_SHUTTING_DOWN: u64 = 2;
const REJECT_INVALID: u64 = 3;
const REJECT_DEADLINE: u64 = 4;
const REJECT_SHUTDOWN_DRAIN: u64 = 5;

/// Base `tid` of the wall-clock tracks request-lifecycle spans land on
/// (`queue` spans use 1..=16; `request` spans get their own lane group so
/// the two never have to nest).
const REQUEST_TRACK_BASE: u32 = 32;
const REQUEST_TRACK_LANES: u64 = 8;

/// Retro-emit the terminal lifecycle records of one request: a `request`
/// span covering admission → exit with its terminal `status` arg, plus the
/// flow chain's endpoints (`FlowPhase::Start` at admission inside that
/// span, `FlowPhase::End` at its close), so every opened request span is
/// closed on every exit path — complete, degraded, deadline-expired and
/// shutdown-drain alike.
fn close_request_span(obs: &Obs, id: u64, enqueued: Instant, ended: Instant, status: &'static str) {
    if !obs.is_enabled() {
        return;
    }
    let track = Track::wall(REQUEST_TRACK_BASE + (id % REQUEST_TRACK_LANES) as u32);
    obs.wall_span_at(
        track,
        "request",
        enqueued,
        ended,
        None,
        vec![
            ("request", ArgValue::from(id)),
            ("status", ArgValue::from(status)),
        ],
    );
    obs.flow_wall(track, "request", FlowPhase::Start, id, enqueued);
    obs.flow_wall(track, "request", FlowPhase::End, id, ended);
}

/// One dispatch decision: a same-shape, same-algorithm slice of the queue.
struct Dispatch {
    algorithm: SatAlgorithm,
    requests: Vec<Request>,
}

/// A group's view while scanning the queue.
struct GroupView {
    rows: usize,
    cols: usize,
    algorithm: SatAlgorithm,
    count: usize,
    oldest: Instant,
}

/// Per-batcher resilience state: the circuit breakers (one per shard;
/// index 0 doubles as *the* breaker in single-device mode) and buffer pool
/// are owned by this one thread between dispatches. During a fleet
/// dispatch each shard worker borrows its own breaker mutably — the
/// breakers are disjoint, so no locking is needed.
struct ExecState {
    breakers: Vec<CircuitBreaker>,
    pool: BufferPool<f64>,
    /// Whether result verification runs (resolved from [`VerifyMode`]).
    verify_on: bool,
    /// Decorrelates successive backoff jitters within one batcher lifetime.
    salt: u64,
    /// Dispatch sequence number, carried as launch metadata.
    batch_no: u64,
}

fn batcher_loop(shared: &Shared, fleet: &DeviceFleet) {
    let verify_on = match shared.cfg.resilience.verify {
        VerifyMode::Always => true,
        VerifyMode::Never => false,
        VerifyMode::Auto => fleet.iter().any(|d| d.fault_plan().is_some()),
    };
    let mut ex = ExecState {
        breakers: (0..fleet.len())
            .map(|_| CircuitBreaker::new(&shared.cfg.resilience))
            .collect(),
        pool: BufferPool::new(),
        verify_on,
        salt: 0,
        batch_no: 0,
    };
    loop {
        let mut expired: Vec<Request> = Vec::new();
        let mut drained: Vec<Request> = Vec::new();
        let mut ready: Vec<Dispatch> = Vec::new();
        let mut exit = false;
        {
            let mut st = shared.state.lock();
            loop {
                // Fail fast on shutdown: everything still queued is answered
                // `Shutdown` immediately instead of riding out its deadline.
                if st.shutdown {
                    drained.extend(st.queue.drain(..));
                    exit = true;
                    break;
                }
                let now = Instant::now();
                let before = st.queue.len();

                // Reject-rather-than-wedge: drop requests whose queueing
                // deadline has passed.
                let mut i = 0;
                while i < st.queue.len() {
                    if st.queue[i].deadline <= now {
                        expired.push(st.queue.remove(i).expect("index in bounds"));
                    } else {
                        i += 1;
                    }
                }

                // Group the survivors by (shape, algorithm).
                let mut groups: Vec<GroupView> = Vec::new();
                for r in &st.queue {
                    let key = (r.image.rows(), r.image.cols(), r.algorithm);
                    match groups
                        .iter_mut()
                        .find(|g| (g.rows, g.cols, g.algorithm) == key)
                    {
                        Some(g) => {
                            g.count += 1;
                            g.oldest = g.oldest.min(r.enqueued);
                        }
                        None => groups.push(GroupView {
                            rows: key.0,
                            cols: key.1,
                            algorithm: key.2,
                            count: 1,
                            oldest: r.enqueued,
                        }),
                    }
                }

                // Adaptive window: a group dispatches when full, when its
                // oldest request has lingered long enough, or when the
                // algorithm cannot batch anyway.
                for g in &groups {
                    let batchable = g.algorithm == SatAlgorithm::OneR1W;
                    let linger_hit = g.oldest + shared.cfg.max_linger <= now;
                    if g.count >= shared.cfg.max_batch || linger_hit || !batchable {
                        // Non-batchable algorithms dispatch one at a time so
                        // the width histogram reflects true fused widths.
                        let cap = if batchable { shared.cfg.max_batch } else { 1 };
                        let mut take = Vec::new();
                        let mut i = 0;
                        while i < st.queue.len() && take.len() < cap {
                            let r = &st.queue[i];
                            if (r.image.rows(), r.image.cols(), r.algorithm)
                                == (g.rows, g.cols, g.algorithm)
                            {
                                take.push(st.queue.remove(i).expect("index in bounds"));
                            } else {
                                i += 1;
                            }
                        }
                        ready.push(Dispatch {
                            algorithm: g.algorithm,
                            requests: take,
                        });
                    }
                }

                if st.queue.len() < before {
                    shared.space_cv.notify_all();
                }
                if !ready.is_empty() || !expired.is_empty() {
                    break;
                }

                // Sleep until the earliest linger expiry or request
                // deadline, whichever comes first; submissions notify.
                let wake = st
                    .queue
                    .iter()
                    .map(|r| r.deadline)
                    .chain(groups.iter().map(|g| g.oldest + shared.cfg.max_linger))
                    .min();
                match wake {
                    None => shared.work_cv.wait(&mut st),
                    Some(t) => {
                        let timeout = t.saturating_duration_since(now);
                        if !timeout.is_zero() {
                            shared.work_cv.wait_for(&mut st, timeout);
                        }
                    }
                }
            }
        }

        for r in expired {
            let err = ServiceError::DeadlineExceeded;
            shared.metrics.on_reject(&err);
            shared.cfg.observer.instant(
                Track::wall(0),
                "deadline_expired",
                vec![
                    ("request", ArgValue::from(r.id)),
                    ("rows", ArgValue::from(r.image.rows())),
                    ("cols", ArgValue::from(r.image.cols())),
                ],
            );
            shared
                .cfg
                .observer
                .flight_event(FlightKind::Reject, r.id, REJECT_DEADLINE, 0);
            close_request_span(
                &shared.cfg.observer,
                r.id,
                r.enqueued,
                Instant::now(),
                "deadline_expired",
            );
            let _ = r.reply.send(Err(err));
        }
        if !drained.is_empty() {
            shared.cfg.observer.instant(
                Track::wall(0),
                "shutdown_drain",
                vec![("count", ArgValue::from(drained.len()))],
            );
            let now = Instant::now();
            for r in drained {
                let err = ServiceError::Shutdown;
                shared.metrics.on_reject(&err);
                shared.cfg.observer.flight_event(
                    FlightKind::Reject,
                    r.id,
                    REJECT_SHUTDOWN_DRAIN,
                    0,
                );
                close_request_span(
                    &shared.cfg.observer,
                    r.id,
                    r.enqueued,
                    now,
                    "shutdown_drain",
                );
                let _ = r.reply.send(Err(err));
            }
        }
        for d in ready {
            if fleet.len() == 1 {
                execute(shared, fleet.device(0), d, &mut ex);
            } else {
                fleet_execute(shared, fleet, d, &mut ex);
            }
        }
        if exit {
            return;
        }
    }
}

/// Report a circuit-breaker transition, if one happened: counters, an
/// instant on the trace, a flight-recorder event — and, on a transition
/// into `open`, a queued post-mortem trigger (dumped once the dispatch's
/// lifecycle records are all emitted, so the bundle holds the full chain).
fn report_breaker(
    shared: &Shared,
    transition: Option<&'static str>,
    request: u64,
    dumps: &mut Vec<Trigger>,
) {
    if let Some(to) = transition {
        shared.metrics.on_breaker(to);
        shared
            .cfg
            .observer
            .instant(Track::wall(0), "breaker", vec![("to", ArgValue::from(to))]);
        let code = match to {
            "open" => 1,
            "half_open" => 2,
            _ => 3,
        };
        shared
            .cfg
            .observer
            .flight_event(FlightKind::BreakerTransition, request, code, 0);
        if to == "open" {
            dumps.push(Trigger {
                reason: "breaker_open".to_string(),
                request,
                detail: "consecutive launch failures opened the circuit breaker".to_string(),
            });
        }
    }
}

/// Complete every still-pending request on the sequential CPU path
/// ([`sat_core::seq::sat_4r1w_cpu`]): slower, but immune to device faults.
/// Marks each completed index in `degraded` so its terminal span status
/// reads `degraded` rather than `ok`.
fn degrade_pending(
    shared: &Shared,
    images: &[Matrix<f64>],
    pending: &mut Vec<usize>,
    results: &mut [Option<Matrix<f64>>],
    degraded: &mut [bool],
) {
    shared.cfg.observer.instant(
        Track::wall(0),
        "degraded",
        vec![("count", ArgValue::from(pending.len()))],
    );
    for &i in pending.iter() {
        let mut m = images[i].clone();
        sat_core::seq::sat_4r1w_cpu(&mut m);
        results[i] = Some(m);
        degraded[i] = true;
        shared.metrics.on_degraded();
    }
    pending.clear();
}

/// Dump one queued post-mortem bundle, respecting the lifetime cap. Only
/// the batch-former calls this, but the count is atomic anyway so the
/// panic hook's dumps cannot race it into exceeding the cap by more than
/// the hook's own bundle.
fn maybe_dump(shared: &Shared, trigger: &Trigger) {
    let Some(dir) = shared.cfg.postmortem.dir.as_deref() else {
        return;
    };
    if !shared.cfg.observer.is_enabled() {
        return;
    }
    if shared.postmortems.fetch_add(1, Ordering::Relaxed) >= shared.cfg.postmortem.max_bundles {
        shared.postmortems.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    match obs::flight::dump(
        &shared.cfg.observer,
        dir,
        &shared.cfg.postmortem.prefix,
        trigger,
    ) {
        Ok(path) => shared.cfg.observer.instant(
            Track::wall(0),
            "postmortem",
            vec![
                ("request", ArgValue::from(trigger.request)),
                ("path", ArgValue::from(path.display().to_string())),
            ],
        ),
        Err(e) => eprintln!("sat-service: post-mortem dump failed: {e}"),
    }
}

/// Queue a post-mortem trigger when the observatory raised drift alerts
/// since the last dispatch boundary the batcher looked at. The
/// `DriftAlert` *flight events* are emitted by the device at ingest time;
/// this only decides when a bundle is worth dumping. Drift is
/// machine-scoped, not request-scoped, so the trigger carries request 0.
fn check_drift(shared: &Shared, dumps: &mut Vec<Trigger>) {
    let total = shared.conformance.alert_count() as u64;
    let seen = shared.drift_alerts_seen.swap(total, Ordering::Relaxed);
    if total > seen {
        dumps.push(Trigger {
            reason: "drift".to_string(),
            request: 0,
            detail: format!(
                "{} new model-conformance drift alert(s); see /debug/conformance",
                total - seen
            ),
        });
    }
}

/// Table-I closed-form check: on block-aligned squares the batched 1R1W
/// kernel must cost exactly `B×` the single-run exact counts
/// ([`GlobalCost::exact_counts`]) in coalesced and stride transactions —
/// blocks silently skipped by a fault show up as missing work. Returns
/// `true` (no evidence of failure) for shapes without a closed form.
fn counts_match_closed_form(
    dev: &Device,
    before: &CostCounters,
    batch: usize,
    rows: usize,
    cols: usize,
) -> bool {
    let w = dev.width();
    let prows = rows.max(1).next_multiple_of(w);
    let pcols = cols.max(1).next_multiple_of(w);
    if prows != pcols {
        return true;
    }
    let Some(exact) = GlobalCost::new(*dev.config()).exact_counts(SatAlgorithm::OneR1W, prows)
    else {
        return true;
    };
    let after = dev.stats();
    let b = batch as u64;
    after.coalesced_reads.wrapping_sub(before.coalesced_reads) == b * exact.coalesced_reads
        && after.coalesced_writes.wrapping_sub(before.coalesced_writes)
            == b * exact.coalesced_writes
        && after.stride_reads.wrapping_sub(before.stride_reads) == b * exact.stride_reads
        && after.stride_writes.wrapping_sub(before.stride_writes) == b * exact.stride_writes
}

/// Run one dispatch through the self-healing attempt loop and answer its
/// requests. Every request is answered `Ok` — a device that keeps failing
/// degrades to the CPU path rather than erroring.
fn execute(shared: &Shared, dev: &Device, d: Dispatch, ex: &mut ExecState) {
    let width = d.requests.len();
    if width == 0 {
        return;
    }
    let dispatched_at = Instant::now();
    let queue_ns: Vec<u64> = d
        .requests
        .iter()
        .map(|r| dispatched_at.duration_since(r.enqueued).as_nanos() as u64)
        .collect();
    let enqueued_at: Vec<Instant> = d.requests.iter().map(|r| r.enqueued).collect();
    let ids: Vec<u64> = d.requests.iter().map(|r| r.id).collect();
    let mut images = Vec::with_capacity(width);
    let mut replies = Vec::with_capacity(width);
    for r in d.requests {
        images.push(r.image);
        replies.push(r.reply);
    }
    ex.batch_no += 1;
    let batch_no = ex.batch_no;
    shared
        .cfg
        .observer
        .flight_event(FlightKind::BatchFormed, ids[0], batch_no, width as u64);
    let mut dumps: Vec<Trigger> = Vec::new();

    let w = dev.width();
    // Launches one per-request 1R1W run of this shape would cost: the
    // padded grid has `m_r × m_c` blocks and `m_r + m_c − 1` diagonals.
    let (rows, cols) = (images[0].rows(), images[0].cols());
    let per_single = {
        let m_r = rows.max(1).div_ceil(w);
        let m_c = cols.max(1).div_ceil(w);
        m_r + m_c - 1
    } as u64;

    // Conformance cells bucket launches by (algorithm, shape); every
    // launch of this dispatch reports its sample under this label.
    dev.set_conformance_cell(Some(cell_label(d.algorithm.name(), rows, cols)));

    let rcfg = &shared.cfg.resilience;
    let before = dev.launches();
    let mut results: Vec<Option<Matrix<f64>>> = (0..width).map(|_| None).collect();
    let mut degraded: Vec<bool> = vec![false; width];
    let mut pending: Vec<usize> = (0..width).collect();
    let mut attempts = 0u32;
    while !pending.is_empty() {
        // Attempt budget exhausted: stop fighting the device.
        if attempts >= rcfg.max_attempts {
            degrade_pending(shared, &images, &mut pending, &mut results, &mut degraded);
            break;
        }
        let (disposition, transition) = ex.breakers[0].poll(Instant::now());
        report_breaker(shared, transition, ids[pending[0]], &mut dumps);
        match disposition {
            Disposition::Degrade => {
                degrade_pending(shared, &images, &mut pending, &mut results, &mut degraded);
                break;
            }
            Disposition::Probe => {
                shared.metrics.on_canary();
                let ok = canary_ok(dev);
                shared.cfg.observer.instant(
                    Track::wall(0),
                    "canary",
                    vec![("ok", ArgValue::from(usize::from(ok)))],
                );
                let t = if ok {
                    ex.breakers[0].on_success()
                } else {
                    ex.breakers[0].on_failure(Instant::now())
                };
                report_breaker(shared, t, ids[pending[0]], &mut dumps);
                continue; // Re-poll: the probe decided Use vs. Degrade.
            }
            Disposition::Use => {}
        }

        if attempts > 0 {
            shared.metrics.on_retry();
            ex.salt = ex.salt.wrapping_add(1);
            std::thread::sleep(backoff_delay(rcfg, attempts, ex.salt));
        }
        attempts += 1;

        let epoch_before = dev.fault_epoch();
        let stats_before =
            (ex.verify_on && d.algorithm == SatAlgorithm::OneR1W).then(|| dev.stats());
        // Launch metadata: the device stamps these ids onto its launch
        // spans and emits one flow step per id inside them, which is what
        // links the request's admit-side chain to the kernel level.
        dev.set_launch_context(Some(LaunchContext {
            batch: batch_no,
            requests: pending.iter().map(|&i| ids[i]).collect(),
        }));
        let out: Vec<Matrix<f64>> = if d.algorithm == SatAlgorithm::OneR1W {
            if pending.len() == width {
                compute_sat_batch_with(dev, &ex.pool, &images)
            } else {
                let retry: Vec<Matrix<f64>> = pending.iter().map(|&i| images[i].clone()).collect();
                compute_sat_batch_with(dev, &ex.pool, &retry)
            }
        } else {
            pending
                .iter()
                .map(|&i| compute_sat(dev, d.algorithm, &images[i]))
                .collect()
        };
        dev.set_launch_context(None);

        // A fault-epoch bump is the "CUDA error code" analogue; the
        // closed-form mismatch catches work lost without an error.
        let launch_failed = dev.fault_epoch() != epoch_before
            || stats_before
                .is_some_and(|s| !counts_match_closed_form(dev, &s, pending.len(), rows, cols));
        shared.metrics.on_attempt(!launch_failed);
        if launch_failed {
            shared.cfg.observer.instant(
                Track::wall(0),
                "attempt_failed",
                vec![("attempt", ArgValue::from(attempts as usize))],
            );
            report_breaker(
                shared,
                ex.breakers[0].on_failure(Instant::now()),
                ids[pending[0]],
                &mut dumps,
            );
            continue;
        }
        report_breaker(
            shared,
            ex.breakers[0].on_success(),
            ids[pending[0]],
            &mut dumps,
        );

        // Verify each result; failures stay pending for the next attempt
        // (they do not feed the breaker — the launch itself was healthy).
        let mut unverified = 0usize;
        let mut still: Vec<usize> = Vec::new();
        for (i, sat) in pending.iter().copied().zip(out) {
            let ok = !ex.verify_on || verify_sat(&images[i], &sat);
            if ex.verify_on {
                shared.metrics.on_verify(ok);
            }
            if ok {
                results[i] = Some(sat);
            } else {
                unverified += 1;
                still.push(i);
                shared.cfg.observer.flight_event(
                    FlightKind::VerifyFailure,
                    ids[i],
                    attempts as u64,
                    0,
                );
            }
        }
        if unverified > 0 {
            shared.cfg.observer.instant(
                Track::wall(0),
                "verify_failed",
                vec![("count", ArgValue::from(unverified))],
            );
            dumps.push(Trigger {
                reason: "verify_failure".to_string(),
                request: ids[still[0]],
                detail: format!("{unverified} result(s) failed SAT verification"),
            });
        }
        pending = still;
    }
    dev.set_conformance_cell(None);

    let issued = dev.launches() - before;
    let exec_ns = dispatched_at.elapsed().as_nanos() as u64;

    // What per-request execution would have cost. For the batched 1R1W
    // path each extra request would have re-paid the full wavefront; the
    // unbatched algorithms see no amortisation (equiv = issued).
    let (launches_equiv, runs) = if d.algorithm == SatAlgorithm::OneR1W {
        (per_single * width as u64, 1u64)
    } else {
        (issued, width as u64)
    };
    let barriers = issued.saturating_sub(runs);
    let barriers_equiv = launches_equiv.saturating_sub(width as u64);

    shared.metrics.on_batch(&crate::metrics::BatchRecord {
        width,
        launches: issued,
        launches_equiv,
        barriers,
        barriers_equiv,
        queue_ns: &queue_ns,
        exec_ns,
        request_ids: &ids,
    });

    // SLO-burn trigger: check the scrape-time burn rate after folding this
    // batch in, and queue a dump the first time it crosses the threshold.
    if let Some(threshold) = shared.cfg.postmortem.burn_threshold {
        let burn = shared.metrics.slo_burn();
        if burn >= threshold {
            shared.cfg.observer.flight_event(
                FlightKind::SloBurn,
                ids[0],
                (burn * 1000.0) as u64,
                (threshold * 1000.0) as u64,
            );
            dumps.push(Trigger {
                reason: "slo_burn".to_string(),
                request: ids[0],
                detail: format!("error-budget burn {burn:.3} reached threshold {threshold:.3}"),
            });
        }
    }
    check_drift(shared, &mut dumps);

    // Retro-emit the lifecycle spans now that the batch's end is known: a
    // `batch` span covering device execution on lane 0 (the device's own
    // per-launch spans nest inside it by containment), one `queue` span
    // per request from admission to dispatch parented to the batch, and
    // one `request` span per request carrying its terminal status and the
    // flow chain's endpoints. A flow step at dispatch time inside the
    // batch span joins the per-request chains to the shared batch.
    let obs = &shared.cfg.observer;
    if obs.is_enabled() {
        let done = Instant::now();
        let batch = obs.wall_span_at(
            Track::wall(0),
            "batch",
            dispatched_at,
            done,
            None,
            vec![
                ("batch", ArgValue::from(batch_no)),
                ("width", ArgValue::from(width)),
                ("algo", ArgValue::from(d.algorithm.name())),
                ("launches", ArgValue::from(issued)),
            ],
        );
        for (i, &enq) in enqueued_at.iter().enumerate() {
            obs.wall_span_at(
                Track::wall(1 + (i as u32 % 16)),
                "queue",
                enq,
                dispatched_at,
                batch,
                vec![("request", ArgValue::from(ids[i]))],
            );
            obs.flow_wall(
                Track::wall(0),
                "request",
                FlowPhase::Step,
                ids[i],
                dispatched_at,
            );
            let status = if degraded[i] { "degraded" } else { "ok" };
            close_request_span(obs, ids[i], enq, done, status);
        }
        obs.instant(
            Track::wall(0),
            "complete",
            vec![("width", ArgValue::from(width))],
        );
    }
    // Dump queued post-mortems only now, so a bundle triggered mid-attempt
    // still captures the triggering request's complete event chain.
    for trigger in &dumps {
        maybe_dump(shared, trigger);
    }
    for (reply, sat) in replies.into_iter().zip(results) {
        let sat = sat.expect("the attempt loop resolves every request");
        let _ = reply.send(Ok(SumTable::from_sat(sat)));
    }
}

// ---------------------------------------------------------------------------
// Fleet execution: sharded dispatch with work stealing and shard failover.
// ---------------------------------------------------------------------------

/// [`report_breaker`]'s fleet sibling: the transition belongs to one
/// shard's breaker. Counts it, stamps the shard onto the trace instant and
/// into the flight event's `b` word, and refreshes the aggregate breaker
/// state the health endpoint reports. Post-mortem triggers are *not*
/// queued here — fleet bundles are keyed to the failover itself, which is
/// the moment work actually moved.
fn report_shard_breaker(
    shared: &Shared,
    transition: Option<&'static str>,
    shard: usize,
    request: u64,
) {
    if let Some(to) = transition {
        shared.metrics.on_shard_breaker(shard, to);
        shared.cfg.observer.instant(
            Track::wall(0),
            "breaker",
            vec![("shard", ArgValue::from(shard)), ("to", ArgValue::from(to))],
        );
        let code = match to {
            "open" => 1,
            "half_open" => 2,
            _ => 3,
        };
        shared.cfg.observer.flight_event(
            FlightKind::BreakerTransition,
            request,
            code,
            shard as u64,
        );
    }
}

/// Advance every shard breaker at a dispatch boundary: closed shards count
/// as healthy, open shards whose cooldown elapsed get a canary probe on
/// *their own* device (a recovered device rejoins the fleet here), and
/// still-open shards sit the dispatch out. Returns the number of healthy
/// shards.
fn poll_fleet_breakers(
    shared: &Shared,
    fleet: &DeviceFleet,
    breakers: &mut [CircuitBreaker],
    request: u64,
) -> usize {
    let mut healthy = 0usize;
    for (shard, b) in breakers.iter_mut().enumerate() {
        let (disposition, transition) = b.poll(Instant::now());
        report_shard_breaker(shared, transition, shard, request);
        match disposition {
            Disposition::Use => healthy += 1,
            Disposition::Probe => {
                shared.metrics.on_canary();
                let ok = canary_ok(fleet.device(shard));
                shared.cfg.observer.instant(
                    Track::wall(0),
                    "canary",
                    vec![
                        ("shard", ArgValue::from(shard)),
                        ("ok", ArgValue::from(usize::from(ok))),
                    ],
                );
                let t = if ok {
                    b.on_success()
                } else {
                    b.on_failure(Instant::now())
                };
                report_shard_breaker(shared, t, shard, request);
                if ok {
                    healthy += 1;
                }
            }
            Disposition::Degrade => {}
        }
    }
    healthy
}

/// Compare one fleet task's measured device deltas against its closed-form
/// phase entry. `before` is `None` when verification is off or no closed
/// form applies — no evidence of failure, so the check passes.
fn phase_counts_ok(
    dev: &Device,
    before: Option<(CostCounters, u64)>,
    expect: Option<&ExactCounts>,
) -> bool {
    let (Some((st, launches_before)), Some(e)) = (before, expect) else {
        return true;
    };
    let after = dev.stats();
    after.coalesced_reads.wrapping_sub(st.coalesced_reads) == e.coalesced_reads
        && after.coalesced_writes.wrapping_sub(st.coalesced_writes) == e.coalesced_writes
        && after.stride_reads.wrapping_sub(st.stride_reads) == e.stride_reads
        && after.stride_writes.wrapping_sub(st.stride_writes) == e.stride_writes
        && dev.launches().wrapping_sub(launches_before) == e.barrier_steps + 1
}

/// Run one phase's tasks to completion across the healthy shards.
///
/// Every shard whose breaker is closed gets a worker thread that pulls
/// task indices from a shared queue (work stealing: a fast shard simply
/// pulls more). A failed attempt — fault-epoch bump or closed-form count
/// mismatch, both checked by `run_task` returning `false` for the latter —
/// stays with the failing shard (feeding its breaker) until either a retry
/// succeeds or the breaker opens; on open the worker requeues the task,
/// emits [`FlightKind::DeviceLost`], and hands the queue to the survivors
/// ([`FlightKind::ShardFailover`] + a post-mortem trigger, provided
/// someone survives) before exiting. Returns `true` when every task
/// completed on some shard.
#[allow(clippy::too_many_arguments)]
fn run_fleet_tasks(
    shared: &Shared,
    fleet: &DeviceFleet,
    breakers: &mut [CircuitBreaker],
    request: u64,
    salt: u64,
    dumps: &Mutex<Vec<Trigger>>,
    tasks: Vec<usize>,
    run_task: &(dyn Fn(&Device, usize) -> bool + Sync),
) -> bool {
    if tasks.is_empty() {
        return true;
    }
    let healthy: Vec<usize> = breakers
        .iter()
        .enumerate()
        .filter(|(_, b)| b.is_closed())
        .map(|(s, _)| s)
        .collect();
    if healthy.is_empty() {
        return false;
    }
    let total = tasks.len();
    let queue = Mutex::new(VecDeque::from(tasks));
    let done = AtomicUsize::new(0);
    // Fault domains still standing this phase: decremented only when a
    // breaker opens, never on normal worker exit — a worker that drained
    // the queue and left is still a healthy shard the retry path can use.
    let alive = AtomicUsize::new(healthy.len());
    let rcfg = &shared.cfg.resilience;
    std::thread::scope(|sc| {
        for (shard, breaker) in breakers
            .iter_mut()
            .enumerate()
            .filter(|(s, _)| healthy.contains(s))
        {
            let (queue, done, alive) = (&queue, &done, &alive);
            sc.spawn(move || {
                let dev = fleet.device(shard);
                let mut streak = 0u32;
                // A failed task is retained by this worker across its own
                // retries rather than requeued immediately: if it went
                // back on the queue a fast healthy shard would steal it,
                // the failure streak would never reach the breaker
                // threshold, and a permanently dead shard would keep
                // sampling (and stalling) fresh tasks forever. The task
                // moves to the survivors the moment the breaker opens.
                let mut held: Option<usize> = None;
                loop {
                    let task = match held.take() {
                        Some(t) => t,
                        None => {
                            let Some(t) = queue.lock().pop_front() else {
                                break;
                            };
                            t
                        }
                    };
                    let epoch_before = dev.fault_epoch();
                    let counts_ok = run_task(dev, task);
                    let failed = dev.fault_epoch() != epoch_before || !counts_ok;
                    shared.metrics.on_attempt(!failed);
                    shared.metrics.on_shard_task(!failed);
                    if !failed {
                        streak = 0;
                        report_shard_breaker(shared, breaker.on_success(), shard, request);
                        done.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    held = Some(task);
                    streak += 1;
                    shared.cfg.observer.instant(
                        Track::wall(0),
                        "attempt_failed",
                        vec![
                            ("shard", ArgValue::from(shard)),
                            ("attempt", ArgValue::from(streak as usize)),
                        ],
                    );
                    let transition = breaker.on_failure(Instant::now());
                    let opened = transition == Some("open");
                    report_shard_breaker(shared, transition, shard, request);
                    if opened {
                        // This fault domain is gone until a canary re-closes
                        // it: hand the held task back, record the loss, and
                        // reshard the remaining work onto whoever survives.
                        if let Some(t) = held.take() {
                            queue.lock().push_front(t);
                        }
                        shared.metrics.on_shard_lost();
                        shared.cfg.observer.flight_event(
                            FlightKind::DeviceLost,
                            request,
                            shard as u64,
                            dev.fault_epoch(),
                        );
                        let survivors = alive.fetch_sub(1, Ordering::AcqRel) - 1;
                        let left = queue.lock().len() as u64;
                        if survivors > 0 {
                            shared.metrics.on_shard_failover();
                            shared.cfg.observer.flight_event(
                                FlightKind::ShardFailover,
                                request,
                                shard as u64,
                                left,
                            );
                            dumps.lock().push(Trigger {
                                reason: "shard_failover".to_string(),
                                request,
                                detail: format!(
                                    "shard {shard} opened mid-dispatch; {left} task(s) \
                                     resharded onto {survivors} surviving shard(s)"
                                ),
                            });
                        }
                        return;
                    }
                    shared.metrics.on_retry();
                    std::thread::sleep(backoff_delay(rcfg, streak, salt ^ ((shard as u64) << 8)));
                }
            });
        }
    });
    done.load(Ordering::Relaxed) == total
}

/// One image through the banded three-phase pipeline (column sums →
/// margin exchange → carry-seeded band wavefronts), its phase kernels
/// spread over the fleet's healthy shards with failover. Returns `None`
/// when some phase could not complete — every remaining shard opened —
/// in which case the caller re-polls the breakers and usually degrades.
///
/// Bit-exactness: the banded kernels sum in exactly the association order
/// of the single-device 1R1W wavefront within each band, and band
/// boundaries only ever consume finished carry rows, so re-running a band
/// on a different shard cannot change a single bit of the result
/// (pinned by `sat_core::par::band` tests).
#[allow(clippy::too_many_arguments)]
fn banded_fleet_sat(
    shared: &Shared,
    fleet: &DeviceFleet,
    breakers: &mut [CircuitBreaker],
    request: u64,
    salt: u64,
    dumps: &Mutex<Vec<Trigger>>,
    image: &Matrix<f64>,
    verify_counts: bool,
) -> Option<Matrix<f64>> {
    let w = fleet.device(0).width();
    let (rows, cols) = (image.rows(), image.cols());
    let prows = rows.max(1).next_multiple_of(w);
    let pcols = cols.max(1).next_multiple_of(w);
    let mut padded = vec![0.0f64; prows * pcols];
    for i in 0..rows {
        padded[i * pcols..i * pcols + cols]
            .copy_from_slice(&image.as_slice()[i * cols..(i + 1) * cols]);
    }
    let plan = BandPlan::new(prows, pcols, w, fleet.len());
    let d = plan.len();
    let a = GlobalBuffer::from_vec(padded);
    let s = GlobalBuffer::filled(0.0f64, prows * pcols);
    let colsums = GlobalBuffer::filled(0.0f64, plan.boundary_len());
    let carries = GlobalBuffer::filled(0.0f64, plan.boundary_len());
    let mirror = GlobalBuffer::filled(0.0f64, plan.mirror_len());
    // Closed-form phase entries for the per-task launch-failure check
    // (always available: the dims are padded to multiples of `w`).
    let model = if verify_counts {
        GlobalCost::new(*fleet.device(0).config()).banded_1r1w_exact_counts(prows, pcols, d)
    } else {
        None
    };
    let snap = |dev: &Device| model.as_ref().map(|_| (dev.stats(), dev.launches()));

    if d > 1 {
        let ok = run_fleet_tasks(
            shared,
            fleet,
            breakers,
            request,
            salt,
            dumps,
            (0..d - 1).collect(),
            &|dev, k| {
                let before = snap(dev);
                band_colsum(dev, &a, &colsums, &plan, k);
                phase_counts_ok(dev, before, model.as_ref().map(|m| &m.colsum[k]))
            },
        );
        if !ok {
            return None;
        }
        let ok = run_fleet_tasks(
            shared,
            fleet,
            breakers,
            request,
            salt,
            dumps,
            vec![0],
            &|dev, _| {
                let before = snap(dev);
                margin_exchange(dev, &colsums, &carries, &plan);
                phase_counts_ok(dev, before, model.as_ref().map(|m| &m.exchange))
            },
        );
        if !ok {
            return None;
        }
    }
    let ok = run_fleet_tasks(
        shared,
        fleet,
        breakers,
        request,
        salt,
        dumps,
        (0..d).collect(),
        &|dev, k| {
            let before = snap(dev);
            band_wavefront(dev, &a, &s, &carries, &mirror, &plan, k);
            phase_counts_ok(dev, before, model.as_ref().map(|m| &m.wavefront[k]))
        },
    );
    if !ok {
        return None;
    }
    let out = s.into_vec();
    Some(Matrix::from_fn(rows, cols, |i, j| out[i * pcols + j]))
}

/// The fleet path for algorithms without a banded decomposition: the whole
/// image is one task, computed by whichever shard picks it up (failover
/// still applies — a shard that dies mid-image hands it to a survivor).
#[allow(clippy::too_many_arguments)]
fn whole_image_fleet_sat(
    shared: &Shared,
    fleet: &DeviceFleet,
    breakers: &mut [CircuitBreaker],
    request: u64,
    salt: u64,
    dumps: &Mutex<Vec<Trigger>>,
    algorithm: SatAlgorithm,
    image: &Matrix<f64>,
) -> Option<Matrix<f64>> {
    let slot: Mutex<Option<Matrix<f64>>> = Mutex::new(None);
    let complete = run_fleet_tasks(
        shared,
        fleet,
        breakers,
        request,
        salt,
        dumps,
        vec![0],
        &|dev, _| {
            *slot.lock() = Some(compute_sat(dev, algorithm, image));
            true
        },
    );
    if complete {
        slot.into_inner()
    } else {
        None
    }
}

/// [`execute`]'s fleet sibling: run one dispatch across `D > 1` shard
/// devices. Images go through the banded pipeline one at a time (each
/// image's band kernels run fleet-parallel); a shard lost mid-image
/// reshards its bands onto the survivors, and the CPU degradation path is
/// reached only when *every* shard's breaker is open. Every admitted
/// request still completes — bit-exactly whenever any shard stayed
/// healthy.
fn fleet_execute(shared: &Shared, fleet: &DeviceFleet, d: Dispatch, ex: &mut ExecState) {
    let width = d.requests.len();
    if width == 0 {
        return;
    }
    let dispatched_at = Instant::now();
    let queue_ns: Vec<u64> = d
        .requests
        .iter()
        .map(|r| dispatched_at.duration_since(r.enqueued).as_nanos() as u64)
        .collect();
    let enqueued_at: Vec<Instant> = d.requests.iter().map(|r| r.enqueued).collect();
    let ids: Vec<u64> = d.requests.iter().map(|r| r.id).collect();
    let mut images = Vec::with_capacity(width);
    let mut replies = Vec::with_capacity(width);
    for r in d.requests {
        images.push(r.image);
        replies.push(r.reply);
    }
    ex.batch_no += 1;
    let batch_no = ex.batch_no;
    shared
        .cfg
        .observer
        .flight_event(FlightKind::BatchFormed, ids[0], batch_no, width as u64);
    let dumps: Mutex<Vec<Trigger>> = Mutex::new(Vec::new());

    let w = fleet.device(0).width();
    let (rows, cols) = (images[0].rows(), images[0].cols());
    let per_single = {
        let m_r = rows.max(1).div_ceil(w);
        let m_c = cols.max(1).div_ceil(w);
        m_r + m_c - 1
    } as u64;

    let rcfg = &shared.cfg.resilience;
    let launches_before = fleet.launches();
    for dev in fleet {
        dev.set_launch_context(Some(LaunchContext {
            batch: batch_no,
            requests: ids.clone(),
        }));
        // One label per dispatch; each shard device appends its own
        // `@s<i>` suffix, which is what lets the shard-relative drift
        // channel localize a sick device.
        dev.set_conformance_cell(Some(cell_label(d.algorithm.name(), rows, cols)));
    }

    let mut results: Vec<Option<Matrix<f64>>> = (0..width).map(|_| None).collect();
    let mut degraded: Vec<bool> = vec![false; width];
    for idx in 0..width {
        let request = ids[idx];
        let mut attempts = 0u32;
        loop {
            if attempts >= rcfg.max_attempts {
                let mut pending = vec![idx];
                degrade_pending(shared, &images, &mut pending, &mut results, &mut degraded);
                break;
            }
            if attempts > 0 {
                shared.metrics.on_retry();
                ex.salt = ex.salt.wrapping_add(1);
                std::thread::sleep(backoff_delay(rcfg, attempts, ex.salt));
            }
            attempts += 1;
            // Dispatch boundary: probe cooled-down shards back in, and only
            // fall back to the CPU when the whole fleet is open.
            if poll_fleet_breakers(shared, fleet, &mut ex.breakers, request) == 0 {
                let mut pending = vec![idx];
                degrade_pending(shared, &images, &mut pending, &mut results, &mut degraded);
                break;
            }
            let out = if d.algorithm == SatAlgorithm::OneR1W {
                banded_fleet_sat(
                    shared,
                    fleet,
                    &mut ex.breakers,
                    request,
                    ex.salt,
                    &dumps,
                    &images[idx],
                    ex.verify_on,
                )
            } else {
                whole_image_fleet_sat(
                    shared,
                    fleet,
                    &mut ex.breakers,
                    request,
                    ex.salt,
                    &dumps,
                    d.algorithm,
                    &images[idx],
                )
            };
            let Some(sat) = out else {
                // A phase ran out of shards; the next attempt re-polls the
                // breakers (and degrades if the whole fleet stays open).
                continue;
            };
            let ok = !ex.verify_on || verify_sat(&images[idx], &sat);
            if ex.verify_on {
                shared.metrics.on_verify(ok);
            }
            if ok {
                results[idx] = Some(sat);
                break;
            }
            shared.cfg.observer.flight_event(
                FlightKind::VerifyFailure,
                request,
                attempts as u64,
                0,
            );
            shared.cfg.observer.instant(
                Track::wall(0),
                "verify_failed",
                vec![("count", ArgValue::from(1usize))],
            );
            dumps.lock().push(Trigger {
                reason: "verify_failure".to_string(),
                request,
                detail: "1 result(s) failed SAT verification".to_string(),
            });
        }
    }
    for dev in fleet {
        dev.set_launch_context(None);
        dev.set_conformance_cell(None);
    }

    let launches_after = fleet.launches();
    let mut issued = 0u64;
    for (shard, (after, before)) in launches_after.iter().zip(&launches_before).enumerate() {
        let delta = after.wrapping_sub(*before);
        shared.metrics.on_shard_launches(shard, delta);
        issued += delta;
    }
    let exec_ns = dispatched_at.elapsed().as_nanos() as u64;

    // Per-request single-device execution of the same traffic would have
    // paid the full `m_r + m_c − 1` wavefront per image; the fleet pays the
    // banded pipeline's launches, spread over `D` devices — the loadgen
    // fleet gate asserts `max(shard launches) × D < equiv`.
    let launches_equiv = if d.algorithm == SatAlgorithm::OneR1W {
        per_single * width as u64
    } else {
        issued
    };
    let runs = width as u64;
    let barriers = issued.saturating_sub(runs);
    let barriers_equiv = launches_equiv.saturating_sub(width as u64);

    shared.metrics.on_batch(&crate::metrics::BatchRecord {
        width,
        launches: issued,
        launches_equiv,
        barriers,
        barriers_equiv,
        queue_ns: &queue_ns,
        exec_ns,
        request_ids: &ids,
    });

    if let Some(threshold) = shared.cfg.postmortem.burn_threshold {
        let burn = shared.metrics.slo_burn();
        if burn >= threshold {
            shared.cfg.observer.flight_event(
                FlightKind::SloBurn,
                ids[0],
                (burn * 1000.0) as u64,
                (threshold * 1000.0) as u64,
            );
            dumps.lock().push(Trigger {
                reason: "slo_burn".to_string(),
                request: ids[0],
                detail: format!("error-budget burn {burn:.3} reached threshold {threshold:.3}"),
            });
        }
    }
    check_drift(shared, &mut dumps.lock());

    // Same retro-emitted lifecycle records as the single-device path, so
    // fleet traces and flight bundles read identically downstream.
    let obs = &shared.cfg.observer;
    if obs.is_enabled() {
        let done = Instant::now();
        let batch = obs.wall_span_at(
            Track::wall(0),
            "batch",
            dispatched_at,
            done,
            None,
            vec![
                ("batch", ArgValue::from(batch_no)),
                ("width", ArgValue::from(width)),
                ("algo", ArgValue::from(d.algorithm.name())),
                ("launches", ArgValue::from(issued)),
                ("shards", ArgValue::from(fleet.len())),
            ],
        );
        for (i, &enq) in enqueued_at.iter().enumerate() {
            obs.wall_span_at(
                Track::wall(1 + (i as u32 % 16)),
                "queue",
                enq,
                dispatched_at,
                batch,
                vec![("request", ArgValue::from(ids[i]))],
            );
            obs.flow_wall(
                Track::wall(0),
                "request",
                FlowPhase::Step,
                ids[i],
                dispatched_at,
            );
            let status = if degraded[i] { "degraded" } else { "ok" };
            close_request_span(obs, ids[i], enq, done, status);
        }
        obs.instant(
            Track::wall(0),
            "complete",
            vec![("width", ArgValue::from(width))],
        );
    }
    for trigger in dumps.into_inner().iter() {
        maybe_dump(shared, trigger);
    }
    for (reply, sat) in replies.into_iter().zip(results) {
        let sat = sat.expect("the attempt loop resolves every request");
        let _ = reply.send(Ok(SumTable::from_sat(sat)));
    }
}
