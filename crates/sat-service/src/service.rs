//! The service proper: bounded submission queue, client handles, and the
//! batch-former thread that owns the device.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::SatAlgorithm;
use obs::{ArgValue, Track};
use parking_lot::{Condvar, Mutex};
use sat_core::{compute_sat, compute_sat_batch, Matrix, SumTable};

use crate::metrics::Metrics;
use crate::{ServiceConfig, ServiceError, ServiceStats};

type Reply = mpsc::SyncSender<Result<SumTable<f64>, ServiceError>>;

struct Request {
    image: Matrix<f64>,
    algorithm: SatAlgorithm,
    enqueued: Instant,
    deadline: Instant,
    reply: Reply,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    /// Submitters wait here for queue space (backpressure edge).
    space_cv: Condvar,
    /// The batch-former waits here for work or its linger window.
    work_cv: Condvar,
    metrics: Metrics,
}

/// A running SAT service. Created by [`Service::start`]; hand out
/// [`Client`]s with [`Service::client`]. Dropping the service shuts it
/// down gracefully (drains the queue).
pub struct Service {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

/// A cheap, cloneable handle for submitting requests from any thread.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Service {
    /// Start the service: build the device and spawn the batch-former.
    pub fn start(cfg: ServiceConfig) -> Service {
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "max batch must be positive");
        let mut opts = DeviceOptions::new(cfg.machine).observer(cfg.observer.clone());
        if let Some(w) = cfg.device_workers {
            opts = opts.workers(w);
        }
        let dev = Device::new(opts);
        // Share one registry between serving-layer and device counters so a
        // single scrape covers both; fall back to a private registry when
        // observability is off (ServiceStats keeps working either way).
        let metrics = Metrics::new(cfg.observer.registry().unwrap_or_default());
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(QueueState::default()),
            space_cv: Condvar::new(),
            work_cv: Condvar::new(),
            metrics,
        });
        let for_batcher = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("sat-service-batcher".to_string())
            .spawn(move || batcher_loop(&for_batcher, &dev))
            .expect("spawning the batch-former thread");
        Service {
            shared,
            batcher: Some(batcher),
        }
    }

    /// A new submission handle.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Snapshot the service's instrumentation.
    pub fn stats(&self) -> ServiceStats {
        self.shared.metrics.snapshot()
    }

    /// Prometheus-style text exposition of every counter and gauge the
    /// service maintains (plus the device's `gpu_*` counters when the
    /// service was started with an enabled observer).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.expose_text()
    }

    /// Stop admitting requests, drain everything already queued through the
    /// device, join the batch-former, and return the final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        self.shared.metrics.snapshot()
    }

    fn begin_shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

impl Client {
    /// Submit one matrix for SAT computation and block until the result or
    /// a rejection.
    ///
    /// `deadline` is the time budget for *queueing* (admission under
    /// backpressure plus waiting for a batch slot); `None` uses
    /// [`ServiceConfig::default_deadline`]. Once dispatched to the device a
    /// request always completes. The returned [`SumTable`] wraps a SAT
    /// bit-equal to `compute_sat` of the same image.
    pub fn submit(
        &self,
        image: Matrix<f64>,
        algorithm: SatAlgorithm,
        deadline: Option<Duration>,
    ) -> Result<SumTable<f64>, ServiceError> {
        if image.rows() == 0 || image.cols() == 0 {
            let err = ServiceError::InvalidRequest("empty matrix".to_string());
            self.shared.metrics.on_reject(&err);
            return Err(err);
        }
        let enqueued = Instant::now();
        let deadline_at = enqueued + deadline.unwrap_or(self.shared.cfg.default_deadline);
        let (rows, cols) = (image.rows(), image.cols());
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut st = self.shared.state.lock();
            loop {
                if st.shutdown {
                    drop(st);
                    let err = ServiceError::ShuttingDown;
                    self.shared.metrics.on_reject(&err);
                    return Err(err);
                }
                if st.queue.len() < self.shared.cfg.queue_capacity {
                    break;
                }
                let timeout = deadline_at.saturating_duration_since(Instant::now());
                if timeout.is_zero() {
                    drop(st);
                    let err = ServiceError::QueueFull;
                    self.shared.metrics.on_reject(&err);
                    return Err(err);
                }
                self.shared.space_cv.wait_for(&mut st, timeout);
            }
            st.queue.push_back(Request {
                image,
                algorithm,
                enqueued,
                deadline: deadline_at,
                reply: tx,
            });
        }
        self.shared.metrics.on_submit();
        self.shared.cfg.observer.instant(
            Track::wall(0),
            "admit",
            vec![
                ("rows", ArgValue::from(rows)),
                ("cols", ArgValue::from(cols)),
                ("algo", ArgValue::from(algorithm.name())),
            ],
        );
        self.shared.work_cv.notify_all();
        match rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServiceError::Internal(
                "batch-former dropped the request without answering".to_string(),
            )),
        }
    }

    /// Snapshot the service's instrumentation.
    pub fn stats(&self) -> ServiceStats {
        self.shared.metrics.snapshot()
    }

    /// Prometheus-style text exposition; see [`Service::metrics_text`].
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.expose_text()
    }
}

/// One dispatch decision: a same-shape, same-algorithm slice of the queue.
struct Dispatch {
    algorithm: SatAlgorithm,
    requests: Vec<Request>,
}

/// A group's view while scanning the queue.
struct GroupView {
    rows: usize,
    cols: usize,
    algorithm: SatAlgorithm,
    count: usize,
    oldest: Instant,
}

fn batcher_loop(shared: &Shared, dev: &Device) {
    loop {
        let mut expired: Vec<Request> = Vec::new();
        let mut ready: Vec<Dispatch> = Vec::new();
        let mut exit = false;
        {
            let mut st = shared.state.lock();
            loop {
                let now = Instant::now();
                let before = st.queue.len();

                // Reject-rather-than-wedge: drop requests whose queueing
                // deadline has passed.
                let mut i = 0;
                while i < st.queue.len() {
                    if st.queue[i].deadline <= now {
                        expired.push(st.queue.remove(i).expect("index in bounds"));
                    } else {
                        i += 1;
                    }
                }

                // Group the survivors by (shape, algorithm).
                let mut groups: Vec<GroupView> = Vec::new();
                for r in &st.queue {
                    let key = (r.image.rows(), r.image.cols(), r.algorithm);
                    match groups
                        .iter_mut()
                        .find(|g| (g.rows, g.cols, g.algorithm) == key)
                    {
                        Some(g) => {
                            g.count += 1;
                            g.oldest = g.oldest.min(r.enqueued);
                        }
                        None => groups.push(GroupView {
                            rows: key.0,
                            cols: key.1,
                            algorithm: key.2,
                            count: 1,
                            oldest: r.enqueued,
                        }),
                    }
                }

                // Adaptive window: a group dispatches when full, when its
                // oldest request has lingered long enough, when the
                // algorithm cannot batch anyway, or on shutdown drain.
                for g in &groups {
                    let batchable = g.algorithm == SatAlgorithm::OneR1W;
                    let linger_hit = g.oldest + shared.cfg.max_linger <= now;
                    if g.count >= shared.cfg.max_batch || linger_hit || !batchable || st.shutdown {
                        // Non-batchable algorithms dispatch one at a time so
                        // the width histogram reflects true fused widths.
                        let cap = if batchable { shared.cfg.max_batch } else { 1 };
                        let mut take = Vec::new();
                        let mut i = 0;
                        while i < st.queue.len() && take.len() < cap {
                            let r = &st.queue[i];
                            if (r.image.rows(), r.image.cols(), r.algorithm)
                                == (g.rows, g.cols, g.algorithm)
                            {
                                take.push(st.queue.remove(i).expect("index in bounds"));
                            } else {
                                i += 1;
                            }
                        }
                        ready.push(Dispatch {
                            algorithm: g.algorithm,
                            requests: take,
                        });
                    }
                }

                if st.queue.len() < before {
                    shared.space_cv.notify_all();
                }
                if !ready.is_empty() || !expired.is_empty() {
                    break;
                }
                if st.shutdown && st.queue.is_empty() {
                    exit = true;
                    break;
                }

                // Sleep until the earliest linger expiry or request
                // deadline, whichever comes first; submissions notify.
                let wake = st
                    .queue
                    .iter()
                    .map(|r| r.deadline)
                    .chain(groups.iter().map(|g| g.oldest + shared.cfg.max_linger))
                    .min();
                match wake {
                    None => shared.work_cv.wait(&mut st),
                    Some(t) => {
                        let timeout = t.saturating_duration_since(now);
                        if !timeout.is_zero() {
                            shared.work_cv.wait_for(&mut st, timeout);
                        }
                    }
                }
            }
        }

        for r in expired {
            let err = ServiceError::DeadlineExceeded;
            shared.metrics.on_reject(&err);
            shared.cfg.observer.instant(
                Track::wall(0),
                "deadline_expired",
                vec![
                    ("rows", ArgValue::from(r.image.rows())),
                    ("cols", ArgValue::from(r.image.cols())),
                ],
            );
            let _ = r.reply.send(Err(err));
        }
        for d in ready {
            execute(shared, dev, d);
        }
        if exit {
            return;
        }
    }
}

/// Run one dispatch on the device and answer its requests.
fn execute(shared: &Shared, dev: &Device, d: Dispatch) {
    let width = d.requests.len();
    if width == 0 {
        return;
    }
    let dispatched_at = Instant::now();
    let queue_ns: Vec<u64> = d
        .requests
        .iter()
        .map(|r| dispatched_at.duration_since(r.enqueued).as_nanos() as u64)
        .collect();
    let enqueued_at: Vec<Instant> = d.requests.iter().map(|r| r.enqueued).collect();
    let mut images = Vec::with_capacity(width);
    let mut replies = Vec::with_capacity(width);
    for r in d.requests {
        images.push(r.image);
        replies.push(r.reply);
    }

    let w = dev.width();
    // Launches one per-request 1R1W run of this shape would cost: the
    // padded grid has `m_r × m_c` blocks and `m_r + m_c − 1` diagonals.
    let per_single = {
        let first = &images[0];
        let m_r = first.rows().max(1).div_ceil(w);
        let m_c = first.cols().max(1).div_ceil(w);
        m_r + m_c - 1
    } as u64;

    let before = dev.launches();
    let results: Vec<Matrix<f64>> = if d.algorithm == SatAlgorithm::OneR1W {
        compute_sat_batch(dev, &images)
    } else {
        images
            .iter()
            .map(|a| compute_sat(dev, d.algorithm, a))
            .collect()
    };
    let issued = dev.launches() - before;
    let exec_ns = dispatched_at.elapsed().as_nanos() as u64;

    // What per-request execution would have cost. For the batched 1R1W
    // path each extra request would have re-paid the full wavefront; the
    // unbatched algorithms see no amortisation (equiv = issued).
    let (launches_equiv, runs) = if d.algorithm == SatAlgorithm::OneR1W {
        (per_single * width as u64, 1u64)
    } else {
        (issued, width as u64)
    };
    let barriers = issued.saturating_sub(runs);
    let barriers_equiv = launches_equiv.saturating_sub(width as u64);

    shared.metrics.on_batch(&crate::metrics::BatchRecord {
        width,
        launches: issued,
        launches_equiv,
        barriers,
        barriers_equiv,
        queue_ns: &queue_ns,
        exec_ns,
    });

    // Retro-emit the lifecycle spans now that the batch's end is known: a
    // `batch` span covering device execution on lane 0 (the device's own
    // per-launch spans nest inside it by containment) and one `queue` span
    // per request from admission to dispatch, parented to the batch.
    let obs = &shared.cfg.observer;
    if obs.is_enabled() {
        let done = Instant::now();
        let batch = obs.wall_span_at(
            Track::wall(0),
            "batch",
            dispatched_at,
            done,
            None,
            vec![
                ("width", ArgValue::from(width)),
                ("algo", ArgValue::from(d.algorithm.name())),
                ("launches", ArgValue::from(issued)),
            ],
        );
        for (i, &enq) in enqueued_at.iter().enumerate() {
            obs.wall_span_at(
                Track::wall(1 + (i as u32 % 16)),
                "queue",
                enq,
                dispatched_at,
                batch,
                vec![("request", ArgValue::from(i))],
            );
        }
        obs.instant(
            Track::wall(0),
            "complete",
            vec![("width", ArgValue::from(width))],
        );
    }
    for (reply, sat) in replies.into_iter().zip(results) {
        let _ = reply.send(Ok(SumTable::from_sat(sat)));
    }
}
