//! End-to-end instrumentation of the serving layer.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Retained latency samples are capped so a long-lived service cannot grow
/// without bound; percentiles then describe the first `MAX_SAMPLES`
/// requests since the service started.
const MAX_SAMPLES: usize = 1 << 20;

/// Shared counters and latency samples, updated by submitters and the
/// batch-former.
#[derive(Default)]
pub(crate) struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    submitted: u64,
    completed: u64,
    rejected_deadline: u64,
    rejected_queue_full: u64,
    rejected_shutdown: u64,
    rejected_invalid: u64,
    batches: u64,
    batch_width_hist: Vec<u64>,
    launches_issued: u64,
    launches_unbatched_equiv: u64,
    barriers_issued: u64,
    barriers_unbatched_equiv: u64,
    queue_ns: Vec<u64>,
    exec_ns: Vec<u64>,
    total_ns: Vec<u64>,
}

fn push_sample(v: &mut Vec<u64>, x: u64) {
    if v.len() < MAX_SAMPLES {
        v.push(x);
    }
}

/// One dispatched batch's accounting: its width, the launches/barriers it
/// actually cost, what per-request execution would have cost, and the
/// per-request latencies (`queue_ns` per request; `exec_ns` is shared by
/// every request of the batch).
pub(crate) struct BatchRecord<'a> {
    pub width: usize,
    pub launches: u64,
    pub launches_equiv: u64,
    pub barriers: u64,
    pub barriers_equiv: u64,
    pub queue_ns: &'a [u64],
    pub exec_ns: u64,
}

impl Metrics {
    pub(crate) fn on_submit(&self) {
        self.inner.lock().submitted += 1;
    }

    pub(crate) fn on_reject(&self, err: &crate::ServiceError) {
        let mut m = self.inner.lock();
        match err {
            crate::ServiceError::QueueFull => m.rejected_queue_full += 1,
            crate::ServiceError::DeadlineExceeded => m.rejected_deadline += 1,
            crate::ServiceError::ShuttingDown => m.rejected_shutdown += 1,
            crate::ServiceError::InvalidRequest(_) => m.rejected_invalid += 1,
            crate::ServiceError::Internal(_) => {}
        }
    }

    /// Record one dispatched batch.
    pub(crate) fn on_batch(&self, b: &BatchRecord<'_>) {
        let mut m = self.inner.lock();
        m.batches += 1;
        if m.batch_width_hist.len() <= b.width {
            m.batch_width_hist.resize(b.width + 1, 0);
        }
        m.batch_width_hist[b.width] += 1;
        m.launches_issued += b.launches;
        m.launches_unbatched_equiv += b.launches_equiv;
        m.barriers_issued += b.barriers;
        m.barriers_unbatched_equiv += b.barriers_equiv;
        m.completed += b.width as u64;
        for &q in b.queue_ns {
            push_sample(&mut m.queue_ns, q);
            push_sample(&mut m.exec_ns, b.exec_ns);
            push_sample(&mut m.total_ns, q + b.exec_ns);
        }
    }

    pub(crate) fn snapshot(&self) -> ServiceStats {
        let m = self.inner.lock();
        ServiceStats {
            submitted: m.submitted,
            completed: m.completed,
            rejected_deadline: m.rejected_deadline,
            rejected_queue_full: m.rejected_queue_full,
            rejected_shutdown: m.rejected_shutdown,
            rejected_invalid: m.rejected_invalid,
            batches: m.batches,
            batch_width_hist: m.batch_width_hist.clone(),
            launches_issued: m.launches_issued,
            launches_unbatched_equiv: m.launches_unbatched_equiv,
            barriers_issued: m.barriers_issued,
            barriers_unbatched_equiv: m.barriers_unbatched_equiv,
            queue_latency: LatencySummary::from_ns(&m.queue_ns),
            exec_latency: LatencySummary::from_ns(&m.exec_ns),
            total_latency: LatencySummary::from_ns(&m.total_ns),
        }
    }
}

/// A point-in-time snapshot of the service's instrumentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered with a SAT.
    pub completed: u64,
    /// Requests rejected because their deadline expired while queued.
    pub rejected_deadline: u64,
    /// Requests rejected because the queue stayed full past their deadline.
    pub rejected_queue_full: u64,
    /// Requests rejected because the service was shutting down.
    pub rejected_shutdown: u64,
    /// Requests rejected as malformed before queueing.
    pub rejected_invalid: u64,
    /// Dispatched batches (width-1 batches included).
    pub batches: u64,
    /// `batch_width_hist[w]` = number of batches dispatched at width `w`.
    pub batch_width_hist: Vec<u64>,
    /// Kernel launches actually issued by the service.
    pub launches_issued: u64,
    /// Kernel launches per-request execution of the same traffic would
    /// have issued.
    pub launches_unbatched_equiv: u64,
    /// Barrier synchronisation steps actually issued.
    pub barriers_issued: u64,
    /// Barrier steps per-request execution would have issued.
    pub barriers_unbatched_equiv: u64,
    /// Time from admission to batch dispatch, per request.
    pub queue_latency: LatencySummary,
    /// Device execution time of the request's batch.
    pub exec_latency: LatencySummary,
    /// Queue + execute, per request.
    pub total_latency: LatencySummary,
}

impl ServiceStats {
    /// Mean width of dispatched batches.
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }

    /// How many times fewer launches the service issued than per-request
    /// execution would have (1.0 = no amortisation).
    pub fn launch_reduction(&self) -> f64 {
        if self.launches_issued == 0 {
            return 1.0;
        }
        self.launches_unbatched_equiv as f64 / self.launches_issued as f64
    }

    /// Kernel launches saved by batch fusing.
    pub fn launches_saved(&self) -> u64 {
        self.launches_unbatched_equiv
            .saturating_sub(self.launches_issued)
    }

    /// Barrier windows saved by batch fusing.
    pub fn barrier_windows_saved(&self) -> u64 {
        self.barriers_unbatched_equiv
            .saturating_sub(self.barriers_issued)
    }
}

/// Summary of one latency distribution, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarised.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (nearest-rank).
    pub p50_ms: f64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: f64,
    /// 99th percentile (nearest-rank).
    pub p99_ms: f64,
    /// Largest sample.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarise nanosecond samples; all-zero when `samples` is empty.
    pub fn from_ns(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let ms = |ns: u64| ns as f64 * 1e-6;
        let pct = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            ms(sorted[rank - 1])
        };
        LatencySummary {
            count: sorted.len() as u64,
            mean_ms: sorted.iter().map(|&x| x as f64).sum::<f64>() * 1e-6 / sorted.len() as f64,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: ms(*sorted.last().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_ns(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ms, 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|k| k * 1_000_000).collect();
        let s = LatencySummary::from_ns(&ns);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 0.51);
    }

    #[test]
    fn batch_accounting() {
        let m = Metrics::default();
        m.on_submit();
        m.on_submit();
        m.on_batch(&BatchRecord {
            width: 2,
            launches: 3,
            launches_equiv: 6,
            barriers: 2,
            barriers_equiv: 4,
            queue_ns: &[1_000, 2_000],
            exec_ns: 5_000,
        });
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_width_hist[2], 1);
        assert_eq!(s.mean_batch_width(), 2.0);
        assert_eq!(s.launches_saved(), 3);
        assert_eq!(s.barrier_windows_saved(), 2);
        assert_eq!(s.launch_reduction(), 2.0);
        assert_eq!(s.total_latency.count, 2);
    }
}
