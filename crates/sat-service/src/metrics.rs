//! End-to-end instrumentation of the serving layer.
//!
//! Counters live on an [`obs::Registry`] (shared with the device when the
//! service is constructed with an enabled [`obs::Obs`]), so one
//! Prometheus-style scrape ([`Metrics::expose_text`]) covers both the
//! serving layer (`sat_service_*`) and the device (`gpu_*`). Latencies
//! live in log-bucketed [`obs::Histogram`]s — `sat_service_request_latency_seconds`
//! per request plus `sat_service_stage_latency_seconds{stage=…}` for the
//! queue, batch-formation and execute stages — so percentiles come from
//! mergeable buckets (exposed as `_bucket`/`_sum`/`_count` series) rather
//! than from sorting a bounded ring, never drop samples, and cost one
//! atomic increment per observation. SLO gauges (target, attainment,
//! error-budget burn) are derived from the request histogram at scrape
//! time.

use std::time::Duration;

use obs::{Counter, Histogram, HistogramSample, Registry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The latency objective the service reports against: a target for
/// per-request latency and the fraction of requests allowed to miss it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Per-request latency target (queue + execute).
    pub target: Duration,
    /// Fraction of requests allowed to exceed the target before the error
    /// budget is spent (burn rate 1.0 = spending exactly the budget).
    pub error_budget: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            target: Duration::from_millis(100),
            error_budget: 0.01,
        }
    }
}

/// Shared counters and latency histograms, updated by submitters and the
/// batch-former.
pub(crate) struct Metrics {
    inner: Mutex<Inner>,
    registry: Registry,
    c: Counters,
    h: Hists,
    slo: SloConfig,
    /// Current circuit-breaker state ("closed" / "open" / "half_open"),
    /// tracked for the `/healthz` endpoint. In fleet mode this is the
    /// aggregate of the per-shard breakers: "closed" when all are closed,
    /// "open" when all are open, "half_open" otherwise.
    breaker: Mutex<&'static str>,
    /// Number of device shards ([`configure_shards`](Self::configure_shards)).
    shards: usize,
    /// Per-shard launch counters (`sat_service_shard_launches_total{shard=…}`),
    /// parallel to the shard indices.
    shard_launches: Vec<Counter>,
    /// Per-shard breaker states feeding the aggregate in `breaker`.
    shard_breakers: Mutex<Vec<&'static str>>,
}

/// Registry-backed latency histograms (per-request plus per-stage).
struct Hists {
    /// Queue + execute per request.
    request: Histogram,
    /// Admission → batch dispatch, per request.
    queue: Histogram,
    /// Batch formation window (oldest member's wait), per batch.
    batch: Histogram,
    /// Device execution of the request's batch, per request.
    exec: Histogram,
}

const REQUEST_HIST: &str = "sat_service_request_latency_seconds";
const QUEUE_HIST: &str = "sat_service_stage_latency_seconds{stage=\"queue\"}";
const BATCH_HIST: &str = "sat_service_stage_latency_seconds{stage=\"batch\"}";
const EXEC_HIST: &str = "sat_service_stage_latency_seconds{stage=\"execute\"}";

/// Registry-backed counter handles (cheap atomics; see `obs::Counter`).
struct Counters {
    submitted: Counter,
    completed: Counter,
    rejected_deadline: Counter,
    rejected_queue_full: Counter,
    rejected_shutdown: Counter,
    rejected_invalid: Counter,
    batches: Counter,
    launches_issued: Counter,
    launches_unbatched_equiv: Counter,
    barriers_issued: Counter,
    barriers_unbatched_equiv: Counter,
    rejected_shutdown_drain: Counter,
    attempts_ok: Counter,
    attempts_failed: Counter,
    retries: Counter,
    degraded: Counter,
    verify_pass: Counter,
    verify_fail: Counter,
    breaker_opened: Counter,
    breaker_half_open: Counter,
    breaker_closed: Counter,
    canaries: Counter,
    shard_tasks_ok: Counter,
    shard_tasks_failed: Counter,
    shard_failovers: Counter,
    shards_lost: Counter,
}

struct Inner {
    batch_width_hist: Vec<u64>,
}

/// One dispatched batch's accounting: its width, the launches/barriers it
/// actually cost, what per-request execution would have cost, and the
/// per-request latencies (`queue_ns` per request; `exec_ns` is shared by
/// every request of the batch).
pub(crate) struct BatchRecord<'a> {
    pub width: usize,
    pub launches: u64,
    pub launches_equiv: u64,
    pub barriers: u64,
    pub barriers_equiv: u64,
    pub queue_ns: &'a [u64],
    pub exec_ns: u64,
    /// Request ids parallel to `queue_ns`, stamped onto the latency
    /// histograms as OpenMetrics exemplars; empty when untracked (the
    /// histograms then observe without exemplars).
    pub request_ids: &'a [u64],
}

impl Metrics {
    /// Register the service's counters and histograms on `registry`
    /// (typically the one behind the service's [`obs::Obs`], falling back
    /// to a private one).
    pub(crate) fn new(registry: Registry, slo: SloConfig) -> Metrics {
        let c = Counters {
            submitted: registry.counter("sat_service_submitted_total"),
            completed: registry.counter("sat_service_completed_total"),
            rejected_deadline: registry.counter("sat_service_rejected_total{reason=\"deadline\"}"),
            rejected_queue_full: registry
                .counter("sat_service_rejected_total{reason=\"queue_full\"}"),
            rejected_shutdown: registry.counter("sat_service_rejected_total{reason=\"shutdown\"}"),
            rejected_invalid: registry.counter("sat_service_rejected_total{reason=\"invalid\"}"),
            batches: registry.counter("sat_service_batches_total"),
            launches_issued: registry.counter("sat_service_launches_total{kind=\"issued\"}"),
            launches_unbatched_equiv: registry
                .counter("sat_service_launches_total{kind=\"unbatched_equiv\"}"),
            barriers_issued: registry.counter("sat_service_barrier_steps_total{kind=\"issued\"}"),
            barriers_unbatched_equiv: registry
                .counter("sat_service_barrier_steps_total{kind=\"unbatched_equiv\"}"),
            rejected_shutdown_drain: registry
                .counter("sat_service_rejected_total{reason=\"shutdown_drain\"}"),
            attempts_ok: registry.counter("sat_service_attempts_total{result=\"ok\"}"),
            attempts_failed: registry.counter("sat_service_attempts_total{result=\"failed\"}"),
            retries: registry.counter("sat_service_retries_total"),
            degraded: registry.counter("sat_service_degraded_total"),
            verify_pass: registry.counter("sat_service_verifications_total{result=\"pass\"}"),
            verify_fail: registry.counter("sat_service_verifications_total{result=\"fail\"}"),
            breaker_opened: registry.counter("sat_service_breaker_transitions_total{to=\"open\"}"),
            breaker_half_open: registry
                .counter("sat_service_breaker_transitions_total{to=\"half_open\"}"),
            breaker_closed: registry
                .counter("sat_service_breaker_transitions_total{to=\"closed\"}"),
            canaries: registry.counter("sat_service_canary_probes_total"),
            shard_tasks_ok: registry.counter("sat_service_shard_tasks_total{result=\"ok\"}"),
            shard_tasks_failed: registry
                .counter("sat_service_shard_tasks_total{result=\"failed\"}"),
            shard_failovers: registry.counter("sat_service_shard_failovers_total"),
            shards_lost: registry.counter("sat_service_shards_lost_total"),
        };
        let h = Hists {
            request: registry.histogram(REQUEST_HIST),
            queue: registry.histogram(QUEUE_HIST),
            batch: registry.histogram(BATCH_HIST),
            exec: registry.histogram(EXEC_HIST),
        };
        registry
            .gauge("sat_service_slo_target_seconds")
            .set(slo.target.as_secs_f64());
        Metrics {
            inner: Mutex::new(Inner {
                batch_width_hist: Vec::new(),
            }),
            registry,
            c,
            h,
            slo,
            breaker: Mutex::new("closed"),
            shards: 1,
            shard_launches: Vec::new(),
            shard_breakers: Mutex::new(vec!["closed"]),
        }
    }

    /// Size the per-shard state for a `D`-shard fleet: one launch counter
    /// and one tracked breaker state per shard. Called once at service
    /// construction, before the metrics are shared.
    pub(crate) fn configure_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
        // Single-device services keep their scrape output free of shard
        // series; the fleet registers one launch counter per shard.
        self.shard_launches = if self.shards > 1 {
            (0..self.shards)
                .map(|s| {
                    self.registry.counter(&format!(
                        "sat_service_shard_launches_total{{shard=\"{s}\"}}"
                    ))
                })
                .collect()
        } else {
            Vec::new()
        };
        *self.shard_breakers.lock() = vec!["closed"; self.shards];
    }

    /// Number of configured device shards, for the health endpoint.
    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    pub(crate) fn on_submit(&self) {
        self.c.submitted.inc();
    }

    pub(crate) fn on_reject(&self, err: &crate::ServiceError) {
        match err {
            crate::ServiceError::QueueFull => self.c.rejected_queue_full.inc(),
            crate::ServiceError::DeadlineExceeded => self.c.rejected_deadline.inc(),
            crate::ServiceError::ShuttingDown => self.c.rejected_shutdown.inc(),
            crate::ServiceError::Shutdown => self.c.rejected_shutdown_drain.inc(),
            crate::ServiceError::InvalidRequest(_) => self.c.rejected_invalid.inc(),
            crate::ServiceError::Internal(_) => {}
        }
    }

    /// Record one device attempt (a whole batch dispatch counts as one).
    pub(crate) fn on_attempt(&self, ok: bool) {
        if ok {
            self.c.attempts_ok.inc();
        } else {
            self.c.attempts_failed.inc();
        }
    }

    /// A failed attempt is about to be retried (after backoff).
    pub(crate) fn on_retry(&self) {
        self.c.retries.inc();
    }

    /// One request completed on the degraded CPU path.
    pub(crate) fn on_degraded(&self) {
        self.c.degraded.inc();
    }

    /// One per-result verification finished.
    pub(crate) fn on_verify(&self, ok: bool) {
        if ok {
            self.c.verify_pass.inc();
        } else {
            self.c.verify_fail.inc();
        }
    }

    /// The circuit breaker moved to `to` ("open" / "half_open" / "closed").
    pub(crate) fn on_breaker(&self, to: &str) {
        let state = match to {
            "open" => {
                self.c.breaker_opened.inc();
                "open"
            }
            "half_open" => {
                self.c.breaker_half_open.inc();
                "half_open"
            }
            _ => {
                self.c.breaker_closed.inc();
                "closed"
            }
        };
        *self.breaker.lock() = state;
    }

    /// Shard `shard`'s circuit breaker moved to `to`. Counts the transition
    /// on the shared transition counters and refreshes the aggregate
    /// breaker state the health endpoint reports: "closed" when every
    /// shard is closed, "open" when every shard is open, "half_open" for
    /// any mix (some capacity lost, some remaining).
    pub(crate) fn on_shard_breaker(&self, shard: usize, to: &str) {
        let state = match to {
            "open" => {
                self.c.breaker_opened.inc();
                "open"
            }
            "half_open" => {
                self.c.breaker_half_open.inc();
                "half_open"
            }
            _ => {
                self.c.breaker_closed.inc();
                "closed"
            }
        };
        let mut shards = self.shard_breakers.lock();
        if shards.len() <= shard {
            shards.resize(shard + 1, "closed");
        }
        shards[shard] = state;
        let agg = if shards.iter().all(|&s| s == "closed") {
            "closed"
        } else if shards.iter().all(|&s| s == "open") {
            "open"
        } else {
            "half_open"
        };
        *self.breaker.lock() = agg;
    }

    /// One fleet task (a band's phase kernel, or a whole image on the
    /// non-banded algorithms) finished on some shard.
    pub(crate) fn on_shard_task(&self, ok: bool) {
        if ok {
            self.c.shard_tasks_ok.inc();
        } else {
            self.c.shard_tasks_failed.inc();
        }
    }

    /// An open shard handed its remaining tasks to the surviving shards.
    pub(crate) fn on_shard_failover(&self) {
        self.c.shard_failovers.inc();
    }

    /// A shard's breaker opened mid-dispatch (its fault domain is lost
    /// until a canary re-closes it).
    pub(crate) fn on_shard_lost(&self) {
        self.c.shards_lost.inc();
    }

    /// Shard `shard` issued `n` more kernel launches.
    pub(crate) fn on_shard_launches(&self, shard: usize, n: u64) {
        if let Some(c) = self.shard_launches.get(shard) {
            c.add(n);
        }
    }

    /// Current circuit-breaker state, for the health endpoint.
    pub(crate) fn breaker_state(&self) -> &'static str {
        *self.breaker.lock()
    }

    /// SLO attainment and error-budget burn derived from one request
    /// histogram sample. The *single* shared computation behind both the
    /// flight-recorder's SLO-burn trigger ([`slo_burn`](Self::slo_burn))
    /// and the scrape-time gauges ([`expose_text`](Self::expose_text)), so
    /// the two can never disagree. No samples means the SLO is vacuously
    /// met (attainment 1, burn 0), not vacuously blown —
    /// [`HistogramSample::fraction_le`] on an empty histogram reads 0.
    fn burn_stats(&self, request: &HistogramSample) -> (f64, f64) {
        let attainment = if request.count == 0 {
            1.0
        } else {
            request.fraction_le(self.slo.target.as_secs_f64())
        };
        let burn = if self.slo.error_budget > 0.0 {
            (1.0 - attainment) / self.slo.error_budget
        } else {
            // An unlimited budget cannot burn.
            0.0
        };
        (attainment, burn)
    }

    /// Current SLO error-budget burn rate (1.0 = spending the budget
    /// exactly); see [`burn_stats`](Self::burn_stats).
    pub(crate) fn slo_burn(&self) -> f64 {
        let (_, _, request, _) = self.latency_samples();
        self.burn_stats(&request).1
    }

    /// A half-open canary launch probed the device.
    pub(crate) fn on_canary(&self) {
        self.c.canaries.inc();
    }

    /// Record one dispatched batch.
    pub(crate) fn on_batch(&self, b: &BatchRecord<'_>) {
        self.c.batches.inc();
        self.c.launches_issued.add(b.launches);
        self.c.launches_unbatched_equiv.add(b.launches_equiv);
        self.c.barriers_issued.add(b.barriers);
        self.c.barriers_unbatched_equiv.add(b.barriers_equiv);
        self.c.completed.add(b.width as u64);
        {
            let mut m = self.inner.lock();
            if m.batch_width_hist.len() <= b.width {
                m.batch_width_hist.resize(b.width + 1, 0);
            }
            m.batch_width_hist[b.width] += 1;
        }
        let secs = |ns: u64| ns as f64 * 1e-9;
        for (i, &q) in b.queue_ns.iter().enumerate() {
            match b.request_ids.get(i) {
                // Stamp the landing bucket with the request id so a scrape
                // can name a request that actually paid each latency.
                Some(&rid) => {
                    self.h.queue.observe_with_exemplar(secs(q), rid);
                    self.h.exec.observe_with_exemplar(secs(b.exec_ns), rid);
                    self.h
                        .request
                        .observe_with_exemplar(secs(q + b.exec_ns), rid);
                }
                None => {
                    self.h.queue.observe(secs(q));
                    self.h.exec.observe(secs(b.exec_ns));
                    self.h.request.observe(secs(q + b.exec_ns));
                }
            }
        }
        // The batch-formation window is the oldest member's wait: from its
        // admission until the batch dispatched.
        self.h
            .batch
            .observe(secs(b.queue_ns.iter().copied().max().unwrap_or(0)));
    }

    /// Sample the four latency histograms (queue, exec, request, batch).
    fn latency_samples(
        &self,
    ) -> (
        HistogramSample,
        HistogramSample,
        HistogramSample,
        HistogramSample,
    ) {
        let snap = self.registry.snapshot();
        let get = |name: &str| {
            snap.histogram(name)
                .cloned()
                .expect("latency histogram registered at construction")
        };
        (
            get(QUEUE_HIST),
            get(EXEC_HIST),
            get(REQUEST_HIST),
            get(BATCH_HIST),
        )
    }

    pub(crate) fn snapshot(&self) -> ServiceStats {
        let (queue, exec, request, _) = self.latency_samples();
        let m = self.inner.lock();
        ServiceStats {
            submitted: self.c.submitted.total(),
            completed: self.c.completed.total(),
            rejected_deadline: self.c.rejected_deadline.total(),
            rejected_queue_full: self.c.rejected_queue_full.total(),
            rejected_shutdown: self.c.rejected_shutdown.total(),
            rejected_invalid: self.c.rejected_invalid.total(),
            batches: self.c.batches.total(),
            batch_width_hist: m.batch_width_hist.clone(),
            launches_issued: self.c.launches_issued.total(),
            launches_unbatched_equiv: self.c.launches_unbatched_equiv.total(),
            barriers_issued: self.c.barriers_issued.total(),
            barriers_unbatched_equiv: self.c.barriers_unbatched_equiv.total(),
            rejected_shutdown_drain: self.c.rejected_shutdown_drain.total(),
            attempts_ok: self.c.attempts_ok.total(),
            attempts_failed: self.c.attempts_failed.total(),
            retries: self.c.retries.total(),
            degraded: self.c.degraded.total(),
            verify_pass: self.c.verify_pass.total(),
            verify_fail: self.c.verify_fail.total(),
            breaker_opened: self.c.breaker_opened.total(),
            breaker_half_open: self.c.breaker_half_open.total(),
            breaker_closed: self.c.breaker_closed.total(),
            canary_probes: self.c.canaries.total(),
            shards: self.shards as u64,
            shard_tasks_ok: self.c.shard_tasks_ok.total(),
            shard_tasks_failed: self.c.shard_tasks_failed.total(),
            shard_failovers: self.c.shard_failovers.total(),
            shards_lost: self.c.shards_lost.total(),
            shard_launches: self.shard_launches.iter().map(Counter::total).collect(),
            queue_latency: LatencySummary::from_histogram(&queue),
            exec_latency: LatencySummary::from_histogram(&exec),
            total_latency: LatencySummary::from_histogram(&request),
        }
    }

    /// Prometheus-style text exposition: refresh the latency-summary and
    /// SLO gauges from the histogram buckets, then render every metric on
    /// the registry — counters, gauges and the histograms' own
    /// `_bucket`/`_sum`/`_count` series (including the device's `gpu_*`
    /// family when the registry is shared).
    pub(crate) fn expose_text(&self) -> String {
        let (queue, exec, request, _) = self.latency_samples();
        for (prefix, sample) in [
            ("sat_service_queue_latency_ms", &queue),
            ("sat_service_exec_latency_ms", &exec),
            ("sat_service_total_latency_ms", &request),
        ] {
            let s = LatencySummary::from_histogram(sample);
            for (stat, v) in [
                ("mean", s.mean_ms),
                ("p50", s.p50_ms),
                ("p95", s.p95_ms),
                ("p99", s.p99_ms),
                ("max", s.max_ms),
            ] {
                self.registry
                    .gauge(&format!("{prefix}{{stat=\"{stat}\"}}"))
                    .set(v);
            }
        }
        // SLO attainment from the request histogram: the `<= target`
        // fraction is rounded up to a bucket boundary (conservative in the
        // service's favour is the wrong direction for an SLO, so the burn
        // rate derived from it is a *lower bound* — the bucket containing
        // the target bounds the error either way within one bucket). The
        // same `burn_stats` feeds the post-mortem trigger's `slo_burn`.
        let (attainment, burn) = self.burn_stats(&request);
        self.registry
            .gauge("sat_service_slo_attainment_ratio")
            .set(attainment);
        self.registry
            .gauge("sat_service_slo_error_budget_burn")
            .set(burn);
        self.registry.expose_text()
    }
}

/// A point-in-time snapshot of the service's instrumentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered with a SAT.
    pub completed: u64,
    /// Requests rejected because their deadline expired while queued.
    pub rejected_deadline: u64,
    /// Requests rejected because the queue stayed full past their deadline.
    pub rejected_queue_full: u64,
    /// Requests rejected because the service was shutting down.
    pub rejected_shutdown: u64,
    /// Requests rejected as malformed before queueing.
    pub rejected_invalid: u64,
    /// Dispatched batches (width-1 batches included).
    pub batches: u64,
    /// `batch_width_hist[w]` = number of batches dispatched at width `w`.
    pub batch_width_hist: Vec<u64>,
    /// Kernel launches actually issued by the service.
    pub launches_issued: u64,
    /// Kernel launches per-request execution of the same traffic would
    /// have issued.
    pub launches_unbatched_equiv: u64,
    /// Barrier synchronisation steps actually issued.
    pub barriers_issued: u64,
    /// Barrier steps per-request execution would have issued.
    pub barriers_unbatched_equiv: u64,
    /// Requests failed with [`crate::ServiceError::Shutdown`] because the
    /// service shut down while they were still queued.
    pub rejected_shutdown_drain: u64,
    /// Device attempts (one per batch dispatch) that passed every check.
    pub attempts_ok: u64,
    /// Device attempts that failed a launch or a verification.
    pub attempts_failed: u64,
    /// Failed attempts retried after backoff.
    pub retries: u64,
    /// Requests completed on the degraded sequential CPU path.
    pub degraded: u64,
    /// Per-result SAT verifications that passed.
    pub verify_pass: u64,
    /// Per-result SAT verifications that failed (result discarded, retried).
    pub verify_fail: u64,
    /// Circuit-breaker transitions into `Open`.
    pub breaker_opened: u64,
    /// Circuit-breaker transitions into `HalfOpen`.
    pub breaker_half_open: u64,
    /// Circuit-breaker transitions back into `Closed`.
    pub breaker_closed: u64,
    /// Half-open canary launches issued to probe the device.
    pub canary_probes: u64,
    /// Device shards the service was configured with (1 = single device).
    pub shards: u64,
    /// Fleet tasks (band phase kernels, or whole images on non-banded
    /// algorithms) that completed cleanly on some shard.
    pub shard_tasks_ok: u64,
    /// Fleet tasks whose attempt failed on a shard (requeued for the
    /// survivors or retried).
    pub shard_tasks_failed: u64,
    /// Times an open shard's remaining tasks were resharded onto the
    /// surviving shards.
    pub shard_failovers: u64,
    /// Shard breakers opened mid-dispatch (the shard's fault domain lost
    /// until a canary re-closes it).
    pub shards_lost: u64,
    /// Kernel launches issued per shard, in shard order (empty when the
    /// service runs single-device).
    pub shard_launches: Vec<u64>,
    /// Time from admission to batch dispatch, per request
    /// (bucket-estimated; see [`LatencySummary::from_histogram`]).
    pub queue_latency: LatencySummary,
    /// Device execution time of the request's batch (bucket-estimated).
    pub exec_latency: LatencySummary,
    /// Queue + execute, per request (bucket-estimated).
    pub total_latency: LatencySummary,
}

impl ServiceStats {
    /// Mean width of dispatched batches.
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }

    /// How many times fewer launches the service issued than per-request
    /// execution would have (1.0 = no amortisation).
    pub fn launch_reduction(&self) -> f64 {
        if self.launches_issued == 0 {
            return 1.0;
        }
        self.launches_unbatched_equiv as f64 / self.launches_issued as f64
    }

    /// Kernel launches saved by batch fusing.
    pub fn launches_saved(&self) -> u64 {
        self.launches_unbatched_equiv
            .saturating_sub(self.launches_issued)
    }

    /// Barrier windows saved by batch fusing.
    pub fn barrier_windows_saved(&self) -> u64 {
        self.barriers_unbatched_equiv
            .saturating_sub(self.barriers_issued)
    }
}

/// Summary of one latency distribution, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarised.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (nearest-rank).
    pub p50_ms: f64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: f64,
    /// 99th percentile (nearest-rank).
    pub p99_ms: f64,
    /// Largest sample.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarise nanosecond samples; all-zero when `samples` is empty.
    pub fn from_ns(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let ms = |ns: u64| ns as f64 * 1e-6;
        let pct = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            ms(sorted[rank - 1])
        };
        LatencySummary {
            count: sorted.len() as u64,
            mean_ms: sorted.iter().map(|&x| x as f64).sum::<f64>() * 1e-6 / sorted.len() as f64,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: ms(*sorted.last().unwrap()),
        }
    }

    /// Summarise a latency histogram (seconds) in milliseconds. Percentiles
    /// are bucket-boundary estimates (within one log bucket — ≈ a factor of
    /// the layout's growth — of the exact sample quantile); the mean and
    /// max are exact.
    pub fn from_histogram(h: &HistogramSample) -> Self {
        LatencySummary {
            count: h.count,
            mean_ms: h.mean() * 1e3,
            p50_ms: h.quantile(0.50) * 1e3,
            p95_ms: h.quantile(0.95) * 1e3,
            p99_ms: h.quantile(0.99) * 1e3,
            max_ms: h.max * 1e3,
        }
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new(Registry::new(), SloConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_ns(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ms, 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|k| k * 1_000_000).collect();
        let s = LatencySummary::from_ns(&ns);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 0.51);
    }

    #[test]
    fn batch_accounting() {
        let m = Metrics::default();
        m.on_submit();
        m.on_submit();
        m.on_batch(&BatchRecord {
            width: 2,
            launches: 3,
            launches_equiv: 6,
            barriers: 2,
            barriers_equiv: 4,
            queue_ns: &[1_000, 2_000],
            exec_ns: 5_000,
            request_ids: &[1, 2],
        });
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_width_hist[2], 1);
        assert_eq!(s.mean_batch_width(), 2.0);
        assert_eq!(s.launches_saved(), 3);
        assert_eq!(s.barrier_windows_saved(), 2);
        assert_eq!(s.launch_reduction(), 2.0);
        assert_eq!(s.total_latency.count, 2);
        // Histograms never drop samples; the count covers all history.
        assert_eq!(s.queue_latency.count, 2);
        assert_eq!(s.exec_latency.count, 2);
    }

    #[test]
    fn summaries_come_from_histogram_buckets() {
        let m = Metrics::default();
        // 100 requests: queue k ms (k = 1..=100), exec 0.
        for k in 1..=100u64 {
            m.on_batch(&BatchRecord {
                width: 1,
                launches: 1,
                launches_equiv: 1,
                barriers: 0,
                barriers_equiv: 0,
                queue_ns: &[k * 1_000_000],
                exec_ns: 0,
                request_ids: &[],
            });
        }
        let s = m.snapshot().queue_latency;
        assert_eq!(s.count, 100);
        // The default layout's buckets are log-spaced (×2), so the
        // bucket-derived percentiles sit within a factor of 2 of the exact
        // nearest-rank values (50 / 95 / 99 ms).
        for (est, exact) in [(s.p50_ms, 50.0), (s.p95_ms, 95.0), (s.p99_ms, 99.0)] {
            assert!(
                est >= exact && est <= exact * 2.0,
                "estimate {est} vs exact {exact}"
            );
        }
        // Mean and max are tracked exactly, not bucketed.
        assert!((s.mean_ms - 50.5).abs() < 1e-6);
        assert!((s.max_ms - 100.0).abs() < 1e-6);
    }

    #[test]
    fn expose_text_renders_counters_latency_gauges_and_buckets() {
        let m = Metrics::default();
        m.on_submit();
        m.on_reject(&crate::ServiceError::DeadlineExceeded);
        m.on_batch(&BatchRecord {
            width: 1,
            launches: 2,
            launches_equiv: 2,
            barriers: 1,
            barriers_equiv: 1,
            queue_ns: &[2_000_000],
            exec_ns: 1_000_000,
            request_ids: &[42],
        });
        let text = m.expose_text();
        assert!(text.contains("# TYPE sat_service_submitted_total counter"));
        assert!(text.contains("sat_service_submitted_total 1"));
        assert!(text.contains("sat_service_rejected_total{reason=\"deadline\"} 1"));
        assert!(text.contains("sat_service_launches_total{kind=\"issued\"} 2"));
        // Continuity gauges, now bucket-derived: the 2 ms queue sample's
        // p50 is the containing bucket's upper bound, 2.048 ms.
        assert!(text.contains("# TYPE sat_service_queue_latency_ms gauge"));
        assert!(text.contains("sat_service_queue_latency_ms{stat=\"p50\"} 2.048"));
        assert!(text.contains("sat_service_total_latency_ms{stat=\"max\"} 3"));
        // Raw Prometheus histogram series.
        assert!(text.contains("# TYPE sat_service_request_latency_seconds histogram"));
        assert!(text.contains("sat_service_request_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("sat_service_request_latency_seconds_count 1"));
        assert!(text.contains("sat_service_request_latency_seconds_sum 0.003"));
        // The landing bucket carries an OpenMetrics exemplar naming the
        // request that paid the latency (3 ms → le="0.004096" bucket).
        let exemplar = text
            .lines()
            .find(|l| {
                l.starts_with("sat_service_request_latency_seconds_bucket")
                    && l.contains("# {request_id=\"42\"}")
            })
            .expect("request histogram carries an exemplar");
        assert!(
            exemplar.ends_with("# {request_id=\"42\"} 0.003"),
            "{exemplar}"
        );
        assert!(text
            .contains("sat_service_stage_latency_seconds_bucket{stage=\"queue\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn breaker_state_tracks_transitions_for_health() {
        let m = Metrics::default();
        assert_eq!(m.breaker_state(), "closed");
        m.on_breaker("open");
        assert_eq!(m.breaker_state(), "open");
        m.on_breaker("half_open");
        assert_eq!(m.breaker_state(), "half_open");
        m.on_breaker("closed");
        assert_eq!(m.breaker_state(), "closed");
        // No samples yet: the burn rate reads zero, not NaN.
        assert_eq!(m.slo_burn(), 0.0);
    }

    #[test]
    fn shard_breakers_aggregate_for_health() {
        let mut m = Metrics::default();
        m.configure_shards(3);
        assert_eq!(m.breaker_state(), "closed");
        // One shard down: the fleet is degraded, not dead.
        m.on_shard_breaker(1, "open");
        assert_eq!(m.breaker_state(), "half_open");
        m.on_shard_breaker(0, "open");
        m.on_shard_breaker(2, "open");
        assert_eq!(m.breaker_state(), "open");
        m.on_shard_breaker(1, "half_open");
        assert_eq!(m.breaker_state(), "half_open");
        for s in 0..3 {
            m.on_shard_breaker(s, "closed");
        }
        assert_eq!(m.breaker_state(), "closed");
        m.on_shard_task(true);
        m.on_shard_task(false);
        m.on_shard_failover();
        m.on_shard_lost();
        m.on_shard_launches(2, 7);
        let s = m.snapshot();
        assert_eq!(s.shards, 3);
        assert_eq!(s.breaker_opened, 3);
        assert_eq!(s.shard_tasks_ok, 1);
        assert_eq!(s.shard_tasks_failed, 1);
        assert_eq!(s.shard_failovers, 1);
        assert_eq!(s.shards_lost, 1);
        assert_eq!(s.shard_launches, vec![0, 0, 7]);
    }

    #[test]
    fn slo_gauges_follow_the_request_histogram() {
        let m = Metrics::new(
            Registry::new(),
            SloConfig {
                target: Duration::from_millis(10),
                error_budget: 0.1,
            },
        );
        // Before any traffic the SLO is vacuously met: the shared burn
        // computation special-cases the empty histogram (whose raw
        // `fraction_le` reads 0) so a pre-traffic scrape cannot report a
        // fully-burnt budget, and the trigger agrees with the gauge.
        let text = m.expose_text();
        assert!(text.contains("sat_service_slo_attainment_ratio 1"));
        assert!(text.contains("sat_service_slo_error_budget_burn 0"));
        assert_eq!(m.slo_burn(), 0.0);
        // 3 fast requests (1 ms) and 1 slow (1 s): attainment 0.75, and a
        // burn rate of (1 - 0.75) / 0.1 = 2.5.
        m.on_batch(&BatchRecord {
            width: 4,
            launches: 1,
            launches_equiv: 4,
            barriers: 0,
            barriers_equiv: 0,
            queue_ns: &[0, 0, 0, 0],
            exec_ns: 0,
            request_ids: &[],
        });
        let text = m.expose_text();
        assert!(text.contains("sat_service_slo_target_seconds 0.01"));
        assert!(text.contains("sat_service_slo_attainment_ratio 1"));
        // Fresh metrics, mixed latencies: one of four requests misses.
        let m = Metrics::new(
            Registry::new(),
            SloConfig {
                target: Duration::from_millis(10),
                error_budget: 0.1,
            },
        );
        for exec_ns in [1_000_000, 1_000_000, 1_000_000, 1_000_000_000] {
            m.on_batch(&BatchRecord {
                width: 1,
                launches: 1,
                launches_equiv: 1,
                barriers: 0,
                barriers_equiv: 0,
                queue_ns: &[0],
                exec_ns,
                request_ids: &[],
            });
        }
        let text = m.expose_text();
        assert!(text.contains("sat_service_slo_attainment_ratio 0.75"));
        assert!(text.contains("sat_service_slo_error_budget_burn 2.5"));
        // The programmatic burn (the post-mortem trigger's input) agrees
        // with the exposed gauge.
        assert!((m.slo_burn() - 2.5).abs() < 1e-9, "{}", m.slo_burn());
    }
}
