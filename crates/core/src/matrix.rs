//! Row-major matrices, the inputs and outputs of SAT computation.

use crate::element::SatElement;

/// A dense row-major matrix.
///
/// The SAT algorithms of this crate are defined for square matrices whose
/// side is a multiple of the machine width `w` (the paper's setting); the
/// top-level driver [`crate::compute_sat`] zero-pads arbitrary shapes first —
/// zero padding on the right/bottom does not change the SAT values of the
/// original region.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: SatElement> Matrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Overwrite element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Copy into a `size × size` zero-padded matrix (`size ≥ max(rows, cols)`).
    pub fn zero_padded(&self, size: usize) -> Matrix<T> {
        self.zero_padded_to(size, size)
    }

    /// Copy into a `rows × cols` zero-padded matrix (both dimensions may
    /// only grow). Zero padding on the right/bottom does not change the SAT
    /// values of the original region.
    pub fn zero_padded_to(&self, rows: usize, cols: usize) -> Matrix<T> {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..self.rows {
            out.data[i * cols..i * cols + self.cols].copy_from_slice(self.row(i));
        }
        out
    }

    /// Extract the top-left `rows × cols` corner.
    pub fn cropped(&self, rows: usize, cols: usize) -> Matrix<T> {
        assert!(rows <= self.rows && cols <= self.cols, "crop must shrink");
        Matrix::from_fn(rows, cols, |i, j| self.get(i, j))
    }

    /// The transpose.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Map every element.
    pub fn map<U: SatElement>(&self, f: impl Fn(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl Matrix<f64> {
    /// Maximum absolute elementwise difference (for float comparisons).
    pub fn max_abs_diff(&self, other: &Matrix<f64>) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as i64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 12);
        assert_eq!(m.row(1), &[10, 11, 12]);
        assert!(!m.is_square());
    }

    #[test]
    fn padding_and_cropping_round_trip() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + j) as i32);
        let p = m.zero_padded(5);
        assert_eq!(p.rows(), 5);
        assert_eq!(p.get(2, 1), 3);
        assert_eq!(p.get(4, 4), 0);
        assert_eq!(p.get(2, 3), 0);
        assert_eq!(p.cropped(3, 2), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(4, 7, |i, j| (3 * i + j) as u32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(5, 2), m.get(2, 5));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1i32, 2, 3]);
    }

    #[test]
    fn map_converts() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as i64);
        let f = m.map(|v| v as f64);
        assert_eq!(f.get(1, 1), 2.0);
    }
}
