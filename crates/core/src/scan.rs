//! Device-side one-dimensional prefix sums (scan).
//!
//! The SAT is the two-dimensional prefix sum; the authors' companion work
//! (Nakano, *"Optimal parallel algorithms for computing the sum, the
//! prefix-sums, and the summed area table on the memory machine models"*)
//! treats the 1-D primitive on the same models. This module provides it as
//! a library feature with the same structure as the block SAT algorithms:
//!
//! 1. **block sums** — each `w²`-element chunk is reduced by one block
//!    (coalesced reads);
//! 2. **scan of the sums** — one block scans the chunk sums in shared
//!    memory (recursively if they exceed one tile);
//! 3. **fix-up** — each chunk is rescanned with its exclusive offset and
//!    written out (coalesced reads + writes).
//!
//! Three launches (two barriers) per level; `3N + O(N/w²)` global
//! operations (2 reads + 1 write per element), all coalesced — the 1-D
//! analogue of 2R1W.

use gpu_exec::{Device, GlobalBuffer};

use crate::element::SatElement;

/// Chunk length handled by one block: `w²` elements (`w` warp rows of `w`
/// lanes — fits one shared tile).
fn chunk_len(w: usize) -> usize {
    w * w
}

/// Inclusive prefix sums of `input` into `output` (same length `len`),
/// on the device. Lengths need not be multiples of anything.
pub fn inclusive_scan<T: SatElement>(
    dev: &Device,
    input: &GlobalBuffer<T>,
    output: &GlobalBuffer<T>,
    len: usize,
) {
    assert!(
        input.len() >= len && output.len() >= len,
        "buffers too small"
    );
    if len == 0 {
        return;
    }
    let w = dev.width();
    let chunk = chunk_len(w);
    let chunks = len.div_ceil(chunk);
    if chunks == 1 {
        scan_single_block(dev, input, output, len, T::ZERO);
        return;
    }
    // Phase 1: per-chunk totals.
    let sums = GlobalBuffer::filled(T::ZERO, chunks);
    dev.launch(chunks, |ctx| {
        let gi = ctx.view(input);
        let gsum = ctx.view(&sums);
        let c = ctx.block_id();
        let start = c * chunk;
        let end = (start + chunk).min(len);
        let mut buf = vec![T::ZERO; w];
        let mut acc = T::ZERO;
        let mut pos = start;
        while pos < end {
            let lanes = w.min(end - pos);
            gi.read_contig(pos, &mut buf[..lanes], &mut ctx.rec);
            for &v in &buf[..lanes] {
                acc = acc.add(v);
            }
            pos += lanes;
        }
        gsum.write(c, acc, &mut ctx.rec);
    });
    // Phase 2: scan the chunk sums (recursively — they are just another
    // scan problem, `w²` times smaller).
    let sums_scanned = GlobalBuffer::filled(T::ZERO, chunks);
    inclusive_scan(dev, &sums, &sums_scanned, chunks);
    // Phase 3: rescan each chunk with its exclusive offset.
    dev.launch(chunks, |ctx| {
        let gi = ctx.view(input);
        let go = ctx.view(output);
        let goff = ctx.view(&sums_scanned);
        let c = ctx.block_id();
        let start = c * chunk;
        let end = (start + chunk).min(len);
        let mut acc = if c > 0 {
            goff.read(c - 1, &mut ctx.rec)
        } else {
            T::ZERO
        };
        let mut buf = vec![T::ZERO; w];
        let mut pos = start;
        while pos < end {
            let lanes = w.min(end - pos);
            gi.read_contig(pos, &mut buf[..lanes], &mut ctx.rec);
            for v in &mut buf[..lanes] {
                acc = acc.add(*v);
                *v = acc;
            }
            go.write_contig(pos, &buf[..lanes], &mut ctx.rec);
            pos += lanes;
        }
    });
}

/// Exclusive prefix sums (`output[i] = Σ input[..i]`, `output[0] = 0`).
pub fn exclusive_scan<T: SatElement>(
    dev: &Device,
    input: &GlobalBuffer<T>,
    output: &GlobalBuffer<T>,
    len: usize,
) {
    inclusive_scan(dev, input, output, len);
    // Shift right by one: out[i] = inclusive[i−1]. One extra coalesced
    // pass, done chunk-parallel in reverse inside each block to stay
    // in-place-safe per block.
    if len == 0 {
        return;
    }
    let w = dev.width();
    let chunk = chunk_len(w);
    let chunks = len.div_ceil(chunk);
    // Read each chunk's shifted values before overwriting: blocks own
    // disjoint output ranges, and the value crossing the chunk boundary is
    // read before any block writes (same launch reads-before-writes within
    // a block; the boundary element belongs to the *previous* chunk, which
    // this launch does not modify before this block reads it — to stay
    // race-free under the detector, each block first snapshots the single
    // boundary word from the previous launch's output).
    let boundaries = GlobalBuffer::filled(T::ZERO, chunks);
    dev.launch(chunks, |ctx| {
        let go = ctx.view(output);
        let gb = ctx.view(&boundaries);
        let c = ctx.block_id();
        let v = if c == 0 {
            T::ZERO
        } else {
            go.read(c * chunk - 1, &mut ctx.rec)
        };
        gb.write(c, v, &mut ctx.rec);
    });
    dev.launch(chunks, |ctx| {
        let go = ctx.view(output);
        let gb = ctx.view(&boundaries);
        let c = ctx.block_id();
        let start = c * chunk;
        let end = (start + chunk).min(len);
        let mut prev = gb.read(c, &mut ctx.rec);
        let mut buf = vec![T::ZERO; w];
        let mut pos = start;
        while pos < end {
            let lanes = w.min(end - pos);
            go.read_contig(pos, &mut buf[..lanes], &mut ctx.rec);
            for v in &mut buf[..lanes] {
                std::mem::swap(&mut prev, v);
            }
            go.write_contig(pos, &buf[..lanes], &mut ctx.rec);
            pos += lanes;
        }
    });
}

/// Scan of at most one chunk by a single block, with a seed offset.
fn scan_single_block<T: SatElement>(
    dev: &Device,
    input: &GlobalBuffer<T>,
    output: &GlobalBuffer<T>,
    len: usize,
    seed: T,
) {
    let w = dev.width();
    dev.launch(1, |ctx| {
        let gi = ctx.view(input);
        let go = ctx.view(output);
        let mut acc = seed;
        let mut buf = vec![T::ZERO; w];
        let mut pos = 0;
        while pos < len {
            let lanes = w.min(len - pos);
            gi.read_contig(pos, &mut buf[..lanes], &mut ctx.rec);
            for v in &mut buf[..lanes] {
                acc = acc.add(*v);
                *v = acc;
            }
            go.write_contig(pos, &buf[..lanes], &mut ctx.rec);
            pos += lanes;
        }
    });
}

/// Host reference: inclusive prefix sums.
pub fn inclusive_scan_host<T: SatElement>(input: &[T]) -> Vec<T> {
    let mut acc = T::ZERO;
    input
        .iter()
        .map(|&v| {
            acc = acc.add(v);
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    fn data(len: usize) -> Vec<i64> {
        (0..len).map(|i| ((i * 37 + 11) % 23) as i64 - 11).collect()
    }

    #[test]
    fn inclusive_matches_host_across_sizes() {
        let w = 4;
        let dev = dev(w);
        // Cross chunk boundaries (chunk = 16), recursion levels and odd
        // tails.
        for len in [0usize, 1, 3, 15, 16, 17, 100, 256, 257, 5000] {
            let v = data(len);
            let input = GlobalBuffer::from_vec(v.clone());
            let output = GlobalBuffer::filled(0i64, len);
            inclusive_scan(&dev, &input, &output, len);
            assert_eq!(output.into_vec(), inclusive_scan_host(&v), "len={len}");
        }
    }

    #[test]
    fn exclusive_is_shifted_inclusive() {
        let w = 4;
        let dev = dev(w);
        for len in [1usize, 16, 33, 250, 1030] {
            let v = data(len);
            let input = GlobalBuffer::from_vec(v.clone());
            let output = GlobalBuffer::filled(0i64, len);
            exclusive_scan(&dev, &input, &output, len);
            let got = output.into_vec();
            let inc = inclusive_scan_host(&v);
            assert_eq!(got[0], 0, "len={len}");
            for i in 1..len {
                assert_eq!(got[i], inc[i - 1], "len={len} i={i}");
            }
        }
    }

    #[test]
    fn all_accesses_coalesced_except_chunk_offsets() {
        let w = 8;
        let dev = dev(w);
        let len = 4096; // 64 chunks
        let input = GlobalBuffer::from_vec(data(len));
        let output = GlobalBuffer::filled(0i64, len);
        dev.reset_stats();
        inclusive_scan(&dev, &input, &output, len);
        let s = dev.stats();
        assert_eq!(s.stride_ops(), 0);
        // 2 reads + 1 write per element plus chunk-level traffic.
        let reads = s.coalesced_reads as f64 / len as f64;
        let writes = s.coalesced_writes as f64 / len as f64;
        assert!((2.0..2.1).contains(&reads), "{reads}");
        assert!((1.0..1.1).contains(&writes), "{writes}");
        // Three launches: chunk sums, single-block scan of the 64 sums,
        // fix-up — i.e. two barriers.
        assert_eq!(s.barrier_steps, 2);
    }

    #[test]
    fn race_detector_clean() {
        let w = 4;
        let dev = dev(w);
        let len = 1000;
        let v = data(len);
        let input = GlobalBuffer::from_vec_checked(v.clone());
        let output = GlobalBuffer::from_vec_checked(vec![0i64; len]);
        exclusive_scan(&dev, &input, &output, len);
        let got = output.into_vec();
        assert_eq!(got[999], inclusive_scan_host(&v)[998]);
    }

    #[test]
    fn scan_of_ones_is_iota() {
        let dev = dev(4);
        let len = 777;
        let input = GlobalBuffer::filled(1i64, len);
        let output = GlobalBuffer::filled(0i64, len);
        inclusive_scan(&dev, &input, &output, len);
        let got = output.into_vec();
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, i as i64 + 1);
        }
    }
}
