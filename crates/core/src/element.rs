//! The scalar element types a summed area table can be computed over.

use std::fmt::Debug;

/// Element type of a matrix whose SAT we compute.
///
/// The SAT needs addition and (for rectangle-sum queries and for the fringe
/// derivations of the 1R1W algorithm) subtraction. Integer implementations
/// use wrapping arithmetic, so every algorithm computes the same function on
/// every input even when intermediate sums overflow — the group structure of
/// `(Z/2^k, +)` keeps all identities exact. Floating point implementations
/// use IEEE arithmetic; different algorithms may round differently, so
/// comparisons of `f32`/`f64` SATs use tolerances (or integer-valued inputs,
/// which stay exact below the mantissa limit).
pub trait SatElement: Copy + Default + Send + Sync + PartialEq + Debug + 'static {
    /// The additive identity.
    const ZERO: Self;

    /// Associative, commutative addition.
    #[must_use]
    fn add(self, rhs: Self) -> Self;

    /// Inverse of [`add`](Self::add): `a.add(b).sub(b) == a`.
    #[must_use]
    fn sub(self, rhs: Self) -> Self;
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl SatElement for $t {
            const ZERO: Self = 0.0;
            #[inline]
            fn add(self, rhs: Self) -> Self { self + rhs }
            #[inline]
            fn sub(self, rhs: Self) -> Self { self - rhs }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl SatElement for $t {
            const ZERO: Self = 0;
            #[inline]
            fn add(self, rhs: Self) -> Self { self.wrapping_add(rhs) }
            #[inline]
            fn sub(self, rhs: Self) -> Self { self.wrapping_sub(rhs) }
        }
    )*};
}

impl_float!(f32, f64);
impl_int!(i32, i64, u32, u64, u8, u16, i8, i16);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_round_trip() {
        assert_eq!(3.5f64.add(2.25).sub(2.25), 3.5);
        assert_eq!(7i64.add(-9).sub(-9), 7);
        assert_eq!(250u8.add(10), 4); // wrapping
        assert_eq!(4u8.sub(10), 250);
    }

    #[test]
    fn zero_is_identity() {
        assert_eq!(f32::ZERO.add(1.5), 1.5);
        assert_eq!(i32::ZERO, 0);
        assert_eq!(42u64.add(u64::ZERO), 42);
    }
}
