//! Sequential SAT algorithms — the CPU baselines of the paper's Table II and
//! the references against which every parallel algorithm is verified.

use crate::element::SatElement;
use crate::matrix::Matrix;

/// In-place column-wise prefix sums, computed in raster scan order
/// (`a[i][j] += a[i−1][j]` row by row — the cache-friendly order used by
/// the paper's 2R2W(CPU) baseline).
pub fn column_prefix_inplace<T: SatElement>(a: &mut Matrix<T>) {
    let (rows, cols) = (a.rows(), a.cols());
    let data = a.as_mut_slice();
    for i in 1..rows {
        let (prev, cur) = data.split_at_mut(i * cols);
        let prev = &prev[(i - 1) * cols..];
        for j in 0..cols {
            cur[j] = cur[j].add(prev[j]);
        }
    }
}

/// In-place row-wise prefix sums in raster scan order
/// (`a[i][j] += a[i][j−1]`).
pub fn row_prefix_inplace<T: SatElement>(a: &mut Matrix<T>) {
    let (rows, cols) = (a.rows(), a.cols());
    let data = a.as_mut_slice();
    for i in 0..rows {
        let row = &mut data[i * cols..(i + 1) * cols];
        for j in 1..cols {
            row[j] = row[j].add(row[j - 1]);
        }
    }
}

/// **2R2W(CPU)**: the SAT by column-wise then row-wise prefix sums, both in
/// raster scan order, in place. Two full read-write sweeps over the matrix.
pub fn sat_2r2w_cpu<T: SatElement>(a: &mut Matrix<T>) {
    column_prefix_inplace(a);
    row_prefix_inplace(a);
}

/// **4R1W(CPU)**: the SAT by evaluating, in raster scan order and in place,
///
/// ```text
/// s(i,j) = a(i,j) + s(i−1,j) + s(i,j−1) − s(i−1,j−1)
/// ```
///
/// (Formula (1) of the paper). One sweep with four reads and one write per
/// element; faster than 2R2W(CPU) in practice because of access locality —
/// the paper's best CPU baseline.
pub fn sat_4r1w_cpu<T: SatElement>(a: &mut Matrix<T>) {
    let (rows, cols) = (a.rows(), a.cols());
    if rows == 0 || cols == 0 {
        return;
    }
    let data = a.as_mut_slice();
    // Row 0: plain row prefix.
    for j in 1..cols {
        data[j] = data[j].add(data[j - 1]);
    }
    for i in 1..rows {
        let base = i * cols;
        // Column 0: only the cell above contributes.
        data[base] = data[base].add(data[base - cols]);
        for j in 1..cols {
            let v = data[base + j]
                .add(data[base + j - cols]) // s(i−1, j)
                .add(data[base + j - 1]) // s(i, j−1)
                .sub(data[base + j - cols - 1]); // s(i−1, j−1)
            data[base + j] = v;
        }
    }
}

/// Out-of-place reference SAT (2R2W order). Every parallel algorithm is
/// checked against this.
pub fn sat_reference<T: SatElement>(a: &Matrix<T>) -> Matrix<T> {
    let mut s = a.clone();
    sat_2r2w_cpu(&mut s);
    s
}

/// Brute-force SAT by direct summation — `O(n²·m²)` work, for tiny inputs
/// only; the ground truth beneath [`sat_reference`].
pub fn sat_naive<T: SatElement>(a: &Matrix<T>) -> Matrix<T> {
    Matrix::from_fn(a.rows(), a.cols(), |i, j| {
        let mut acc = T::ZERO;
        for u in 0..=i {
            for v in 0..=j {
                acc = acc.add(a.get(u, v));
            }
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fig3_column_prefix, fig3_input, fig3_sat};

    #[test]
    fn fig3_column_pass() {
        let mut a = fig3_input();
        column_prefix_inplace(&mut a);
        assert_eq!(a, fig3_column_prefix());
    }

    #[test]
    fn fig3_worked_example_2r2w() {
        let mut a = fig3_input();
        sat_2r2w_cpu(&mut a);
        assert_eq!(a, fig3_sat());
    }

    #[test]
    fn fig3_worked_example_4r1w() {
        let mut a = fig3_input();
        sat_4r1w_cpu(&mut a);
        assert_eq!(a, fig3_sat());
    }

    #[test]
    fn reference_matches_naive_on_small_inputs() {
        for (rows, cols) in [(1, 1), (1, 5), (5, 1), (3, 4), (7, 7)] {
            let a = Matrix::from_fn(rows, cols, |i, j| (i * 31 + j * 7) as i64 % 13 - 6);
            assert_eq!(sat_reference(&a), sat_naive(&a), "{rows}x{cols}");
        }
    }

    #[test]
    fn empty_and_degenerate_matrices() {
        let mut z: Matrix<i64> = Matrix::zeros(0, 0);
        sat_4r1w_cpu(&mut z); // must not panic
        let mut one = Matrix::from_vec(1, 1, vec![42i64]);
        sat_4r1w_cpu(&mut one);
        assert_eq!(one.get(0, 0), 42);
    }

    #[test]
    fn wrapping_integers_agree_between_algorithms() {
        // Overflow exercises the wrapping group structure: both algorithms
        // must still compute the same function.
        let a = Matrix::from_fn(6, 6, |i, j| u8::MAX - (i * j) as u8);
        let mut x = a.clone();
        let mut y = a.clone();
        sat_2r2w_cpu(&mut x);
        sat_4r1w_cpu(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn float_inputs() {
        let a = Matrix::from_fn(5, 5, |i, j| (i + j) as f64 * 0.5);
        let s = sat_reference(&a);
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.get(4, 4), {
            // Σ (i+j)/2 over 5×5 = (Σi·5 + Σj·5)/2 = (50 + 50)/2
            50.0
        });
    }
}
