//! # sat-core — summed area tables on the asynchronous Hierarchical Memory Machine
//!
//! A Rust reproduction of *"Parallel Algorithms for the Summed Area Table on
//! the Asynchronous Hierarchical Memory Machine, with GPU implementations"*
//! (Kasagi, Nakano, Ito — ICPP 2014).
//!
//! The **summed area table** (SAT, Crow 1984) of a matrix `A` is the matrix
//! `S` with `S(i,j) = Σ A(u,v)` over `u ≤ i, v ≤ j`; once built, any
//! rectangle sum of `A` costs four lookups ([`SumTable`]). This crate
//! implements every SAT algorithm the paper analyses, as kernels for the
//! [`gpu_exec`] virtual GPU (a faithful executor of the paper's
//! *asynchronous HMM* machine model):
//!
//! | algorithm | global traffic per element | barriers | module |
//! |---|---|---|---|
//! | [`par::sat_2r2w`] | 2R + 2W, half stride | 1 | [`par::two_r2w`] |
//! | [`par::sat_4r4w`] | 4R + 4W, coalesced | 3 | [`par::four_r4w`] |
//! | [`par::sat_4r1w`] | 4R + 1W, stride | 2n−2 | [`par::four_r1w`] |
//! | [`par::sat_2r1w`] | 2R + 1W, coalesced | 2k+2 | [`par::two_r1w`] |
//! | [`par::sat_1r1w`] | **1R + 1W**, coalesced (optimal) | 2n/w−2 | [`par::one_r1w`] |
//! | [`par::sat_hybrid`] | (1+r²)R + 1W | mixed | [`par::hybrid`] |
//!
//! plus the sequential CPU baselines ([`seq`]), the coalesced block
//! transpose via the diagonal arrangement ([`transpose`]), rectangle-sum
//! queries ([`rect`]), and the worked-example fixtures of the paper's
//! Figure 3 ([`fixtures`]).
//!
//! ## Quick start
//!
//! ```
//! use gpu_exec::{Device, DeviceOptions};
//! use hmm_model::{cost::SatAlgorithm, MachineConfig};
//! use sat_core::{compute_sat, Matrix, Rect, SumTable};
//!
//! let dev = Device::new(DeviceOptions::new(MachineConfig::with_width(4)));
//! // Any shape works; inputs are zero-padded to block multiples internally.
//! let image = Matrix::from_fn(30, 22, |i, j| (i + j) as i64);
//! let sat = compute_sat(&dev, SatAlgorithm::OneR1W, &image);
//! let table = SumTable::from_sat(sat);
//! assert_eq!(
//!     table.sum(Rect::new(0, 0, 29, 21)),
//!     (0..30).flat_map(|i| (0..22).map(move |j| (i + j) as i64)).sum::<i64>(),
//! );
//! ```

#![warn(missing_docs)]

pub mod element;
pub mod fixtures;
pub mod matrix;
pub mod par;
pub mod rect;
pub mod scan;
pub mod seq;
pub mod transpose;

pub use element::SatElement;
pub use matrix::Matrix;
pub use rect::{Rect, SumTable};

use gpu_exec::{BufferPool, Device, GlobalBuffer};
use hmm_model::cost::SatAlgorithm;

/// Ratio used for [`SatAlgorithm::HybridR1W`] when going through
/// [`compute_sat`]: the cost model's optimum for the padded size.
fn default_hybrid_ratio(dev: &Device, n: usize) -> f64 {
    hmm_model::cost::GlobalCost::new(*dev.config()).optimal_r(n)
}

/// Compute the SAT of an arbitrary-shaped matrix with the chosen algorithm.
///
/// The input is zero-padded to a square multiple of the device width (the
/// paper's algorithms assume that shape; padding does not disturb the SAT of
/// the original region), computed on the device, and cropped back.
/// [`SatAlgorithm::HybridR1W`] uses the cost model's optimal ratio; use
/// [`compute_sat_hybrid`] to pick `r` yourself.
pub fn compute_sat<T: SatElement>(
    dev: &Device,
    algorithm: SatAlgorithm,
    a: &Matrix<T>,
) -> Matrix<T> {
    let r = match algorithm {
        SatAlgorithm::HybridR1W => {
            let (rows, cols) = padded_dims(dev, a);
            default_hybrid_ratio(dev, rows.max(cols))
        }
        _ => 0.0,
    };
    compute_sat_inner(dev, algorithm, a, r)
}

/// [`compute_sat`] with an explicit hybrid ratio `r ∈ [0, 1]`.
pub fn compute_sat_hybrid<T: SatElement>(dev: &Device, a: &Matrix<T>, r: f64) -> Matrix<T> {
    compute_sat_inner(dev, SatAlgorithm::HybridR1W, a, r)
}

/// Compute the SATs of a batch of same-shaped matrices with the block
/// wavefront fused across the batch ([`par::sat_1r1w_batch`]).
///
/// Every matrix must have the same dimensions. Like [`compute_sat`], inputs
/// are zero-padded to square-block multiples of the device width and the
/// results cropped back. The whole batch costs `2m − 1` kernel launches
/// (`m = padded_rows / w` blocks per side) — the same as a *single*
/// [`SatAlgorithm::OneR1W`] run — instead of `B × (2m − 1)`, which is what
/// makes it the building block for batched serving (`sat-service`).
/// Per-element arithmetic is identical to the unbatched 1R1W kernel, so
/// each result is bit-equal to `compute_sat(dev, SatAlgorithm::OneR1W, a)`.
///
/// # Panics
/// Panics if the matrices do not all share one shape.
pub fn compute_sat_batch<T: SatElement>(dev: &Device, images: &[Matrix<T>]) -> Vec<Matrix<T>> {
    let Some(first) = images.first() else {
        return Vec::new();
    };
    let (rows, cols) = (first.rows(), first.cols());
    assert!(
        images.iter().all(|a| a.rows() == rows && a.cols() == cols),
        "compute_sat_batch requires same-shaped matrices"
    );
    if rows == 0 || cols == 0 {
        return images.to_vec();
    }
    let (prows, pcols) = padded_dims(dev, first);
    let ins: Vec<GlobalBuffer<T>> = images
        .iter()
        .map(|a| GlobalBuffer::from_vec(a.zero_padded_to(prows, pcols).into_vec()))
        .collect();
    let outs: Vec<GlobalBuffer<T>> = images
        .iter()
        .map(|_| GlobalBuffer::filled(T::ZERO, prows * pcols))
        .collect();
    par::sat_1r1w_batch(
        dev,
        &ins.iter().collect::<Vec<_>>(),
        &outs.iter().collect::<Vec<_>>(),
        prows,
        pcols,
    );
    outs.into_iter()
        .map(|s| Matrix::from_vec(prows, pcols, s.into_vec()).cropped(rows, cols))
        .collect()
}

/// [`compute_sat_batch`] drawing its device buffers from a recycling
/// [`BufferPool`] instead of allocating per call — the steady-state path of
/// a serving layer.
///
/// Fault hygiene is per *buffer*, not per batch: every write made under a
/// failed launch sets the buffer's poison flag, and [`BufferPool::recycle`]
/// scrubs poisoned buffers before they re-enter the free list. A buffer
/// that merely lived through a fault-epoch bump without being written by
/// the failing launch — the input images here, or any buffer held across a
/// lost launch that never ran a block — recycles clean, so a retry can
/// never observe partial writes yet untouched buffers aren't re-zeroed for
/// nothing.
///
/// # Panics
/// Panics if the matrices do not all share one shape.
pub fn compute_sat_batch_with<T: SatElement>(
    dev: &Device,
    pool: &BufferPool<T>,
    images: &[Matrix<T>],
) -> Vec<Matrix<T>> {
    let Some(first) = images.first() else {
        return Vec::new();
    };
    let (rows, cols) = (first.rows(), first.cols());
    assert!(
        images.iter().all(|a| a.rows() == rows && a.cols() == cols),
        "compute_sat_batch_with requires same-shaped matrices"
    );
    if rows == 0 || cols == 0 {
        return images.to_vec();
    }
    let (prows, pcols) = padded_dims(dev, first);
    let ins: Vec<GlobalBuffer<T>> = images
        .iter()
        .map(|a| {
            // Every word is overwritten from the padded image, so an
            // unspecified-contents checkout is safe here.
            let mut buf = pool.checkout_uninit(prows * pcols);
            buf.as_mut_slice()
                .copy_from_slice(a.zero_padded_to(prows, pcols).as_slice());
            buf
        })
        .collect();
    let outs: Vec<GlobalBuffer<T>> = images
        .iter()
        .map(|_| pool.checkout_zeroed(prows * pcols))
        .collect();
    par::sat_1r1w_batch(
        dev,
        &ins.iter().collect::<Vec<_>>(),
        &outs.iter().collect::<Vec<_>>(),
        prows,
        pcols,
    );
    let mut outs = outs;
    let results: Vec<Matrix<T>> = outs
        .iter_mut()
        .map(|s| Matrix::from_vec(prows, pcols, s.as_slice().to_vec()).cropped(rows, cols))
        .collect();
    for buf in ins.into_iter().chain(outs) {
        // `clean` from the caller's view — the per-buffer poison flag
        // forces a scrub for exactly the buffers a failed launch wrote.
        pool.recycle(buf, true);
    }
    results
}

fn padded_dims<T: SatElement>(dev: &Device, a: &Matrix<T>) -> (usize, usize) {
    let w = dev.width();
    (
        a.rows().max(1).next_multiple_of(w),
        a.cols().max(1).next_multiple_of(w),
    )
}

fn compute_sat_inner<T: SatElement>(
    dev: &Device,
    algorithm: SatAlgorithm,
    a: &Matrix<T>,
    r: f64,
) -> Matrix<T> {
    if a.rows() == 0 || a.cols() == 0 {
        return a.clone();
    }
    let (rows, cols) = padded_dims(dev, a);
    let padded = a.zero_padded_to(rows, cols);
    let out = match algorithm {
        SatAlgorithm::TwoR2W => {
            let buf = GlobalBuffer::from_vec(padded.into_vec());
            par::sat_2r2w(dev, &buf, rows, cols);
            buf.into_vec()
        }
        SatAlgorithm::FourR4W => {
            let buf = GlobalBuffer::from_vec(padded.into_vec());
            let tmp = GlobalBuffer::filled(T::ZERO, rows * cols);
            par::sat_4r4w(dev, &buf, &tmp, rows, cols);
            buf.into_vec()
        }
        SatAlgorithm::FourR1W => {
            let buf = GlobalBuffer::from_vec(padded.into_vec());
            par::sat_4r1w(dev, &buf, rows, cols);
            buf.into_vec()
        }
        SatAlgorithm::TwoR1W => {
            let buf = GlobalBuffer::from_vec(padded.into_vec());
            let s = GlobalBuffer::filled(T::ZERO, rows * cols);
            par::sat_2r1w(dev, &buf, &s, rows, cols);
            s.into_vec()
        }
        SatAlgorithm::OneR1W => {
            let buf = GlobalBuffer::from_vec(padded.into_vec());
            let s = GlobalBuffer::filled(T::ZERO, rows * cols);
            par::sat_1r1w(dev, &buf, &s, rows, cols);
            s.into_vec()
        }
        SatAlgorithm::HybridR1W => {
            let buf = GlobalBuffer::from_vec(padded.into_vec());
            let s = GlobalBuffer::filled(T::ZERO, rows * cols);
            par::sat_hybrid(dev, &buf, &s, rows, cols, r);
            s.into_vec()
        }
    };
    Matrix::from_vec(rows, cols, out).cropped(a.rows(), a.cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::DeviceOptions;
    use hmm_model::MachineConfig;

    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn all_algorithms_agree_on_padded_shapes() {
        let dev = dev(4);
        for (rows, cols) in [(1, 1), (5, 3), (9, 9), (17, 20), (32, 32)] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 3 + j * 7) % 13) as i64 - 6);
            let want = sat_reference(&a);
            for alg in SatAlgorithm::ALL {
                let got = compute_sat(&dev, alg, &a);
                assert_eq!(got, want, "{alg:?} {rows}x{cols}");
            }
        }
    }

    #[test]
    fn hybrid_with_explicit_ratio() {
        let dev = dev(4);
        let a = Matrix::from_fn(20, 20, |i, j| (i * j) as i64 % 9);
        let want = sat_reference(&a);
        for r in [0.0, 0.4, 1.0] {
            assert_eq!(compute_sat_hybrid(&dev, &a, r), want, "r={r}");
        }
    }

    #[test]
    fn batch_matches_single_image_results() {
        let dev = dev(4);
        for (rows, cols) in [(1usize, 1usize), (7, 5), (16, 16), (13, 22)] {
            let imgs: Vec<Matrix<i64>> = (0..6)
                .map(|k| Matrix::from_fn(rows, cols, |i, j| ((i * 5 + j * 11 + k) % 17) as i64 - 8))
                .collect();
            let sats = compute_sat_batch(&dev, &imgs);
            assert_eq!(sats.len(), imgs.len());
            for (a, s) in imgs.iter().zip(&sats) {
                assert_eq!(s, &sat_reference(a), "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn batch_is_bit_equal_to_unbatched_floats() {
        let dev = dev(4);
        let imgs: Vec<Matrix<f64>> = (0..4)
            .map(|k| Matrix::from_fn(9, 14, |i, j| ((i * 31 + j * 7 + k) % 97) as f64 * 0.1))
            .collect();
        let sats = compute_sat_batch(&dev, &imgs);
        for (a, s) in imgs.iter().zip(&sats) {
            let single = compute_sat(&dev, SatAlgorithm::OneR1W, a);
            assert_eq!(s.as_slice(), single.as_slice(), "bit-equal to 1R1W");
        }
    }

    #[test]
    fn batch_launch_count_is_batch_independent() {
        let dev = dev(4);
        let n = 16usize;
        let m = n / 4;
        for batch in [1usize, 8] {
            let imgs: Vec<Matrix<i64>> = (0..batch)
                .map(|_| Matrix::from_fn(n, n, |i, j| (i + j) as i64))
                .collect();
            dev.reset_stats();
            compute_sat_batch(&dev, &imgs);
            assert_eq!(dev.launches() as usize, 2 * m - 1, "batch={batch}");
        }
    }

    #[test]
    fn batch_transactions_are_width_times_exact_closed_form() {
        // The fused kernel widens each diagonal launch B× without changing
        // per-matrix arithmetic, so the global transaction counts of a
        // batched run on block-aligned squares are exactly B× the paper's
        // Table-I closed forms. sat-service's resilience layer relies on
        // this equality to detect silently skipped blocks.
        let w = 4usize;
        let dev = dev(w);
        let exact = hmm_model::cost::GlobalCost::new(*dev.config())
            .exact_counts(SatAlgorithm::OneR1W, 16)
            .unwrap();
        for batch in [1usize, 3, 5] {
            let imgs: Vec<Matrix<i64>> = (0..batch)
                .map(|k| Matrix::from_fn(16, 16, |i, j| (i * 2 + j + k) as i64))
                .collect();
            dev.reset_stats();
            compute_sat_batch(&dev, &imgs);
            let s = dev.stats();
            let b = batch as u64;
            assert_eq!(s.coalesced_reads, b * exact.coalesced_reads, "B={batch}");
            assert_eq!(s.coalesced_writes, b * exact.coalesced_writes, "B={batch}");
            assert_eq!(s.stride_reads, b * exact.stride_reads, "B={batch}");
            assert_eq!(s.stride_writes, b * exact.stride_writes, "B={batch}");
        }
    }

    #[test]
    fn pooled_batch_matches_and_reuses_buffers() {
        let dev = dev(4);
        let pool: BufferPool<f64> = BufferPool::new();
        let imgs: Vec<Matrix<f64>> = (0..3)
            .map(|k| Matrix::from_fn(9, 14, |i, j| ((i * 31 + j * 7 + k) % 97) as f64 * 0.1))
            .collect();
        let plain = compute_sat_batch(&dev, &imgs);
        for round in 0..3 {
            let pooled = compute_sat_batch_with(&dev, &pool, &imgs);
            for (a, b) in plain.iter().zip(&pooled) {
                assert_eq!(a.as_slice(), b.as_slice(), "round {round}");
            }
        }
        let (allocated, reused, scrubbed) = pool.stats();
        assert_eq!(
            allocated, 6,
            "only the first round allocates (3 in + 3 out)"
        );
        assert_eq!(scrubbed, 0, "no faults, no scrubs");
        assert_eq!(reused, 12, "rounds 2 and 3 reuse round 1's buffers");
    }

    #[test]
    fn pooled_batch_stays_clean_across_lost_launches() {
        // A fault plan that loses every launch: no block ever runs, so no
        // buffer is written by a failed launch — nothing is poisoned and
        // nothing needs scrubbing, even though the fault epoch moved. (The
        // old per-batch epoch compare would have scrubbed both buffers.)
        let faulty = Device::new(
            DeviceOptions::new(MachineConfig::with_width(4))
                .workers(0)
                .fault_plan(
                    gpu_exec::FaultPlan::new(3).loss(gpu_exec::LossWindow::Launches {
                        start: 0,
                        count: u64::MAX,
                    }),
                ),
        );
        let pool: BufferPool<f64> = BufferPool::new();
        let imgs = vec![Matrix::from_fn(8, 8, |i, j| (i + j) as f64)];
        let _ = compute_sat_batch_with(&faulty, &pool, &imgs);
        assert!(faulty.fault_epoch() > 0, "launches were lost");
        let (_, _, scrubbed) = pool.stats();
        assert_eq!(scrubbed, 0, "lost launches wrote nothing — no scrub");
    }

    #[test]
    fn pooled_batch_scrubs_only_buffers_a_failed_launch_wrote() {
        // Aborted launches skip about half their blocks; the surviving
        // blocks still write the *output* buffer, poisoning it. The input
        // buffers are only read, so they recycle clean.
        let faulty = Device::new(
            DeviceOptions::new(MachineConfig::with_width(4))
                .workers(0)
                .fault_plan(gpu_exec::FaultPlan::new(3).launch_abort_p(1.0)),
        );
        let pool: BufferPool<f64> = BufferPool::new();
        let imgs = vec![Matrix::from_fn(8, 8, |i, j| (i + j) as f64)];
        let _ = compute_sat_batch_with(&faulty, &pool, &imgs);
        assert!(faulty.fault_epoch() > 0, "launches were aborted");
        let (_, _, scrubbed) = pool.stats();
        assert_eq!(
            scrubbed, 1,
            "exactly the poisoned output buffer is scrubbed"
        );
        // The next checkout must never observe the aborted attempt's
        // partial writes.
        let mut back = pool.checkout_uninit(8 * 8);
        assert!(back.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_batch_and_empty_matrices() {
        let dev = dev(4);
        assert!(compute_sat_batch::<i64>(&dev, &[]).is_empty());
        let empty: Vec<Matrix<i64>> = vec![Matrix::zeros(0, 0); 2];
        let sats = compute_sat_batch(&dev, &empty);
        assert_eq!(sats.len(), 2);
        assert_eq!(sats[0].rows(), 0);
    }

    #[test]
    #[should_panic(expected = "same-shaped")]
    fn batch_rejects_mixed_shapes() {
        let dev = dev(4);
        let a: Matrix<i64> = Matrix::zeros(4, 4);
        let b: Matrix<i64> = Matrix::zeros(4, 5);
        compute_sat_batch(&dev, &[a, b]);
    }

    #[test]
    fn empty_matrix_passthrough() {
        let dev = dev(4);
        let a: Matrix<i64> = Matrix::zeros(0, 0);
        let got = compute_sat(&dev, SatAlgorithm::OneR1W, &a);
        assert_eq!(got.rows(), 0);
    }

    #[test]
    fn doc_example() {
        let dev = dev(4);
        let image = Matrix::from_fn(30, 22, |i, j| (i + j) as i64);
        let sat = compute_sat(&dev, SatAlgorithm::OneR1W, &image);
        let table = SumTable::from_sat(sat);
        let total: i64 = (0..30)
            .flat_map(|i| (0..22).map(move |j| (i + j) as i64))
            .sum();
        assert_eq!(table.sum(Rect::new(0, 0, 29, 21)), total);
    }

    #[test]
    fn floats_agree_within_tolerance() {
        let dev = dev(4);
        let a = Matrix::from_fn(16, 16, |i, j| ((i * 7 + j) % 5) as f64 * 0.25);
        let want = sat_reference(&a);
        for alg in SatAlgorithm::ALL {
            let got = compute_sat(&dev, alg, &a);
            assert!(got.max_abs_diff(&want) < 1e-9, "{alg:?}");
        }
    }
}
