//! Rectangle-sum queries over a summed area table.
//!
//! This is why SATs exist (Crow 1984): once `S` is computed, the sum of any
//! axis-aligned rectangle of the source matrix is four lookups:
//!
//! ```text
//! Σ a[u][v] for r0 ≤ u ≤ r1, c0 ≤ v ≤ c1
//!   = S(r1,c1) − S(r0−1,c1) − S(r1,c0−1) + S(r0−1,c0−1)
//! ```

use crate::element::SatElement;
use crate::matrix::Matrix;

/// An inclusive rectangle `[r0..=r1] × [c0..=c1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// First row (inclusive).
    pub r0: usize,
    /// First column (inclusive).
    pub c0: usize,
    /// Last row (inclusive).
    pub r1: usize,
    /// Last column (inclusive).
    pub c1: usize,
}

impl Rect {
    /// A rectangle from inclusive corners.
    ///
    /// # Panics
    /// Panics if the corners are not ordered.
    pub fn new(r0: usize, c0: usize, r1: usize, c1: usize) -> Self {
        assert!(r0 <= r1 && c0 <= c1, "rectangle corners must be ordered");
        Rect { r0, c0, r1, c1 }
    }

    /// Number of cells covered.
    pub fn area(&self) -> usize {
        (self.r1 - self.r0 + 1) * (self.c1 - self.c0 + 1)
    }
}

/// A summed area table ready to answer rectangle queries in `O(1)`.
#[derive(Debug, Clone)]
pub struct SumTable<T> {
    sat: Matrix<T>,
}

impl<T: SatElement> SumTable<T> {
    /// Wrap an already-computed SAT.
    pub fn from_sat(sat: Matrix<T>) -> Self {
        SumTable { sat }
    }

    /// Compute the SAT of `a` sequentially and wrap it.
    pub fn build(a: &Matrix<T>) -> Self {
        SumTable {
            sat: crate::seq::sat_reference(a),
        }
    }

    /// The underlying SAT matrix.
    pub fn sat(&self) -> &Matrix<T> {
        &self.sat
    }

    #[inline]
    fn at(&self, i: isize, j: isize) -> T {
        if i < 0 || j < 0 {
            T::ZERO
        } else {
            self.sat.get(i as usize, j as usize)
        }
    }

    /// Sum of the source matrix over `rect` — four lookups.
    ///
    /// # Panics
    /// Panics (in debug builds, via matrix bounds checks) if the rectangle
    /// exceeds the table.
    pub fn sum(&self, rect: Rect) -> T {
        let (r0, c0, r1, c1) = (
            rect.r0 as isize,
            rect.c0 as isize,
            rect.r1 as isize,
            rect.c1 as isize,
        );
        self.at(r1, c1)
            .sub(self.at(r0 - 1, c1))
            .sub(self.at(r1, c0 - 1))
            .add(self.at(r0 - 1, c0 - 1))
    }

    /// Mean over `rect` for floating point tables.
    pub fn mean(&self, rect: Rect) -> f64
    where
        T: Into<f64>,
    {
        let s: f64 = self.sum(rect).into();
        s / rect.area() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig3_input;

    fn brute<T: SatElement>(a: &Matrix<T>, r: Rect) -> T {
        let mut acc = T::ZERO;
        for i in r.r0..=r.r1 {
            for j in r.c0..=r.c1 {
                acc = acc.add(a.get(i, j));
            }
        }
        acc
    }

    #[test]
    fn all_rectangles_of_fig3() {
        let a = fig3_input();
        let t = SumTable::build(&a);
        for r0 in 0..9 {
            for c0 in 0..9 {
                for r1 in r0..9 {
                    for c1 in c0..9 {
                        let r = Rect::new(r0, c0, r1, c1);
                        assert_eq!(t.sum(r), brute(&a, r), "{r:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn full_rectangle_is_total() {
        let a = fig3_input();
        let t = SumTable::build(&a);
        assert_eq!(t.sum(Rect::new(0, 0, 8, 8)), 71);
    }

    #[test]
    fn single_cell() {
        let a = fig3_input();
        let t = SumTable::build(&a);
        assert_eq!(t.sum(Rect::new(4, 4, 4, 4)), 3);
    }

    #[test]
    fn mean_of_floats() {
        let a = Matrix::from_fn(4, 4, |_, _| 2.0f64);
        let t = SumTable::build(&a);
        let m = t.mean(Rect::new(1, 1, 2, 3));
        assert_eq!(m, 2.0);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_rect_rejected() {
        let _ = Rect::new(2, 0, 1, 5);
    }

    #[test]
    fn area() {
        assert_eq!(Rect::new(1, 2, 3, 5).area(), 12);
    }
}
