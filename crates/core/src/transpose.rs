//! Coalesced matrix transpose via the diagonal arrangement (Figure 7).
//!
//! Transposing a row-major matrix naively makes one side of the copy a
//! stride access. The HMM transpose of Kasagi et al. (ICPP 2013) stages each
//! `w × w` block through a shared-memory tile in **diagonal arrangement**:
//! the block is read row-wise from global memory (coalesced) and written
//! row-wise into the tile; the tile is then read *column-wise* — conflict-free
//! thanks to Lemma 1 — and written row-wise (coalesced) into the transposed
//! block position. Every global access is coalesced and no barrier is
//! needed: `2·rows·cols` operations, one launch.

use gpu_exec::{Device, GlobalBuffer, SharedTile, TileLayout};

use crate::element::SatElement;
use crate::par::common::Grid;

/// Out-of-place transpose: `dst = srcᵀ` for the `rows × cols` matrix in
/// `src` (`dst` is `cols × rows`). One launch of `(rows/w)·(cols/w)` blocks;
/// all global accesses coalesced.
pub fn transpose<T: SatElement>(
    dev: &Device,
    src: &GlobalBuffer<T>,
    dst: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    transpose_with_layout(dev, src, dst, rows, cols, TileLayout::Diagonal);
}

/// [`transpose`] with an explicit tile layout — [`TileLayout::RowMajor`]
/// exists for the bank-conflict ablation benchmark.
pub fn transpose_with_layout<T: SatElement>(
    dev: &Device,
    src: &GlobalBuffer<T>,
    dst: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    layout: TileLayout,
) {
    let grid = Grid::new(rows, cols, dev.width());
    assert!(
        src.len() >= rows * cols && dst.len() >= rows * cols,
        "buffers too small"
    );
    let w = grid.w;
    dev.launch(grid.blocks(), |ctx| {
        let gsrc = ctx.view(src);
        let gdst = ctx.view(dst);
        let (bi, bj) = grid.block_of(ctx.block_id());
        let mut tile: SharedTile<T> = ctx.shared_tile(layout);
        let (r0, c0) = grid.origin(bi, bj);
        let mut buf = vec![T::ZERO; w];
        // Read block (bi, bj) row-wise into the tile.
        for i in 0..w {
            gsrc.read_contig(grid.addr(r0 + i, c0), &mut buf, &mut ctx.rec);
            tile.write_row(i, &buf, &mut ctx.rec);
        }
        // Column i of the tile is row i of the transposed block; write it to
        // block (bj, bi) of dst (pitch `rows`), row-wise (coalesced).
        for i in 0..w {
            tile.read_col(i, &mut buf, &mut ctx.rec);
            gdst.write_contig((c0 + i) * rows + r0, &buf, &mut ctx.rec);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::matrix::Matrix;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn fig7_small_block() {
        // Figure 7 transposes one 4 × 4 block through the diagonal
        // arrangement.
        let dev = dev(4);
        let a = Matrix::from_fn(4, 4, |i, j| (4 * i + j) as i64);
        let src = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let dst = GlobalBuffer::filled(0i64, 16);
        transpose(&dev, &src, &dst, 4, 4);
        assert_eq!(dst.into_vec(), a.transposed().into_vec());
    }

    #[test]
    fn transpose_matches_host_and_is_involutive() {
        for (w, rows, cols) in [
            (4usize, 12usize, 12usize),
            (8, 32, 32),
            (3, 9, 9),
            (4, 8, 20),
            (4, 24, 4),
        ] {
            let dev = dev(w);
            let a = Matrix::from_fn(rows, cols, |i, j| (i * 131 + j * 7) as i64 % 97);
            let src = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let tmp = GlobalBuffer::filled(0i64, rows * cols);
            let back = GlobalBuffer::filled(0i64, rows * cols);
            transpose(&dev, &src, &tmp, rows, cols);
            {
                let mut t = tmp.into_vec();
                assert_eq!(t, a.transposed().into_vec(), "w={w} {rows}x{cols}");
                let tmp2 = GlobalBuffer::from_vec(std::mem::take(&mut t));
                transpose(&dev, &tmp2, &back, cols, rows);
            }
            assert_eq!(
                back.into_vec(),
                a.into_vec(),
                "double transpose w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn every_global_access_is_coalesced() {
        let (w, n) = (8usize, 64usize);
        let dev = dev(w);
        let src = GlobalBuffer::filled(1i64, n * n);
        let dst = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        transpose(&dev, &src, &dst, n, n);
        let s = dev.stats();
        assert_eq!(s.stride_reads + s.stride_writes, 0);
        assert_eq!(s.coalesced_reads, (n * n) as u64);
        assert_eq!(s.coalesced_writes, (n * n) as u64);
        assert_eq!(s.barrier_steps, 0); // single launch
    }

    #[test]
    fn diagonal_tile_avoids_bank_conflicts_row_major_does_not() {
        let (w, n) = (8usize, 32usize);
        let mut shared_stages = Vec::new();
        for layout in [TileLayout::Diagonal, TileLayout::RowMajor] {
            let dev = dev(w);
            let src = GlobalBuffer::filled(1i64, n * n);
            let dst = GlobalBuffer::filled(0i64, n * n);
            dev.reset_stats();
            transpose_with_layout(&dev, &src, &dst, n, n, layout);
            shared_stages.push(dev.stats().shared_stages);
            assert_eq!(dst.into_vec(), vec![1i64; n * n]);
        }
        // Diagonal: 2 warp accesses per row, 1 stage each. Row-major: the
        // column reads pay w stages each.
        let blocks = ((n / w) * (n / w)) as u64;
        assert_eq!(shared_stages[0], blocks * 2 * w as u64);
        assert_eq!(shared_stages[1], blocks * (w as u64 + w as u64 * w as u64));
    }
}
