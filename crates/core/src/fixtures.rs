//! Worked-example data from the paper (Figure 3).
//!
//! The paper develops every algorithm on one running example: a `9 × 9`
//! matrix (block width `w = 3` in Figures 8–11), its column-wise prefix sums,
//! and its summed area table. These fixtures are the golden values for the
//! crate's tests and examples.

use crate::matrix::Matrix;

/// The `9 × 9` input matrix of Figure 3.
pub fn fig3_input() -> Matrix<i64> {
    Matrix::from_vec(
        9,
        9,
        vec![
            0, 0, 0, 1, 1, 1, 0, 0, 0, //
            0, 0, 1, 1, 1, 1, 1, 0, 0, //
            0, 1, 1, 1, 2, 1, 1, 1, 0, //
            1, 1, 1, 2, 2, 2, 1, 1, 1, //
            1, 1, 2, 2, 3, 2, 2, 1, 1, //
            1, 1, 1, 2, 2, 2, 1, 1, 1, //
            0, 1, 1, 1, 2, 1, 1, 1, 0, //
            0, 0, 1, 1, 1, 1, 1, 0, 0, //
            0, 0, 0, 1, 1, 1, 0, 0, 0, //
        ],
    )
}

/// The column-wise prefix sums of [`fig3_input`] (the middle matrix of
/// Figure 3 — the state after the first pass of the 2R2W algorithm).
pub fn fig3_column_prefix() -> Matrix<i64> {
    Matrix::from_vec(
        9,
        9,
        vec![
            0, 0, 0, 1, 1, 1, 0, 0, 0, //
            0, 0, 1, 2, 2, 2, 1, 0, 0, //
            0, 1, 2, 3, 4, 3, 2, 1, 0, //
            1, 2, 3, 5, 6, 5, 3, 2, 1, //
            2, 3, 5, 7, 9, 7, 5, 3, 2, //
            3, 4, 6, 9, 11, 9, 6, 4, 3, //
            3, 5, 7, 10, 13, 10, 7, 5, 3, //
            3, 5, 8, 11, 14, 11, 8, 5, 3, //
            3, 5, 8, 12, 15, 12, 8, 5, 3, //
        ],
    )
}

/// The summed area table of [`fig3_input`] (the right matrix of Figure 3).
pub fn fig3_sat() -> Matrix<i64> {
    Matrix::from_vec(
        9,
        9,
        vec![
            0, 0, 0, 1, 2, 3, 3, 3, 3, //
            0, 0, 1, 3, 5, 7, 8, 8, 8, //
            0, 1, 3, 6, 10, 13, 15, 16, 16, //
            1, 3, 6, 11, 17, 22, 25, 27, 28, //
            2, 5, 10, 17, 26, 33, 38, 41, 43, //
            3, 7, 13, 22, 33, 42, 48, 52, 55, //
            3, 8, 15, 25, 38, 48, 55, 60, 63, //
            3, 8, 16, 27, 41, 52, 60, 65, 68, //
            3, 8, 16, 28, 43, 55, 63, 68, 71, //
        ],
    )
}

/// The block width used with the Figure 3 example throughout Figures 8–11.
pub const FIG_BLOCK_WIDTH: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shapes() {
        assert_eq!(fig3_input().rows(), 9);
        assert!(fig3_input().is_square());
        assert_eq!(fig3_sat().rows(), 9);
        assert_eq!(fig3_column_prefix().cols(), 9);
    }

    #[test]
    fn column_prefix_is_prefix_of_input() {
        let a = fig3_input();
        let p = fig3_column_prefix();
        for j in 0..9 {
            let mut acc = 0;
            for i in 0..9 {
                acc += a.get(i, j);
                assert_eq!(p.get(i, j), acc, "({i},{j})");
            }
        }
    }

    #[test]
    fn sat_is_row_prefix_of_column_prefix() {
        let p = fig3_column_prefix();
        let s = fig3_sat();
        for i in 0..9 {
            let mut acc = 0;
            for j in 0..9 {
                acc += p.get(i, j);
                assert_eq!(s.get(i, j), acc, "({i},{j})");
            }
        }
    }

    #[test]
    fn total_sum_is_71() {
        assert_eq!(fig3_sat().get(8, 8), 71);
    }
}
