//! The **2R1W** SAT algorithm (§V) — the previous state of the art
//! (Nehab, Maximo, Lima & Hoppe 2011), reformulated block-wise.
//!
//! The `rows × cols` matrix is partitioned into `w × w` blocks (`mr × mc`
//! of them). Three phases, separated by barriers:
//!
//! 1. **Block sums** — every block is read once; its per-column sums, its
//!    per-row sums and its total are written to three small matrices `R`
//!    (`mr × cols`), `Cᵗ` (`mc × rows`, stored transposed so phase 2 stays
//!    coalesced) and `Q` (`mr × mc`).
//! 2. **Fringe prefixes** — column-wise prefix sums over `R` and `Cᵗ`, and
//!    the SAT of `Q` (computed in shared memory when `Q` fits a block,
//!    *recursively by 2R1W itself* otherwise — the paper's recursion depth
//!    `k`).
//! 3. **Fix-up** (Figures 8, 9) — every block is read again; the prefix row
//!    `R[bi−1]` is added to its top row, `Cᵗ[bj−1]` to its leftmost column,
//!    and `SAT(Q)[bi−1][bj−1]` to its top-left corner; the SAT of the
//!    augmented block, computed in shared memory with the diagonal
//!    arrangement, *is* the global SAT of the block and is written out.
//!
//! Per element: 2 coalesced reads + 1 coalesced write (+ `O(1/w)` fringe
//! traffic); `2k + 2` barriers (Lemma 4).

use gpu_exec::{Device, GlobalBuffer, SharedTile};

use crate::element::SatElement;
use crate::par::common::{default_tile, load_block, store_block, tile_sat, Grid};

/// **2R1W**: compute into `s` the SAT of the `rows × cols` matrix in `a`.
pub fn sat_2r1w<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    assert!(
        a.len() >= rows * cols && s.len() >= rows * cols,
        "buffers too small"
    );
    let (w, mr, mc) = (grid.w, grid.mr, grid.mc);
    if mr == 1 && mc == 1 {
        single_block_sat(dev, a, s, grid);
        return;
    }
    let rp = GlobalBuffer::filled(T::ZERO, mr * cols);
    let ctp = GlobalBuffer::filled(T::ZERO, mc * rows);
    let q = GlobalBuffer::filled(T::ZERO, mr * mc);
    step1_block_sums(dev, a, &rp, &ctp, &q, grid);
    if mr <= w && mc <= w {
        step2_fused_with_block_qsat(dev, &rp, &ctp, &q, grid);
        step3_fixup(dev, a, s, &rp, &ctp, &q, grid, mc);
    } else {
        // Recursion: zero-pad Q to multiples of w and call 2R1W on it.
        // Padding does not change SAT values inside the original region.
        let mrp = mr.next_multiple_of(w);
        let mcp = mc.next_multiple_of(w);
        let qa = GlobalBuffer::filled(T::ZERO, mrp * mcp);
        step2_prefixes_and_pad(dev, &rp, &ctp, &q, &qa, grid, mcp);
        let qs = GlobalBuffer::filled(T::ZERO, mrp * mcp);
        sat_2r1w(dev, &qa, &qs, mrp, mcp);
        step3_fixup(dev, a, s, &rp, &ctp, &qs, grid, mcp);
    }
}

/// SAT of a single `w × w` matrix: load → shared SAT → store. One launch.
fn single_block_sat<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    grid: Grid,
) {
    dev.launch(1, |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let mut tile: SharedTile<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, 0, 0, &mut tile);
        tile_sat(ctx, &mut tile);
        store_block(ctx, &gs, grid, 0, 0, &tile);
    });
}

/// Phase 1: per block, write column sums to `R[bi]`, row sums to `Cᵗ[bj]`
/// and the block total to `Q[bi][bj]`.
fn step1_block_sums<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    rp: &GlobalBuffer<T>,
    ctp: &GlobalBuffer<T>,
    q: &GlobalBuffer<T>,
    grid: Grid,
) {
    let (w, mc) = (grid.w, grid.mc);
    dev.launch(grid.blocks(), |ctx| {
        let ga = ctx.view(a);
        let gr = ctx.view(rp);
        let gc = ctx.view(ctp);
        let gq = ctx.view(q);
        let (bi, bj) = grid.block_of(ctx.block_id());
        let (r0, c0) = grid.origin(bi, bj);
        let mut col_sums = vec![T::ZERO; w];
        let mut row_sums = vec![T::ZERO; w];
        let mut row = vec![T::ZERO; w];
        let mut total = T::ZERO;
        for (i, slot) in row_sums.iter_mut().enumerate() {
            ga.read_contig(grid.addr(r0 + i, c0), &mut row, &mut ctx.rec);
            let mut rs = T::ZERO;
            for t in 0..w {
                col_sums[t] = col_sums[t].add(row[t]);
                rs = rs.add(row[t]);
            }
            *slot = rs;
            total = total.add(rs);
        }
        gr.write_contig(bi * grid.cols + c0, &col_sums, &mut ctx.rec);
        gc.write_contig(bj * grid.rows + r0, &row_sums, &mut ctx.rec);
        gq.write(bi * mc + bj, total, &mut ctx.rec);
    });
}

/// Inclusive column-wise prefix over a `levels × pitch` fringe matrix, one
/// task per `w`-column chunk (shared by phase-2 variants).
fn fringe_prefix_task<T: SatElement>(
    ctx: &mut gpu_exec::BlockCtx<'_>,
    buf: &GlobalBuffer<T>,
    pitch: usize,
    levels: usize,
    chunk: usize,
) {
    let w = ctx.width();
    let g = ctx.view(buf);
    let c0 = chunk * w;
    let mut acc = vec![T::ZERO; w];
    let mut row = vec![T::ZERO; w];
    for level in 0..levels {
        g.read_contig(level * pitch + c0, &mut row, &mut ctx.rec);
        for t in 0..w {
            acc[t] = acc[t].add(row[t]);
        }
        g.write_contig(level * pitch + c0, &acc, &mut ctx.rec);
    }
}

/// Phase 2 when `Q` fits one block (`mr, mc ≤ w`): a single fused launch
/// running the `R` prefix tasks, the `Cᵗ` prefix tasks and the
/// in-shared-memory SAT of `Q` (in place).
fn step2_fused_with_block_qsat<T: SatElement>(
    dev: &Device,
    rp: &GlobalBuffer<T>,
    ctp: &GlobalBuffer<T>,
    q: &GlobalBuffer<T>,
    grid: Grid,
) {
    let (mr, mc) = (grid.mr, grid.mc);
    dev.launch(mc + mr + 1, |ctx| {
        let id = ctx.block_id();
        if id < mc {
            fringe_prefix_task(ctx, rp, grid.cols, mr, id);
        } else if id < mc + mr {
            fringe_prefix_task(ctx, ctp, grid.rows, mc, id - mc);
        } else {
            // SAT of the mr × mc matrix Q inside one zero-padded tile.
            let gq = ctx.view(q);
            let mut tile: SharedTile<T> = default_tile(ctx);
            let mut row = vec![T::ZERO; mc];
            for i in 0..mr {
                gq.read_contig(i * mc, &mut row, &mut ctx.rec);
                for (j, &v) in row.iter().enumerate() {
                    tile.set(i, j, v);
                }
            }
            tile_sat(ctx, &mut tile);
            for i in 0..mr {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = tile.get(i, j);
                }
                gq.write_contig(i * mc, &row, &mut ctx.rec);
            }
        }
    });
}

/// Phase 2 when `Q` needs recursion (`max(mr, mc) > w`): prefix tasks for
/// `R` and `Cᵗ`, fused with the tasks that zero-pad `Q` into the
/// `mrp × mcp` buffer the recursive call consumes.
fn step2_prefixes_and_pad<T: SatElement>(
    dev: &Device,
    rp: &GlobalBuffer<T>,
    ctp: &GlobalBuffer<T>,
    q: &GlobalBuffer<T>,
    qa: &GlobalBuffer<T>,
    grid: Grid,
    mcp: usize,
) {
    let (mr, mc) = (grid.mr, grid.mc);
    dev.launch(mc + mr + mr, |ctx| {
        let id = ctx.block_id();
        if id < mc {
            fringe_prefix_task(ctx, rp, grid.cols, mr, id);
        } else if id < mc + mr {
            fringe_prefix_task(ctx, ctp, grid.rows, mc, id - mc);
        } else {
            // Copy row (id − mc − mr) of Q into the padded buffer.
            let bi = id - mc - mr;
            let gq = ctx.view(q);
            let gqa = ctx.view(qa);
            let mut row = vec![T::ZERO; mc];
            gq.read_contig(bi * mc, &mut row, &mut ctx.rec);
            gqa.write_contig(bi * mcp, &row, &mut ctx.rec);
        }
    });
}

/// Phase 3 (Figures 8 & 9): augment each block with its fringes and compute
/// its SAT in shared memory. `q_pitch` is the row pitch of the (possibly
/// padded) SAT-of-Q buffer.
#[allow(clippy::too_many_arguments)]
fn step3_fixup<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rp: &GlobalBuffer<T>,
    ctp: &GlobalBuffer<T>,
    qsat: &GlobalBuffer<T>,
    grid: Grid,
    q_pitch: usize,
) {
    let w = grid.w;
    dev.launch(grid.blocks(), |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let gr = ctx.view(rp);
        let gc = ctx.view(ctp);
        let gq = ctx.view(qsat);
        let (bi, bj) = grid.block_of(ctx.block_id());
        let (r0, c0) = grid.origin(bi, bj);
        let mut tile: SharedTile<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, bi, bj, &mut tile);
        let mut buf = vec![T::ZERO; w];
        let mut fringe = vec![T::ZERO; w];
        if bi > 0 {
            // Sum of everything above, per column: R's prefix row bi − 1.
            gr.read_contig((bi - 1) * grid.cols + c0, &mut fringe, &mut ctx.rec);
            tile.read_row(0, &mut buf, &mut ctx.rec);
            for t in 0..w {
                buf[t] = buf[t].add(fringe[t]);
            }
            tile.write_row(0, &buf, &mut ctx.rec);
        }
        if bj > 0 {
            // Sum of everything to the left, per row: Cᵗ's prefix row bj − 1.
            gc.read_contig((bj - 1) * grid.rows + r0, &mut fringe, &mut ctx.rec);
            tile.read_col(0, &mut buf, &mut ctx.rec);
            for t in 0..w {
                buf[t] = buf[t].add(fringe[t]);
            }
            tile.write_col(0, &buf, &mut ctx.rec);
        }
        if bi > 0 && bj > 0 {
            // Sum of all blocks above-left: SAT(Q)[bi−1][bj−1].
            let corner = gq.read((bi - 1) * q_pitch + (bj - 1), &mut ctx.rec);
            tile.set(0, 0, tile.get(0, 0).add(corner));
        }
        tile_sat(ctx, &mut tile);
        store_block(ctx, &gs, grid, bi, bj, &tile);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    fn run(devw: usize, a: &Matrix<i64>) -> Vec<i64> {
        let dev = dev(devw);
        let (rows, cols) = (a.rows(), a.cols());
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let out = GlobalBuffer::filled(0i64, rows * cols);
        sat_2r1w(&dev, &buf, &out, rows, cols);
        out.into_vec()
    }

    #[test]
    fn fig8_9_two_r1w_phases_on_fig3() {
        // Figures 8–9 run 2R1W with w = 3 on the Figure 3 matrix; the final
        // state must be the Figure 3 SAT, including the highlighted block
        // (rows 3–5, columns 6–8) whose fix-up Figure 9 details.
        let got = run(FIG_BLOCK_WIDTH, &fig3_input());
        assert_eq!(got, fig3_sat().into_vec());
        // Figure 9's block, read back explicitly.
        let sat = fig3_sat();
        for (i, row) in [[25, 27, 28], [38, 41, 43], [48, 52, 55]]
            .iter()
            .enumerate()
        {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(sat.get(3 + i, 6 + j), v);
                assert_eq!(got[(3 + i) * 9 + 6 + j], v);
            }
        }
    }

    #[test]
    fn fig8_intermediate_fringe_matrices() {
        // Step 1 of Figure 8 (w = 3): the column-sums matrix R, row-sums
        // matrix C and block-total matrix Q of the Figure 3 input.
        let a = fig3_input();
        let grid = Grid::square(9, 3);
        let dev = dev(3);
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let rp = GlobalBuffer::filled(0i64, 3 * 9);
        let ctp = GlobalBuffer::filled(0i64, 3 * 9);
        let q = GlobalBuffer::filled(0i64, 9);
        step1_block_sums(&dev, &ab, &rp, &ctp, &q, grid);
        // R[bi][c] = Σ of column c within block row bi.
        let r = rp.into_vec();
        for bi in 0..3 {
            for c in 0..9 {
                let want: i64 = (0..3).map(|i| a.get(bi * 3 + i, c)).sum();
                assert_eq!(r[bi * 9 + c], want, "R[{bi}][{c}]");
            }
        }
        // Cᵗ[bj][r] = Σ of row r within block column bj.
        let ct = ctp.into_vec();
        for bj in 0..3 {
            for row in 0..9 {
                let want: i64 = (0..3).map(|j| a.get(row, bj * 3 + j)).sum();
                assert_eq!(ct[bj * 9 + row], want, "Ct[{bj}][{row}]");
            }
        }
        // Q[bi][bj] = block total; e.g. the centre block of Figure 3 sums
        // the 3 × 3 region rows 3–5 × cols 3–5.
        let qv = q.into_vec();
        assert_eq!(qv[3 + 1], 19);
        for bi in 0..3 {
            for bj in 0..3 {
                let want: i64 = (0..3)
                    .flat_map(|i| (0..3).map(move |j| (i, j)))
                    .map(|(i, j)| a.get(bi * 3 + i, bj * 3 + j))
                    .sum();
                assert_eq!(qv[bi * 3 + bj], want, "Q[{bi}][{bj}]");
            }
        }
    }

    #[test]
    fn matches_reference_various_sizes() {
        for (w, n) in [(4, 4), (4, 8), (4, 16), (8, 64), (3, 27), (5, 35)] {
            let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as i64 - 11);
            assert_eq!(run(w, &a), sat_reference(&a).into_vec(), "w={w} n={n}");
        }
    }

    #[test]
    fn matches_reference_rectangles() {
        for (w, rows, cols) in [(4, 8, 24), (4, 24, 8), (4, 4, 32), (3, 9, 21), (4, 68, 12)] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 7 + j * 29) % 19) as i64 - 9);
            assert_eq!(
                run(w, &a),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn recursion_kicks_in_when_q_exceeds_one_block() {
        // w = 4, n = 68 → m = 17 > 4: Q is padded to 20 × 20 and solved by
        // a recursive 2R1W call.
        let (w, n) = (4usize, 68usize);
        let a = Matrix::from_fn(n, n, |i, j| ((i ^ j) % 7) as i64 - 3);
        assert_eq!(run(w, &a), sat_reference(&a).into_vec());
    }

    #[test]
    fn recursion_on_rectangles() {
        // Only one dimension exceeds a block: mr = 2, mc = 17 > 4.
        let (w, rows, cols) = (4usize, 8usize, 68usize);
        let a = Matrix::from_fn(rows, cols, |i, j| ((i * 3 + j) % 11) as i64 - 5);
        assert_eq!(run(w, &a), sat_reference(&a).into_vec());
    }

    #[test]
    fn barrier_steps_match_lemma4() {
        // Non-recursive (m ≤ w): 3 launches = 2 barriers = 2k+2 with k = 0.
        let (w, n) = (8usize, 64usize);
        let dev = dev(w);
        let a = GlobalBuffer::filled(1i64, n * n);
        let s = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_2r1w(&dev, &a, &s, n, n);
        assert_eq!(dev.stats().barrier_steps, 2);
    }

    #[test]
    fn traffic_is_2_reads_1_write_per_element_plus_fringe() {
        // Lemma 4's leading terms: 2 reads + 1 write per element plus
        // O(1/w) fringe traffic, all coalesced.
        let (w, n) = (16usize, 256usize);
        let dev = dev(w);
        let a = GlobalBuffer::filled(1i64, n * n);
        let s = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_2r1w(&dev, &a, &s, n, n);
        let st = dev.stats();
        let reads = st.reads_per_element(n);
        let writes = st.writes_per_element(n);
        assert!(
            (2.0..2.0 + 6.0 / w as f64).contains(&reads),
            "reads/elt = {reads}"
        );
        assert!(
            (1.0..1.0 + 6.0 / w as f64).contains(&writes),
            "writes/elt = {writes}"
        );
        // Everything is coalesced (single-word accesses count as one-group).
        assert_eq!(st.stride_ops(), 0);
    }

    #[test]
    fn single_block_input() {
        let w = 6;
        let a = Matrix::from_fn(w, w, |i, j| (i * w + j) as i64);
        assert_eq!(run(w, &a), sat_reference(&a).into_vec());
    }
}
