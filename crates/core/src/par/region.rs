//! 2R1W generalised to *staircase block regions* — the building block of the
//! hybrid `(1+r²)R1W` algorithm (§VII).
//!
//! The hybrid runs 2R1W on the top-left and bottom-right block triangles of
//! the matrix (Figure 12). The paper describes these phases by reference to
//! the full-matrix algorithm; the boundary conditions they need are spelled
//! out here:
//!
//! * a [`Region`] is a set of blocks delimited by block anti-diagonals; in
//!   every block row and block column its members are contiguous;
//! * for the *bottom-right* triangle the fringe prefixes cannot start from
//!   zero — they start from **base values read off the already-finished SAT
//!   region by pairwise subtraction** (the same trick 1R1W uses for its
//!   neighbour fringes);
//! * the block-corner offsets `ŝ(bi,bj) = S(bi·w−1, bj·w−1)` are obtained by
//!   a row scan of the column-fringe prefixes (`ŝ(bi,bj) = Σ_{c<bj·w}
//!   T̂(bi,c)`, telescoping the pairwise subtractions) instead of the
//!   full-matrix algorithm's recursion — recursing on a staircase region is
//!   not meaningful. This adds one launch and `O(n²/w)` coalesced traffic,
//!   within the paper's dropped lower-order terms.
//!
//! `Region::Full` reproduces plain 2R1W (tested against it), which is how
//! the machinery is validated independently of the hybrid. Everything works
//! on rectangular `mr × mc` block grids.

use gpu_exec::{BlockCtx, Device, GlobalBuffer, SharedTile};

use crate::element::SatElement;
use crate::par::common::{default_tile, load_block, store_block, tile_sat, Grid};

/// A staircase set of blocks, delimited by block anti-diagonals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Every block.
    Full,
    /// The top-left triangle: blocks with `bi + bj < diags`.
    UpperLeft {
        /// Number of leading block anti-diagonals included (≥ 1).
        diags: usize,
    },
    /// The bottom-right staircase: blocks with `bi + bj ≥ start`. All blocks
    /// with smaller `bi + bj` must already hold final SAT values.
    LowerRight {
        /// First block anti-diagonal included.
        start: usize,
    },
}

impl Region {
    /// Does the region contain block `(bi, bj)` of an `mr × mc` block grid?
    pub fn contains(&self, grid: &Grid, bi: usize, bj: usize) -> bool {
        debug_assert!(bi < grid.mr && bj < grid.mc);
        match *self {
            Region::Full => true,
            Region::UpperLeft { diags } => bi + bj < diags,
            Region::LowerRight { start } => bi + bj >= start,
        }
    }

    /// All member blocks, row-major.
    pub fn blocks(&self, grid: &Grid) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for bi in 0..grid.mr {
            if let Some((lo, hi)) = self.row_blocks(grid, bi) {
                for bj in lo..=hi {
                    v.push((bi, bj));
                }
            }
        }
        v
    }

    /// Inclusive range of member block rows in block column `bv`.
    pub fn col_blocks(&self, grid: &Grid, bv: usize) -> Option<(usize, usize)> {
        let mr = grid.mr;
        match *self {
            Region::Full => Some((0, mr - 1)),
            Region::UpperLeft { diags } => {
                if bv < diags {
                    Some((0, (diags - bv - 1).min(mr - 1)))
                } else {
                    None
                }
            }
            Region::LowerRight { start } => {
                let lo = start.saturating_sub(bv);
                if lo < mr {
                    Some((lo, mr - 1))
                } else {
                    None
                }
            }
        }
    }

    /// Inclusive range of member block columns in block row `bu`.
    pub fn row_blocks(&self, grid: &Grid, bu: usize) -> Option<(usize, usize)> {
        let mc = grid.mc;
        match *self {
            Region::Full => Some((0, mc - 1)),
            Region::UpperLeft { diags } => {
                if bu < diags {
                    Some((0, (diags - bu - 1).min(mc - 1)))
                } else {
                    None
                }
            }
            Region::LowerRight { start } => {
                let lo = start.saturating_sub(bu);
                if lo < mc {
                    Some((lo, mc - 1))
                } else {
                    None
                }
            }
        }
    }
}

/// Region-generalised 2R1W: compute into `s` the final (global) SAT values
/// of every block of `region`, assuming all blocks above/left of the region
/// already hold final SAT values in `s` (vacuously true for
/// [`Region::Full`] and [`Region::UpperLeft`]).
pub fn sat_2r1w_region<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    grid: Grid,
    region: Region,
) {
    let blocks = region.blocks(&grid);
    if blocks.is_empty() {
        return;
    }
    let rp = GlobalBuffer::filled(T::ZERO, grid.mr * grid.cols);
    let ctp = GlobalBuffer::filled(T::ZERO, grid.mc * grid.rows);
    let sq = GlobalBuffer::filled(T::ZERO, grid.mr * grid.mc);

    phase1_block_sums(dev, a, &rp, &ctp, grid, &blocks);
    phase2_fringe_prefixes(dev, s, &rp, &ctp, grid, region);
    phase2b_corner_scan(dev, s, &rp, &sq, grid, region);
    phase3_fixup(dev, a, s, &rp, &ctp, &sq, grid, &blocks);
}

/// Phase 1: per region block, column sums into `R[bi]` and row sums into
/// `Cᵗ[bj]` (no block-total matrix — corners come from the phase-2b scan).
fn phase1_block_sums<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    rp: &GlobalBuffer<T>,
    ctp: &GlobalBuffer<T>,
    grid: Grid,
    blocks: &[(usize, usize)],
) {
    let w = grid.w;
    dev.launch(blocks.len(), |ctx| {
        let ga = ctx.view(a);
        let gr = ctx.view(rp);
        let gc = ctx.view(ctp);
        let (bi, bj) = blocks[ctx.block_id()];
        let (r0, c0) = grid.origin(bi, bj);
        let mut col_sums = vec![T::ZERO; w];
        let mut row_sums = vec![T::ZERO; w];
        let mut row = vec![T::ZERO; w];
        for (i, slot) in row_sums.iter_mut().enumerate() {
            ga.read_contig(grid.addr(r0 + i, c0), &mut row, &mut ctx.rec);
            let mut rs = T::ZERO;
            for t in 0..w {
                col_sums[t] = col_sums[t].add(row[t]);
                rs = rs.add(row[t]);
            }
            *slot = rs;
        }
        gr.write_contig(bi * grid.cols + c0, &col_sums, &mut ctx.rec);
        gc.write_contig(bj * grid.rows + r0, &row_sums, &mut ctx.rec);
    });
}

/// Read `w` consecutive values of `g` starting at `base − 1`, treating the
/// element before index 0 of the row as zero. Used for pairwise subtraction
/// at region boundaries.
fn read_shifted_row<T: SatElement>(
    ctx: &mut BlockCtx<'_>,
    g: &gpu_exec::GlobalView<'_, T>,
    base: usize,
    at_edge: bool,
    out: &mut [T],
) {
    if at_edge {
        let w = out.len();
        let mut tmp = vec![T::ZERO; w - 1];
        g.read_contig(base, &mut tmp, &mut ctx.rec);
        out[0] = T::ZERO;
        out[1..].copy_from_slice(&tmp);
    } else {
        g.read_contig(base - 1, out, &mut ctx.rec);
    }
}

/// Phase 2: inclusive prefix sums down each fringe matrix, seeded with base
/// values pairwise-subtracted from the finished SAT region where the region
/// does not start at the matrix edge. Bases are stored one row before the
/// first region row so phase 3 can address fringes uniformly as
/// `[bi − 1]` / `[bj − 1]`.
fn phase2_fringe_prefixes<T: SatElement>(
    dev: &Device,
    s: &GlobalBuffer<T>,
    rp: &GlobalBuffer<T>,
    ctp: &GlobalBuffer<T>,
    grid: Grid,
    region: Region,
) {
    let w = grid.w;
    let col_tasks: Vec<usize> = (0..grid.mc)
        .filter(|&bv| region.col_blocks(&grid, bv).is_some())
        .collect();
    let row_tasks: Vec<usize> = (0..grid.mr)
        .filter(|&bu| region.row_blocks(&grid, bu).is_some())
        .collect();
    let nc = col_tasks.len();
    dev.launch(nc + row_tasks.len(), |ctx| {
        let id = ctx.block_id();
        if id < nc {
            // T̂ prefix for the w columns of block column bv.
            let bv = col_tasks[id];
            let (lo, hi) = region.col_blocks(&grid, bv).expect("task exists");
            let gs = ctx.view(s);
            let gr = ctx.view(rp);
            let c0 = bv * w;
            let mut acc = vec![T::ZERO; w];
            if lo > 0 {
                // base[c] = S(lo·w−1, c) − S(lo·w−1, c−1): summed column
                // above, from the finished SAT.
                let row_addr = grid.addr(lo * w - 1, c0);
                let mut cur = vec![T::ZERO; w];
                gs.read_contig(row_addr, &mut cur, &mut ctx.rec);
                let mut prev = vec![T::ZERO; w];
                read_shifted_row(ctx, &gs, row_addr, c0 == 0, &mut prev);
                for t in 0..w {
                    acc[t] = cur[t].sub(prev[t]);
                }
                gr.write_contig((lo - 1) * grid.cols + c0, &acc, &mut ctx.rec);
            }
            let mut row = vec![T::ZERO; w];
            for bi in lo..=hi {
                gr.read_contig(bi * grid.cols + c0, &mut row, &mut ctx.rec);
                for t in 0..w {
                    acc[t] = acc[t].add(row[t]);
                }
                gr.write_contig(bi * grid.cols + c0, &acc, &mut ctx.rec);
            }
        } else {
            // Ĉ prefix for the w rows of block row bu.
            let bu = row_tasks[id - nc];
            let (lo, hi) = region.row_blocks(&grid, bu).expect("task exists");
            let gs = ctx.view(s);
            let gc = ctx.view(ctp);
            let r0 = bu * w;
            let mut acc = vec![T::ZERO; w];
            if lo > 0 {
                // base[r] = S(r, lo·w−1) − S(r−1, lo·w−1), reading a column
                // of the finished SAT (stride, O(rows) ops in total).
                let col = lo * w - 1;
                let mut cur = vec![T::ZERO; w];
                gs.read_strided(grid.addr(r0, col), grid.cols, &mut cur, &mut ctx.rec);
                let mut prev = vec![T::ZERO; w];
                if r0 == 0 {
                    let mut tmp = vec![T::ZERO; w - 1];
                    gs.read_strided(grid.addr(0, col), grid.cols, &mut tmp, &mut ctx.rec);
                    prev[0] = T::ZERO;
                    prev[1..].copy_from_slice(&tmp);
                } else {
                    gs.read_strided(grid.addr(r0 - 1, col), grid.cols, &mut prev, &mut ctx.rec);
                }
                for t in 0..w {
                    acc[t] = cur[t].sub(prev[t]);
                }
                gc.write_contig((lo - 1) * grid.rows + r0, &acc, &mut ctx.rec);
            }
            let mut row = vec![T::ZERO; w];
            for bj in lo..=hi {
                gc.read_contig(bj * grid.rows + r0, &mut row, &mut ctx.rec);
                for t in 0..w {
                    acc[t] = acc[t].add(row[t]);
                }
                gc.write_contig(bj * grid.rows + r0, &acc, &mut ctx.rec);
            }
        }
    });
}

/// Phase 2b: block-corner offsets. For every region row `bi ≥ 1`, scan the
/// finished T̂ prefixes left to right; `ŝ(bi,bj) = S(bi·w−1, bj·w−1)` is the
/// running sum (seeded from the finished SAT where the scan does not start
/// at column 0).
fn phase2b_corner_scan<T: SatElement>(
    dev: &Device,
    s: &GlobalBuffer<T>,
    rp: &GlobalBuffer<T>,
    sq: &GlobalBuffer<T>,
    grid: Grid,
    region: Region,
) {
    let w = grid.w;
    // Rows that contain at least one region block with bi ≥ 1 and bj ≥ 1.
    let tasks: Vec<(usize, usize, usize)> = (1..grid.mr)
        .filter_map(|bi| {
            let (lo, hi) = region.row_blocks(&grid, bi)?;
            let jstart = lo.max(1);
            if jstart > hi {
                return None;
            }
            Some((bi, jstart, hi))
        })
        .collect();
    dev.launch(tasks.len(), |ctx| {
        let (bi, jstart, hi) = tasks[ctx.block_id()];
        let gs = ctx.view(s);
        let gr = ctx.view(rp);
        let gq = ctx.view(sq);
        // First block column whose T̂ row bi−1 entry exists.
        let bv0 = (0..grid.mc)
            .find(|&bv| {
                region
                    .col_blocks(&grid, bv)
                    .is_some_and(|(lo, chi)| lo <= bi && bi - 1 <= chi)
            })
            .expect("a region block in this row implies a valid fringe column");
        let mut acc = if bv0 > 0 {
            // Everything left of the scan start is finished SAT.
            gs.read(grid.addr(bi * w - 1, bv0 * w - 1), &mut ctx.rec)
        } else {
            T::ZERO
        };
        let mut row = vec![T::ZERO; w];
        for bv in bv0..=hi {
            if bv >= jstart {
                gq.write(bi * grid.mc + bv, acc, &mut ctx.rec);
            }
            if bv < hi {
                gr.read_contig((bi - 1) * grid.cols + bv * w, &mut row, &mut ctx.rec);
                for &v in row.iter() {
                    acc = acc.add(v);
                }
            }
        }
    });
}

/// Phase 3: per region block, augment with T̂ (top row), Ĉ (left column) and
/// ŝ (corner), compute the block SAT in shared memory, write out.
#[allow(clippy::too_many_arguments)]
fn phase3_fixup<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rp: &GlobalBuffer<T>,
    ctp: &GlobalBuffer<T>,
    sq: &GlobalBuffer<T>,
    grid: Grid,
    blocks: &[(usize, usize)],
) {
    let w = grid.w;
    dev.launch(blocks.len(), |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let gr = ctx.view(rp);
        let gc = ctx.view(ctp);
        let gq = ctx.view(sq);
        let (bi, bj) = blocks[ctx.block_id()];
        let (r0, c0) = grid.origin(bi, bj);
        let mut tile: SharedTile<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, bi, bj, &mut tile);
        let mut buf = vec![T::ZERO; w];
        let mut fringe = vec![T::ZERO; w];
        if bi > 0 {
            gr.read_contig((bi - 1) * grid.cols + c0, &mut fringe, &mut ctx.rec);
            tile.read_row(0, &mut buf, &mut ctx.rec);
            for t in 0..w {
                buf[t] = buf[t].add(fringe[t]);
            }
            tile.write_row(0, &buf, &mut ctx.rec);
        }
        if bj > 0 {
            gc.read_contig((bj - 1) * grid.rows + r0, &mut fringe, &mut ctx.rec);
            tile.read_col(0, &mut buf, &mut ctx.rec);
            for t in 0..w {
                buf[t] = buf[t].add(fringe[t]);
            }
            tile.write_col(0, &buf, &mut ctx.rec);
        }
        if bi > 0 && bj > 0 {
            let corner = gq.read(bi * grid.mc + bj, &mut ctx.rec);
            tile.set(0, 0, tile.get(0, 0).add(corner));
        }
        tile_sat(ctx, &mut tile);
        store_block(ctx, &gs, grid, bi, bj, &tile);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::matrix::Matrix;
    use crate::par::one_r1w::one_r1w_stage;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn region_geometry() {
        let g = Grid::new(16, 16, 4); // 4 × 4 blocks
        let ul = Region::UpperLeft { diags: 3 };
        assert!(ul.contains(&g, 0, 0));
        assert!(ul.contains(&g, 2, 0));
        assert!(!ul.contains(&g, 2, 1));
        assert_eq!(ul.col_blocks(&g, 0), Some((0, 2)));
        assert_eq!(ul.col_blocks(&g, 2), Some((0, 0)));
        assert_eq!(ul.col_blocks(&g, 3), None);
        assert_eq!(ul.blocks(&g).len(), 6); // 3 + 2 + 1

        let lr = Region::LowerRight { start: 5 };
        assert!(lr.contains(&g, 3, 3));
        assert!(lr.contains(&g, 2, 3));
        assert!(!lr.contains(&g, 1, 3));
        assert_eq!(lr.col_blocks(&g, 3), Some((2, 3)));
        assert_eq!(lr.col_blocks(&g, 0), None); // lo = 5 > 3
        assert_eq!(lr.blocks(&g).len(), 3); // diagonals 5 and 6
                                            // The symmetric counterpart of UpperLeft{3} starts at 2m−1−3 = 4.
        assert_eq!(Region::LowerRight { start: 4 }.blocks(&g).len(), 6);

        assert_eq!(Region::Full.blocks(&Grid::new(12, 12, 4)).len(), 9);
        assert_eq!(
            Region::Full.col_blocks(&Grid::new(12, 12, 4), 1),
            Some((0, 2))
        );
    }

    #[test]
    fn region_geometry_rect() {
        // 2 × 5 block grid.
        let g = Grid::new(8, 20, 4);
        let ul = Region::UpperLeft { diags: 4 };
        // Column 0 holds rows 0..min(3, 1) = both rows.
        assert_eq!(ul.col_blocks(&g, 0), Some((0, 1)));
        assert_eq!(ul.col_blocks(&g, 3), Some((0, 0)));
        assert_eq!(ul.col_blocks(&g, 4), None);
        assert_eq!(ul.row_blocks(&g, 0), Some((0, 3)));
        assert_eq!(ul.row_blocks(&g, 1), Some((0, 2)));
        assert_eq!(ul.blocks(&g).len(), 7);
        let lr = Region::LowerRight { start: 4 };
        assert_eq!(lr.row_blocks(&g, 0), Some((4, 4)));
        assert_eq!(lr.row_blocks(&g, 1), Some((3, 4)));
        assert_eq!(lr.blocks(&g).len(), 3);
    }

    #[test]
    fn fig12_partition_covers_matrix_exactly_once() {
        // Figure 12: triangles A and B plus the middle C tile the grid —
        // on square and rectangular grids.
        for (mr, mc) in [(2usize, 2usize), (3, 3), (5, 5), (2, 5), (5, 2), (3, 8)] {
            let g = Grid::new(mr * 4, mc * 4, 4);
            let dmax = mr + mc - 1;
            for a in 0..=mr.min(mc) {
                let ul = Region::UpperLeft { diags: a };
                let start = (dmax - a).max(a);
                let lr = Region::LowerRight { start };
                for bi in 0..mr {
                    for bj in 0..mc {
                        let in_a = a > 0 && ul.contains(&g, bi, bj);
                        let in_b = lr.contains(&g, bi, bj);
                        let in_c = (a..start).contains(&(bi + bj));
                        let count = in_a as u32 + in_b as u32 + in_c as u32;
                        assert_eq!(count, 1, "grid {mr}x{mc} a={a} block=({bi},{bj})");
                    }
                }
            }
        }
    }

    #[test]
    fn full_region_matches_reference() {
        for (w, rows, cols) in [
            (4usize, 8usize, 8usize),
            (4, 16, 16),
            (3, 27, 27),
            (8, 64, 64),
            (4, 8, 24),
            (4, 24, 8),
        ] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 29 + j * 13) % 31) as i64 - 15);
            let dev = dev(w);
            let grid = Grid::new(rows, cols, w);
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, rows * cols);
            sat_2r1w_region(&dev, &ab, &sb, grid, Region::Full);
            assert_eq!(
                sb.into_vec(),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn upper_left_triangle_gets_final_values() {
        let (w, n) = (4usize, 24usize);
        let grid = Grid::square(n, w);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as i64 - 5);
        let want = sat_reference(&a);
        for diags in 1..=grid.mr {
            let dev = dev(w);
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, n * n);
            let region = Region::UpperLeft { diags };
            sat_2r1w_region(&dev, &ab, &sb, grid, region);
            let got = sb.into_vec();
            for (bi, bj) in region.blocks(&grid) {
                for i in 0..w {
                    for j in 0..w {
                        let (r, c) = (bi * w + i, bj * w + j);
                        assert_eq!(
                            got[r * n + c],
                            want.get(r, c),
                            "diags={diags} block=({bi},{bj}) ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lower_right_region_after_wavefront_prefix() {
        // Drive the matrix to the state the hybrid would: finish all
        // diagonals < start with 1R1W stages, then run the region 2R1W on
        // the rest and compare everything with the reference.
        for (rows, cols) in [(24usize, 24usize), (8, 24), (24, 8)] {
            let w = 4usize;
            let grid = Grid::new(rows, cols, w);
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 5 + j * 11) % 17) as i64 - 8);
            let want = sat_reference(&a);
            for start in 1..grid.diagonals() {
                let dev = dev(w);
                let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
                let sb = GlobalBuffer::filled(0i64, rows * cols);
                for d in 0..start {
                    one_r1w_stage(&dev, &ab, &sb, grid, d);
                }
                sat_2r1w_region(&dev, &ab, &sb, grid, Region::LowerRight { start });
                assert_eq!(
                    sb.into_vec(),
                    want.as_slice(),
                    "{rows}x{cols} start={start}"
                );
            }
        }
    }

    #[test]
    fn empty_region_is_noop() {
        let (w, n) = (4usize, 8usize);
        let dev = dev(w);
        let grid = Grid::square(n, w);
        let ab = GlobalBuffer::filled(1i64, n * n);
        let sb = GlobalBuffer::filled(0i64, n * n);
        sat_2r1w_region(&dev, &ab, &sb, grid, Region::UpperLeft { diags: 0 });
        assert_eq!(dev.launches(), 0);
        assert!(sb.into_vec().iter().all(|&v| v == 0));
    }
}
