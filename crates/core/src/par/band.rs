//! **Banded 1R1W** — the multi-device (fleet) decomposition of the block
//! wavefront, with an explicit margin exchange between bands.
//!
//! The matrix is split into `D` horizontal **bands** of whole block-rows,
//! one band per device. A band's wavefront only ever needs data from the
//! rows *above* it, condensed into a single **carry row** — the true SAT
//! values at the band boundary — so the pipeline has three fleet-wide
//! phases, each a full barrier between devices:
//!
//! 1. **Column sums** (`D − 1` one-launch kernels, bands `0..D−1` in
//!    parallel): band `k` reduces its rows into one row of per-column
//!    sums. The last band's sums are never consumed and are skipped.
//! 2. **Margin exchange** (one launch, `D − 1` blocks): block `r` sums
//!    column-sum rows `0..=r` and prefix-scans the result into carry row
//!    `r` — `carries[r][j] = S(end_of_band_r, j)`, the SAT row seeding
//!    band `r + 1`. All traffic is coalesced; this is the cross-shard
//!    term [`hmm_model::cost::GlobalCost::banded_1r1w_exact_counts`]
//!    prices.
//! 3. **Band wavefronts** (`D` bands in parallel): the standard 1R1W
//!    block wavefront inside each band, except blocks in a band's first
//!    block-row read their top fringe and corner from the carry row
//!    instead of finished neighbours. Left fringes go through a mirror
//!    buffer (as in [`sat_1r1w_mirror`](super::one_r1w::sat_1r1w_mirror)),
//!    so the banded pipeline performs **zero** stride accesses and its
//!    critical path is the slowest band, not the whole matrix.
//!
//! Bands touch pairwise-disjoint rows of the shared input/output/mirror
//! buffers, so concurrent launches on different devices are race-free (the
//! per-word detector verifies this under process-global launch epochs);
//! the phase joins provide the cross-device happens-before edges.
//!
//! The three kernels are exposed individually — the serving layer's fleet
//! router schedules them as units of work-stealing and failover — and
//! [`sat_1r1w_banded`] is the straight-line reference driver.

use gpu_exec::{Device, GlobalBuffer};

use crate::element::SatElement;
use crate::par::common::{default_tile, load_block, tile_sat, Grid};

/// One horizontal band: `rows` matrix rows starting at `start_row`, both
/// multiples of the block width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// First matrix row of the band.
    pub start_row: usize,
    /// Number of matrix rows in the band.
    pub rows: usize,
}

/// The banded decomposition of a `rows × cols` matrix into `D` bands of
/// whole block-rows.
///
/// Block-rows are split as evenly as possible; the remainder goes to the
/// *later* bands, because the last band skips the column-sum phase and can
/// afford to be the larger one. The shard count is clamped to the number
/// of block-rows (every band must own at least one).
#[derive(Debug, Clone)]
pub struct BandPlan {
    /// Full-matrix geometry.
    pub grid: Grid,
    /// The bands, top to bottom.
    pub bands: Vec<Band>,
}

impl BandPlan {
    /// Plan `shards` bands over a `rows × cols` matrix with width `w`.
    ///
    /// # Panics
    /// Panics unless both sides are positive multiples of `w` (pad first,
    /// as [`crate::compute_sat`] does).
    pub fn new(rows: usize, cols: usize, w: usize, shards: usize) -> Self {
        let grid = Grid::new(rows, cols, w);
        let d = shards.clamp(1, grid.mr);
        let base = grid.mr / d;
        let extra = grid.mr % d;
        let mut bands = Vec::with_capacity(d);
        let mut start = 0usize;
        for k in 0..d {
            let block_rows = base + usize::from(k >= d - extra);
            bands.push(Band {
                start_row: start,
                rows: block_rows * w,
            });
            start += block_rows * w;
        }
        debug_assert_eq!(start, rows);
        BandPlan { grid, bands }
    }

    /// Number of bands `D`.
    pub fn len(&self) -> usize {
        self.bands.len()
    }

    /// Whether the plan has no bands (never true for a constructed plan).
    pub fn is_empty(&self) -> bool {
        self.bands.is_empty()
    }

    /// Words needed in the column-sum and carry buffers: one row of `cols`
    /// words per band boundary (at least one word so buffers are
    /// constructible at `D = 1`).
    pub fn boundary_len(&self) -> usize {
        ((self.len() - 1) * self.grid.cols).max(1)
    }

    /// Words needed in the shared mirror buffer (`mc × rows`, as in the
    /// single-device mirror variant — bands use disjoint row ranges).
    pub fn mirror_len(&self) -> usize {
        self.grid.mc * self.grid.rows
    }

    /// Launches the band-`k` wavefront issues (`m_k + mc − 1`).
    pub fn wavefront_launches(&self, k: usize) -> usize {
        self.bands[k].rows / self.grid.w + self.grid.mc - 1
    }
}

/// Phase 1 for band `k < D−1`: reduce the band's rows into per-column sums,
/// written to row `k` of `colsums` (`(D−1) × cols`, row-major). One launch
/// of `mc` blocks; block `bj` owns one `w`-wide column chunk. Reads
/// `band.rows · cols` coalesced, writes `cols` coalesced.
pub fn band_colsum<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    colsums: &GlobalBuffer<T>,
    plan: &BandPlan,
    k: usize,
) {
    let grid = plan.grid;
    let band = plan.bands[k];
    assert!(k + 1 < plan.len(), "the last band's column sums are unused");
    assert!(colsums.len() >= plan.boundary_len(), "colsums too small");
    let w = grid.w;
    dev.launch(grid.mc, |ctx| {
        let ga = ctx.view(a);
        let gc = ctx.view(colsums);
        let bj = ctx.block_id();
        let c0 = bj * w;
        let mut sum = vec![T::ZERO; w];
        let mut row = vec![T::ZERO; w];
        for r in band.start_row..band.start_row + band.rows {
            ga.read_contig(grid.addr(r, c0), &mut row, &mut ctx.rec);
            for j in 0..w {
                sum[j] = sum[j].add(row[j]);
            }
        }
        gc.write_contig(k * grid.cols + c0, &sum, &mut ctx.rec);
    });
}

/// Phase 2, one launch of `D − 1` blocks: block `r` turns column-sum rows
/// `0..=r` into carry row `r` — the vertical sum of the rows, prefix-scanned
/// horizontally — so `carries[r][j]` is the finished SAT value at the last
/// row of band `r`, column `j`. Reads `D(D−1)/2 · cols` coalesced in total,
/// writes `(D−1) · cols` coalesced.
pub fn margin_exchange<T: SatElement>(
    dev: &Device,
    colsums: &GlobalBuffer<T>,
    carries: &GlobalBuffer<T>,
    plan: &BandPlan,
) {
    let grid = plan.grid;
    let d = plan.len();
    assert!(d > 1, "margin exchange needs at least two bands");
    assert!(
        colsums.len() >= plan.boundary_len() && carries.len() >= plan.boundary_len(),
        "boundary buffers too small"
    );
    let w = grid.w;
    dev.launch(d - 1, |ctx| {
        let gc = ctx.view(colsums);
        let go = ctx.view(carries);
        let r = ctx.block_id();
        let mut acc = vec![T::ZERO; w];
        let mut chunk = vec![T::ZERO; w];
        // Running prefix carried across chunks, left to right.
        let mut run = T::ZERO;
        for bj in 0..grid.mc {
            let c0 = bj * w;
            acc.fill(T::ZERO);
            for b in 0..=r {
                gc.read_contig(b * grid.cols + c0, &mut chunk, &mut ctx.rec);
                for j in 0..w {
                    acc[j] = acc[j].add(chunk[j]);
                }
            }
            for v in acc.iter_mut() {
                run = run.add(*v);
                *v = run;
            }
            go.write_contig(r * grid.cols + c0, &acc, &mut ctx.rec);
        }
    });
}

/// One wavefront stage of band `k`: finish every band-local block with
/// `lbi + bj = d`. See [`band_wavefront`] for the fringe sources.
#[allow(clippy::too_many_arguments)]
pub fn band_wavefront_stage<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    carries: &GlobalBuffer<T>,
    mirror: &GlobalBuffer<T>,
    plan: &BandPlan,
    k: usize,
    d: usize,
) {
    let grid = plan.grid;
    let band = plan.bands[k];
    let w = grid.w;
    let local = Grid::new(band.rows, grid.cols, w);
    let blocks: Vec<(usize, usize)> = local.diagonal_blocks(d).collect();
    let bi0 = band.start_row / w;
    dev.launch(blocks.len(), |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let gm = ctx.view(mirror);
        let (lbi, bj) = blocks[ctx.block_id()];
        let (r0, c0) = grid.origin(bi0 + lbi, bj);
        let mut tile: SharedTileOf<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, bi0 + lbi, bj, &mut tile);
        tile_sat(ctx, &mut tile);
        // Top fringe: finished rows above within the band, or the carry
        // row when this is the band's first block-row (band 0 has none).
        let mut top = vec![T::ZERO; w];
        if lbi > 0 {
            gs.read_contig(grid.addr(r0 - 1, c0), &mut top, &mut ctx.rec);
        } else if k > 0 {
            let gcar = ctx.view(carries);
            gcar.read_contig((k - 1) * grid.cols + c0, &mut top, &mut ctx.rec);
        }
        // Left fringe from the mirror — coalesced, same addressing as the
        // single-device mirror variant (bands use disjoint row ranges).
        let mut left = vec![T::ZERO; w];
        if bj > 0 {
            gm.read_contig((bj - 1) * grid.rows + r0, &mut left, &mut ctx.rec);
        }
        let corner = if bj == 0 {
            T::ZERO
        } else if lbi > 0 {
            gs.read(grid.addr(r0 - 1, c0 - 1), &mut ctx.rec)
        } else if k > 0 {
            let gcar = ctx.view(carries);
            gcar.read((k - 1) * grid.cols + c0 - 1, &mut ctx.rec)
        } else {
            T::ZERO
        };
        let mut row = vec![T::ZERO; w];
        let mut right_col = vec![T::ZERO; w];
        for i in 0..w {
            tile.read_row(i, &mut row, &mut ctx.rec);
            let li = left[i].sub(corner);
            for j in 0..w {
                row[j] = row[j].add(top[j]).add(li);
            }
            right_col[i] = row[w - 1];
            gs.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
        }
        gm.write_contig(bj * grid.rows + r0, &right_col, &mut ctx.rec);
    });
}

/// Phase 3 for band `k`: the carry-seeded block wavefront over the band,
/// `m_k + mc − 1` launches. Requires phase 2's carries (for `k > 0`); the
/// band's output rows of `s` and row range of `mirror` are written
/// completely, so a failed attempt can simply be re-run.
pub fn band_wavefront<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    carries: &GlobalBuffer<T>,
    mirror: &GlobalBuffer<T>,
    plan: &BandPlan,
    k: usize,
) {
    for d in 0..plan.wavefront_launches(k) {
        band_wavefront_stage(dev, a, s, carries, mirror, plan, k, d);
    }
}

/// Alias so the kernel body reads like its single-device siblings.
type SharedTileOf<T> = gpu_exec::SharedTile<T>;

/// **Banded 1R1W, reference driver**: compute into `s` the SAT of the
/// `rows × cols` matrix in `a`, split into `shards` bands over `devs`
/// (band `k` runs on `devs[k % devs.len()]`), with the phase barriers as
/// thread joins. The serving layer replaces this straight-line schedule
/// with a work-stealing, failover-capable router; results are identical.
pub fn sat_1r1w_banded<T: SatElement>(
    devs: &[&Device],
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    shards: usize,
) {
    assert!(!devs.is_empty(), "at least one device");
    let w = devs[0].width();
    let plan = BandPlan::new(rows, cols, w, shards);
    assert!(
        a.len() >= rows * cols && s.len() >= rows * cols,
        "buffers too small"
    );
    let d = plan.len();
    let colsums = GlobalBuffer::filled(T::ZERO, plan.boundary_len());
    let carries = GlobalBuffer::filled(T::ZERO, plan.boundary_len());
    let mirror = GlobalBuffer::filled(T::ZERO, plan.mirror_len());

    if d > 1 {
        std::thread::scope(|sc| {
            for k in 0..d - 1 {
                let (plan, a, colsums) = (&plan, &a, &colsums);
                let dev = devs[k % devs.len()];
                sc.spawn(move || band_colsum(dev, a, colsums, plan, k));
            }
        });
        margin_exchange(devs[0], &colsums, &carries, &plan);
    }
    std::thread::scope(|sc| {
        for k in 0..d {
            let (plan, a, s, carries, mirror) = (&plan, &a, &s, &carries, &mirror);
            let dev = devs[k % devs.len()];
            sc.spawn(move || band_wavefront(dev, a, s, carries, mirror, plan, k));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{DeviceFleet, DeviceOptions, FleetOptions};
    use hmm_model::cost::GlobalCost;
    use hmm_model::MachineConfig;

    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn fleet(w: usize, d: usize) -> DeviceFleet {
        DeviceFleet::new(FleetOptions::new(
            DeviceOptions::new(MachineConfig::with_width(w)).workers(0),
            d,
        ))
    }

    fn run_banded(w: usize, devs: usize, shards: usize, a: &Matrix<i64>) -> Vec<i64> {
        let f = fleet(w, devs);
        let (rows, cols) = (a.rows(), a.cols());
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let out = GlobalBuffer::filled(0i64, rows * cols);
        let refs: Vec<&Device> = f.iter().collect();
        sat_1r1w_banded(&refs, &buf, &out, rows, cols, shards);
        out.into_vec()
    }

    #[test]
    fn band_plan_partitions_block_rows() {
        // 11 block-rows over 4 bands: 2, 3, 3, 3 — extras on later bands.
        let p = BandPlan::new(88, 32, 8, 4);
        let rows: Vec<usize> = p.bands.iter().map(|b| b.rows).collect();
        assert_eq!(rows, vec![16, 24, 24, 24]);
        assert_eq!(p.bands[0].start_row, 0);
        assert_eq!(p.bands[3].start_row, 64);
        // Shards clamp to the block-row count.
        assert_eq!(BandPlan::new(16, 32, 8, 9).len(), 2);
        assert_eq!(BandPlan::new(16, 32, 8, 0).len(), 1);
    }

    #[test]
    fn banded_matches_reference_across_shard_counts() {
        let a = Matrix::from_fn(40, 24, |i, j| (i * 7 + j * 3) as i64 % 23 - 11);
        let want = sat_reference(&a);
        for shards in [1, 2, 3, 4, 5] {
            for devs in [1, 2, 4] {
                assert_eq!(
                    run_banded(8, devs, shards, &a),
                    want.as_slice(),
                    "shards={shards} devs={devs}"
                );
            }
        }
    }

    #[test]
    fn banded_is_bit_equal_to_single_device_on_integer_valued_floats() {
        // The failover guarantee is *bit*-exactness: integer-valued f64
        // sums are exact in both association orders, so the banded result
        // must equal plain single-device 1R1W bit for bit.
        let (rows, cols) = (32, 16);
        let a = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) % 29) as f64 - 14.0);
        let dev = Device::new(DeviceOptions::new(MachineConfig::with_width(8)).workers(0));
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let plain = GlobalBuffer::filled(0.0f64, rows * cols);
        crate::par::sat_1r1w(&dev, &buf, &plain, rows, cols);
        let f = fleet(8, 4);
        let refs: Vec<&Device> = f.iter().collect();
        let banded = GlobalBuffer::filled(0.0f64, rows * cols);
        let buf2 = GlobalBuffer::from_vec(a.as_slice().to_vec());
        sat_1r1w_banded(&refs, &buf2, &banded, rows, cols, 4);
        let (p, b) = (plain.into_vec(), banded.into_vec());
        assert!(p.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn banded_counts_match_the_closed_form() {
        // Cross-crate pin: measured per-phase counters equal
        // `GlobalCost::banded_1r1w_exact_counts` field by field.
        let w = 8;
        let (rows, cols) = (48usize, 32usize);
        let shards = 3;
        let cfg = MachineConfig::with_width(w);
        let model = GlobalCost::new(cfg)
            .banded_1r1w_exact_counts(rows, cols, shards)
            .unwrap();
        let f = fleet(w, shards);
        let plan = BandPlan::new(rows, cols, w, shards);
        let a = Matrix::from_fn(rows, cols, |i, j| (i + 2 * j) as i64);
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let out = GlobalBuffer::filled(0i64, rows * cols);
        let colsums = GlobalBuffer::filled(0i64, plan.boundary_len());
        let carries = GlobalBuffer::filled(0i64, plan.boundary_len());
        let mirror = GlobalBuffer::filled(0i64, plan.mirror_len());

        let phase = |dev: &Device, f: &dyn Fn(&Device)| {
            dev.reset_stats();
            f(dev);
            (dev.stats(), dev.launches())
        };
        // Column sums, each on its own device.
        for k in 0..shards - 1 {
            let (st, launches) = phase(f.device(k), &|dev| {
                band_colsum(dev, &buf, &colsums, &plan, k)
            });
            assert_eq!(
                st.coalesced_reads, model.colsum[k].coalesced_reads,
                "colsum {k}"
            );
            assert_eq!(st.coalesced_writes, model.colsum[k].coalesced_writes);
            assert_eq!(st.stride_ops(), 0);
            assert_eq!(launches, 1);
        }
        let (st, launches) = phase(f.device(0), &|dev| {
            margin_exchange(dev, &colsums, &carries, &plan)
        });
        assert_eq!(st.coalesced_reads, model.exchange.coalesced_reads);
        assert_eq!(st.coalesced_writes, model.exchange.coalesced_writes);
        assert_eq!(st.stride_ops(), 0);
        assert_eq!(launches, 1);
        for k in 0..shards {
            let (st, launches) = phase(f.device(k), &|dev| {
                band_wavefront(dev, &buf, &out, &carries, &mirror, &plan, k)
            });
            assert_eq!(
                st.coalesced_reads, model.wavefront[k].coalesced_reads,
                "wavefront {k} reads"
            );
            assert_eq!(
                st.coalesced_writes, model.wavefront[k].coalesced_writes,
                "wavefront {k} writes"
            );
            assert_eq!(st.stride_ops(), 0, "the banded pipeline is fully coalesced");
            assert_eq!(launches, model.wavefront[k].barrier_steps + 1);
        }
        // And the result is right.
        assert_eq!(out.into_vec(), sat_reference(&a).into_vec());
    }

    #[test]
    fn banded_is_race_clean_across_devices() {
        // Shared race-checked buffers under truly concurrent band
        // wavefronts on distinct devices: disjoint row ranges + process-
        // global launch epochs must keep the detector silent.
        let (rows, cols) = (32, 16);
        let a = Matrix::from_fn(rows, cols, |i, j| (i * 3 + j) as i64);
        let f = fleet(8, 4);
        let refs: Vec<&Device> = f.iter().collect();
        let buf = GlobalBuffer::from_vec_checked(a.as_slice().to_vec());
        let out = GlobalBuffer::from_vec_checked(vec![0i64; rows * cols]);
        sat_1r1w_banded(&refs, &buf, &out, rows, cols, 4);
        assert_eq!(out.into_vec(), sat_reference(&a).into_vec());
    }

    #[test]
    fn one_band_reduces_to_the_mirror_variant() {
        // D = 1: no column sums, no exchange; counts equal the mirror
        // variant's (pinned by mirror_variant_is_fully_coalesced).
        let n = 32;
        let w = 8;
        let a = Matrix::from_fn(n, n, |i, j| (i * 5 + j) as i64 % 17);
        let f = fleet(w, 1);
        let refs: Vec<&Device> = f.iter().collect();
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let out = GlobalBuffer::filled(0i64, n * n);
        sat_1r1w_banded(&refs, &buf, &out, n, n, 1);
        assert_eq!(out.into_vec(), sat_reference(&a).into_vec());
        let st = f.device(0).stats();
        let m = (n / w) as u64;
        let n2 = (n * n) as u64;
        assert_eq!(st.coalesced_writes, n2 + m * m * w as u64);
        assert_eq!(st.stride_ops(), 0);
    }
}
