//! The **1R1W** SAT algorithm (§VI) — the paper's contribution, optimal in
//! global memory accesses.
//!
//! 4R1W's anti-diagonal wavefront is lifted from elements to `w × w`
//! **blocks** (Figure 11): stage `d` computes the final SAT values of every
//! block on block-anti-diagonal `bi + bj = d`. A block needs three kinds of
//! fringe data, and *all of them can be read from the already-finished SAT
//! values of its neighbours* (the paper's "pairwise subtraction"):
//!
//! * `T[j] = S(bi·w−1, bj·w+j)` — the bottom row of the block above
//!   (stage `d−1`): the sum of column `bj·w+j` over all rows above, *plus*
//!   everything above-left;
//! * `Lᵢ = S(bi·w+i, bj·w−1)` — the rightmost column of the block to the
//!   left (stage `d−1`);
//! * `c = S(bi·w−1, bj·w−1)` — the bottom-right corner of the diagonal
//!   neighbour (stage `d−2`).
//!
//! With the block's local SAT `ℓ` (computed in shared memory with the
//! diagonal arrangement) the global value is simply
//!
//! ```text
//! S(bi·w+i, bj·w+j) = ℓ(i,j) + T[j] + Lᵢ − c .
//! ```
//!
//! Per element this costs exactly **1 read + 1 write** plus `O(w)` fringe
//! reads per block — optimal, since every input must be read and every
//! output written (Theorem 6). The price is `2·(n/w) − 1` barrier-separated
//! stages, whose latency dominates for small matrices — hence the hybrid
//! `(1+r²)R1W`.

use gpu_exec::{Device, GlobalBuffer, SharedTile};

use crate::element::SatElement;
use crate::par::common::{default_tile, load_block, tile_sat, Grid};

/// **1R1W**: compute into `s` the SAT of the `rows × cols` matrix in `a`,
/// by `rows/w + cols/w − 1` block-wavefront launches.
pub fn sat_1r1w<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    assert!(
        a.len() >= rows * cols && s.len() >= rows * cols,
        "buffers too small"
    );
    for d in 0..grid.diagonals() {
        one_r1w_stage(dev, a, s, grid, d);
    }
}

/// One wavefront stage: finish every block with `bi + bj = d`. Exposed for
/// the hybrid algorithm, which runs these stages only over its middle
/// region. Requires all blocks with smaller `bi + bj` to hold final SAT
/// values in `s`.
pub fn one_r1w_stage<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    grid: Grid,
    d: usize,
) {
    let blocks: Vec<(usize, usize)> = grid.diagonal_blocks(d).collect();
    let w = grid.w;
    dev.launch(blocks.len(), |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let (bi, bj) = blocks[ctx.block_id()];
        let (r0, c0) = grid.origin(bi, bj);
        let mut tile: SharedTile<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, bi, bj, &mut tile);
        tile_sat(ctx, &mut tile);
        // Fringes from finished neighbours, by pairwise subtraction.
        let mut top = vec![T::ZERO; w];
        if bi > 0 {
            // Bottom row of the block above — coalesced.
            gs.read_contig(grid.addr(r0 - 1, c0), &mut top, &mut ctx.rec);
        }
        let mut left = vec![T::ZERO; w];
        if bj > 0 {
            // Rightmost column of the block to the left — stride w reads
            // (the O(n²/w) lower-order term of Theorem 6).
            gs.read_strided(grid.addr(r0, c0 - 1), grid.cols, &mut left, &mut ctx.rec);
        }
        let corner = if bi > 0 && bj > 0 {
            gs.read(grid.addr(r0 - 1, c0 - 1), &mut ctx.rec)
        } else {
            T::ZERO
        };
        // Emit final values row by row — coalesced.
        let mut row = vec![T::ZERO; w];
        for (i, l) in left.iter().enumerate() {
            tile.read_row(i, &mut row, &mut ctx.rec);
            let li = l.sub(corner);
            for j in 0..w {
                row[j] = row[j].add(top[j]).add(li);
            }
            gs.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
        }
    });
}

/// **1R1W with a column mirror** — removes the last stride access.
///
/// Plain [`sat_1r1w`] reads each block's *left fringe* from the right
/// column of its left neighbour: a stride access (`w` transactions). This
/// variant maintains an auxiliary `mc × rows` array `M` with
/// `M[bj][r] = S(r, (bj+1)·w − 1)` — every finished block appends its right
/// column *transposed* (one coalesced write), and the next block column
/// reads its left fringe from `M` with one coalesced read. Total: `+rows·mc`
/// coalesced writes, `−rows·mc` stride reads; every access of the whole
/// algorithm is now coalesced. The `ablation` benchmark quantifies the
/// trade.
pub fn sat_1r1w_mirror<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    assert!(
        a.len() >= rows * cols && s.len() >= rows * cols,
        "buffers too small"
    );
    let mirror = GlobalBuffer::filled(T::ZERO, grid.mc * rows);
    for d in 0..grid.diagonals() {
        one_r1w_stage_mirror(dev, a, s, &mirror, grid, d);
    }
}

/// One mirror-variant wavefront stage (see [`sat_1r1w_mirror`]).
fn one_r1w_stage_mirror<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    mirror: &GlobalBuffer<T>,
    grid: Grid,
    d: usize,
) {
    let blocks: Vec<(usize, usize)> = grid.diagonal_blocks(d).collect();
    let w = grid.w;
    dev.launch(blocks.len(), |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let gm = ctx.view(mirror);
        let (bi, bj) = blocks[ctx.block_id()];
        let (r0, c0) = grid.origin(bi, bj);
        let mut tile: SharedTile<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, bi, bj, &mut tile);
        tile_sat(ctx, &mut tile);
        let mut top = vec![T::ZERO; w];
        if bi > 0 {
            gs.read_contig(grid.addr(r0 - 1, c0), &mut top, &mut ctx.rec);
        }
        let mut left = vec![T::ZERO; w];
        if bj > 0 {
            // The mirrored right column of the left neighbour — coalesced.
            gm.read_contig((bj - 1) * grid.rows + r0, &mut left, &mut ctx.rec);
        }
        let corner = if bi > 0 && bj > 0 {
            gs.read(grid.addr(r0 - 1, c0 - 1), &mut ctx.rec)
        } else {
            T::ZERO
        };
        let mut row = vec![T::ZERO; w];
        let mut right_col = vec![T::ZERO; w];
        for i in 0..w {
            tile.read_row(i, &mut row, &mut ctx.rec);
            let li = left[i].sub(corner);
            for j in 0..w {
                row[j] = row[j].add(top[j]).add(li);
            }
            right_col[i] = row[w - 1];
            gs.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
        }
        // Publish this block's right column, transposed — coalesced.
        gm.write_contig(bj * grid.rows + r0, &right_col, &mut ctx.rec);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{BlockOrder, Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    fn run(devw: usize, a: &Matrix<i64>) -> Vec<i64> {
        let dev = dev(devw);
        let (rows, cols) = (a.rows(), a.cols());
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let out = GlobalBuffer::filled(0i64, rows * cols);
        sat_1r1w(&dev, &buf, &out, rows, cols);
        out.into_vec()
    }

    #[test]
    fn fig3_full_sat() {
        assert_eq!(run(FIG_BLOCK_WIDTH, &fig3_input()), fig3_sat().into_vec());
    }

    #[test]
    fn fig11_one_r1w_stage3() {
        // Figure 11: at stage 3 (w = 3, m = 3) blocks Λ(1,2) and Λ(2,1) are
        // finished from Λ(0,2), Λ(1,1), Λ(2,0). Run stages 0..=2, then stage
        // 3, and check both blocks hold their final SAT values while the
        // last block (2,2) is still untouched.
        let n = 9;
        let dev = dev(FIG_BLOCK_WIDTH);
        let a = GlobalBuffer::from_vec(fig3_input().into_vec());
        let s = GlobalBuffer::filled(0i64, n * n);
        let grid = Grid::square(n, FIG_BLOCK_WIDTH);
        for d in 0..=3 {
            one_r1w_stage(&dev, &a, &s, grid, d);
        }
        let got = s.into_vec();
        let sat = fig3_sat();
        // Finished diagonals: every block with bi + bj ≤ 3.
        for bi in 0..3 {
            for bj in 0..3 {
                for i in 0..3 {
                    for j in 0..3 {
                        let (r, c) = (bi * 3 + i, bj * 3 + j);
                        if bi + bj <= 3 {
                            assert_eq!(got[r * 9 + c], sat.get(r, c), "({r},{c})");
                        } else {
                            assert_eq!(got[r * 9 + c], 0, "untouched ({r},{c})");
                        }
                    }
                }
            }
        }
        // The Figure 11 highlight: Λ(1,2) = rows 3–5 × cols 6–8.
        assert_eq!(got[3 * 9 + 6], 25);
        assert_eq!(got[4 * 9 + 7], 41);
        assert_eq!(got[5 * 9 + 8], 55);
    }

    #[test]
    fn matches_reference_various_sizes() {
        for (w, n) in [(4, 4), (4, 8), (4, 16), (8, 64), (3, 27), (5, 35), (4, 68)] {
            let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as i64 - 11);
            assert_eq!(run(w, &a), sat_reference(&a).into_vec(), "w={w} n={n}");
        }
    }

    #[test]
    fn matches_reference_rectangles() {
        for (w, rows, cols) in [(4, 4, 24), (4, 24, 4), (4, 8, 32), (3, 6, 15), (5, 20, 45)] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 11 + j * 5) % 17) as i64 - 8);
            assert_eq!(
                run(w, &a),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn exactly_one_read_one_write_per_element_plus_fringe() {
        // Theorem 6: n² + O(n²/w) reads, n² writes.
        let (w, n) = (8usize, 64usize);
        let m = n / w;
        let dev = dev(w);
        let a = GlobalBuffer::filled(1i64, n * n);
        let s = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_1r1w(&dev, &a, &s, n, n);
        let st = dev.stats();
        let n2 = (n * n) as u64;
        let blocks = (m * m) as u64;
        let wu = w as u64;
        // Reads: block loads (n²) + top fringes + left fringes + corners.
        let interior_pairs = ((m - 1) * m) as u64; // blocks with bi>0, resp. bj>0
        let corners = ((m - 1) * (m - 1)) as u64;
        assert_eq!(
            st.coalesced_reads + st.stride_reads,
            n2 + interior_pairs * wu * 2 + corners
        );
        assert_eq!(st.coalesced_writes + st.stride_writes, n2);
        // The only stride accesses are the left-fringe columns.
        assert_eq!(st.stride_reads, interior_pairs * wu);
        assert_eq!(st.stride_writes, 0);
        // Barriers: 2m − 1 launches.
        assert_eq!(st.barrier_steps, (2 * m - 2) as u64);
        let _ = blocks;
    }

    #[test]
    fn order_independent_within_a_stage() {
        // Asynchronous HMM correctness: blocks within one stage may run in
        // any order on any worker.
        let (w, n) = (4usize, 32usize);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j) % 13) as i64 - 6);
        let want = sat_reference(&a);
        for seed in [1u64, 7, 99] {
            let dev = Device::new(
                DeviceOptions::new(MachineConfig::with_width(w))
                    .workers(3)
                    .order(BlockOrder::Shuffled(seed)),
            );
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, n * n);
            sat_1r1w(&dev, &ab, &sb, n, n);
            assert_eq!(sb.into_vec(), want.as_slice(), "seed={seed}");
        }
    }

    #[test]
    fn mirror_variant_matches_reference() {
        for (w, rows, cols) in [(4, 16, 16), (4, 8, 32), (3, 27, 9), (8, 64, 64)] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17) % 23) as i64 - 11);
            let dev = dev(w);
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, rows * cols);
            sat_1r1w_mirror(&dev, &ab, &sb, rows, cols);
            assert_eq!(
                sb.into_vec(),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn mirror_variant_is_fully_coalesced() {
        let (w, n) = (8usize, 64usize);
        let m = n / w;
        let dev = dev(w);
        let a = GlobalBuffer::filled(1i64, n * n);
        let s = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_1r1w_mirror(&dev, &a, &s, n, n);
        let st = dev.stats();
        assert_eq!(st.stride_ops(), 0, "no stride access remains");
        // Trade: + n·m/w coalesced mirror writes per column… i.e. n·m total
        // extra writes, versus the plain variant's n·(m−1) stride reads.
        let n2 = (n * n) as u64;
        assert_eq!(st.coalesced_writes + st.stride_writes, n2 + (n * m) as u64);
    }

    #[test]
    fn mirror_under_race_detector_and_shuffle() {
        let (w, n) = (4usize, 32usize);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 13) as i64);
        let dev = Device::new(
            DeviceOptions::new(MachineConfig::with_width(w))
                .workers(3)
                .order(BlockOrder::Shuffled(5)),
        );
        let ab = GlobalBuffer::from_vec_checked(a.as_slice().to_vec());
        let sb = GlobalBuffer::from_vec_checked(vec![0i64; n * n]);
        sat_1r1w_mirror(&dev, &ab, &sb, n, n);
        assert_eq!(sb.into_vec(), sat_reference(&a).into_vec());
    }

    #[test]
    fn hazard_free_under_race_detector() {
        // Every stage only reads SAT values finished in earlier launches;
        // the race detector would panic otherwise.
        let (w, n) = (4usize, 16usize);
        let a = Matrix::from_fn(n, n, |i, j| (i + j) as i64);
        let dev = dev(w);
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let sb = GlobalBuffer::from_vec_checked(vec![0i64; n * n]);
        sat_1r1w(&dev, &ab, &sb, n, n);
        assert_eq!(sb.into_vec(), sat_reference(&a).into_vec());
    }
}
