//! The **1R1W** SAT algorithm (§VI) — the paper's contribution, optimal in
//! global memory accesses.
//!
//! 4R1W's anti-diagonal wavefront is lifted from elements to `w × w`
//! **blocks** (Figure 11): stage `d` computes the final SAT values of every
//! block on block-anti-diagonal `bi + bj = d`. A block needs three kinds of
//! fringe data, and *all of them can be read from the already-finished SAT
//! values of its neighbours* (the paper's "pairwise subtraction"):
//!
//! * `T[j] = S(bi·w−1, bj·w+j)` — the bottom row of the block above
//!   (stage `d−1`): the sum of column `bj·w+j` over all rows above, *plus*
//!   everything above-left;
//! * `Lᵢ = S(bi·w+i, bj·w−1)` — the rightmost column of the block to the
//!   left (stage `d−1`);
//! * `c = S(bi·w−1, bj·w−1)` — the bottom-right corner of the diagonal
//!   neighbour (stage `d−2`).
//!
//! With the block's local SAT `ℓ` (computed in shared memory with the
//! diagonal arrangement) the global value is simply
//!
//! ```text
//! S(bi·w+i, bj·w+j) = ℓ(i,j) + T[j] + Lᵢ − c .
//! ```
//!
//! Per element this costs exactly **1 read + 1 write** plus `O(w)` fringe
//! reads per block — optimal, since every input must be read and every
//! output written (Theorem 6). The price is `2·(n/w) − 1` barrier-separated
//! stages, whose latency dominates for small matrices — hence the hybrid
//! `(1+r²)R1W`.

use gpu_exec::{BlockCtx, Device, GlobalBuffer, HandoffFlags, SharedTile};

use crate::element::SatElement;
use crate::par::common::{default_tile, load_block, tile_sat, Grid};

/// **1R1W**: compute into `s` the SAT of the `rows × cols` matrix in `a`,
/// by `rows/w + cols/w − 1` block-wavefront launches.
pub fn sat_1r1w<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    assert!(
        a.len() >= rows * cols && s.len() >= rows * cols,
        "buffers too small"
    );
    for d in 0..grid.diagonals() {
        one_r1w_stage(dev, a, s, grid, d);
    }
}

/// One wavefront stage: finish every block with `bi + bj = d`. Exposed for
/// the hybrid algorithm, which runs these stages only over its middle
/// region. Requires all blocks with smaller `bi + bj` to hold final SAT
/// values in `s`.
pub fn one_r1w_stage<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    grid: Grid,
    d: usize,
) {
    let blocks: Vec<(usize, usize)> = grid.diagonal_blocks(d).collect();
    let w = grid.w;
    dev.launch(blocks.len(), |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let (bi, bj) = blocks[ctx.block_id()];
        let (r0, c0) = grid.origin(bi, bj);
        let mut tile: SharedTile<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, bi, bj, &mut tile);
        tile_sat(ctx, &mut tile);
        // Fringes from finished neighbours, by pairwise subtraction.
        let mut top = vec![T::ZERO; w];
        if bi > 0 {
            // Bottom row of the block above — coalesced.
            gs.read_contig(grid.addr(r0 - 1, c0), &mut top, &mut ctx.rec);
        }
        let mut left = vec![T::ZERO; w];
        if bj > 0 {
            // Rightmost column of the block to the left — stride w reads
            // (the O(n²/w) lower-order term of Theorem 6).
            gs.read_strided(grid.addr(r0, c0 - 1), grid.cols, &mut left, &mut ctx.rec);
        }
        let corner = if bi > 0 && bj > 0 {
            gs.read(grid.addr(r0 - 1, c0 - 1), &mut ctx.rec)
        } else {
            T::ZERO
        };
        // Emit final values row by row — coalesced.
        let mut row = vec![T::ZERO; w];
        for (i, l) in left.iter().enumerate() {
            tile.read_row(i, &mut row, &mut ctx.rec);
            let li = l.sub(corner);
            for j in 0..w {
                row[j] = row[j].add(top[j]).add(li);
            }
            gs.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
        }
    });
}

/// Polls per [`HandoffFlags::acquire`] call before the resident re-checks
/// whether its launch failed and yields the core.
const SPIN_POLLS: usize = 1 << 12;
/// Yield rounds before a resident declares the handoff starved. A healthy
/// persistent schedule publishes within a few rounds; exhausting this means
/// a producer died without the launch being marked failed.
const STARVE_ROUNDS: usize = 1 << 20;
/// Per-stage retry bound of the launch-per-stage fallback.
const STAGE_RETRY_LIMIT: usize = 1000;

/// **1R1W, persistent-block**: the whole wavefront in **one** launch.
///
/// The launch-per-stage driver [`sat_1r1w`] pays a barrier (`Λ` in the cost
/// model) per block anti-diagonal — `2·(n/w) − 1` launches. This driver
/// launches a grid of `R = min(mr, resident_capacity)` *resident* blocks
/// once; resident `r` computes block-rows `r, r + R, r + 2R, …`, tiles left
/// to right, and the inter-stage ordering the barrier used to provide is
/// carried by [`HandoffFlags`] release/acquire instead:
///
/// * finishing tile `(bi, bj)` publishes its bottom SAT row (`w` coalesced
///   words) under slot `bi·mc + bj` when a block-row below exists;
/// * before computing tile `(bi, bj)` with `bi > 0`, the resident acquires
///   slot `(bi−1)·mc + bj` — the top fringe *and* (through the acquire made
///   one tile earlier) the corner are then safely readable;
/// * the left fringe needs no flag at all: tile `(bi, bj−1)` was computed
///   by the same resident moments ago, so program order suffices.
///
/// Data movement is bit-identical to [`sat_1r1w`]; the launch-boundary cost
/// `Λ·(B+1)` collapses to a single `Λ` plus `2·(m−1)·m` one-word flag
/// operations (`m = n/w`), which the device reports as
/// `handoff_publishes` / `handoff_acquires`.
///
/// If fault injection fails the persistent launch (abort or device loss),
/// residents notice via [`BlockCtx::launch_failed`], stop waiting on
/// handoffs that will never come, and the driver falls back to the
/// launch-per-stage path with a bounded per-stage retry — still bit-exact,
/// at the cost of the barriers the persistent mode exists to avoid.
pub fn sat_1r1w_persistent<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    assert!(
        a.len() >= rows * cols && s.len() >= rows * cols,
        "buffers too small"
    );
    let residents = grid.mr.min(dev.resident_capacity());
    let flags = HandoffFlags::new(grid.blocks());
    let epoch_before = dev.fault_epoch();
    dev.launch_persistent(residents, |ctx| {
        one_r1w_persistent(ctx, a, s, &flags, grid, residents);
    });
    if dev.fault_epoch() == epoch_before {
        return;
    }
    // Leave a structured breadcrumb before retrying: a post-mortem bundle
    // must show that the persistent mode stalled and where it gave up.
    dev.observer().flight_event(
        obs::FlightKind::HandoffStall,
        0,
        grid.diagonals() as u64,
        residents as u64,
    );
    // The persistent launch was aborted or lost: recompute stage by stage.
    // Every stage rewrites its blocks completely, so no scrub is needed,
    // and a stage whose launch fails is simply run again.
    for d in 0..grid.diagonals() {
        let mut tries = 0;
        loop {
            let e0 = dev.fault_epoch();
            one_r1w_stage(dev, a, s, grid, d);
            if dev.fault_epoch() == e0 {
                break;
            }
            tries += 1;
            assert!(
                tries < STAGE_RETRY_LIMIT,
                "stage {d} kept failing after {STAGE_RETRY_LIMIT} retries"
            );
        }
    }
}

/// The persistent-block 1R1W kernel body: resident `ctx.block_id()` of `R =
/// residents` computes block-rows `block_id, block_id + R, …` of the
/// wavefront, synchronising with the row above through `flags` (one slot
/// per block, `bi·mc + bj`). See [`sat_1r1w_persistent`] for the protocol;
/// exposed so harnesses can drive the kernel under custom launches.
pub fn one_r1w_persistent<T: SatElement>(
    ctx: &mut BlockCtx<'_>,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    flags: &HandoffFlags,
    grid: Grid,
    residents: usize,
) {
    let w = grid.w;
    let ga = ctx.view(a);
    let gs = ctx.view(s);
    // One tile per resident, reused for every block it owns (`load_block`
    // overwrites all w² words) — persistent blocks must live within the
    // same shared-memory budget as a single launch-per-stage block.
    let mut tile: SharedTile<T> = default_tile(ctx);
    let mut top = vec![T::ZERO; w];
    let mut left = vec![T::ZERO; w];
    let mut row = vec![T::ZERO; w];
    let mut bi = ctx.block_id();
    while bi < grid.mr {
        for bj in 0..grid.mc {
            let (r0, c0) = grid.origin(bi, bj);
            if bi > 0 {
                // The handoff that replaces the launch barrier: wait for
                // the block above, then read its bottom row — coalesced.
                if !acquire_ready(flags, (bi - 1) * grid.mc + bj, ctx) {
                    return; // launch failed; the producer will never publish
                }
                gs.read_contig(grid.addr(r0 - 1, c0), &mut top, &mut ctx.rec);
            } else {
                top.fill(T::ZERO);
            }
            load_block(ctx, &ga, grid, bi, bj, &mut tile);
            tile_sat(ctx, &mut tile);
            if bj > 0 {
                // Same-resident program order: tile (bi, bj−1) is already
                // final. Stride w reads, as in the launch-per-stage kernel.
                gs.read_strided(grid.addr(r0, c0 - 1), grid.cols, &mut left, &mut ctx.rec);
            } else {
                left.fill(T::ZERO);
            }
            // The corner lies in the bottom row of block (bi−1, bj−1),
            // whose slot this resident acquired one tile ago.
            let corner = if bi > 0 && bj > 0 {
                gs.read(grid.addr(r0 - 1, c0 - 1), &mut ctx.rec)
            } else {
                T::ZERO
            };
            for (i, l) in left.iter().enumerate() {
                tile.read_row(i, &mut row, &mut ctx.rec);
                let li = l.sub(corner);
                for j in 0..w {
                    row[j] = row[j].add(top[j]).add(li);
                }
                gs.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
            }
            if bi + 1 < grid.mr {
                // Release the finished bottom row to the block-row below.
                flags.publish(
                    bi * grid.mc + bj,
                    &gs,
                    grid.addr(r0 + w - 1, c0),
                    w,
                    &mut ctx.rec,
                );
            }
        }
        bi += residents;
    }
}

/// Acquire `slot` or report that it never will be published: spins in
/// bounded bursts, re-checking [`BlockCtx::launch_failed`] and yielding
/// between bursts so a skipped producer cannot wedge the pool.
fn acquire_ready(flags: &HandoffFlags, slot: usize, ctx: &mut BlockCtx<'_>) -> bool {
    for _ in 0..STARVE_ROUNDS {
        if flags.acquire(slot, SPIN_POLLS, ctx.rec()) {
            return true;
        }
        if ctx.launch_failed() {
            return false;
        }
        std::thread::yield_now();
    }
    panic!("persistent handoff starved: slot {slot} was never published");
}

/// **1R1W with a column mirror** — removes the last stride access.
///
/// Plain [`sat_1r1w`] reads each block's *left fringe* from the right
/// column of its left neighbour: a stride access (`w` transactions). This
/// variant maintains an auxiliary `mc × rows` array `M` with
/// `M[bj][r] = S(r, (bj+1)·w − 1)` — every finished block appends its right
/// column *transposed* (one coalesced write), and the next block column
/// reads its left fringe from `M` with one coalesced read. Total: `+rows·mc`
/// coalesced writes, `−rows·mc` stride reads; every access of the whole
/// algorithm is now coalesced. The `ablation` benchmark quantifies the
/// trade.
pub fn sat_1r1w_mirror<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    assert!(
        a.len() >= rows * cols && s.len() >= rows * cols,
        "buffers too small"
    );
    let mirror = GlobalBuffer::filled(T::ZERO, grid.mc * rows);
    for d in 0..grid.diagonals() {
        one_r1w_stage_mirror(dev, a, s, &mirror, grid, d);
    }
}

/// One mirror-variant wavefront stage (see [`sat_1r1w_mirror`]).
fn one_r1w_stage_mirror<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    mirror: &GlobalBuffer<T>,
    grid: Grid,
    d: usize,
) {
    let blocks: Vec<(usize, usize)> = grid.diagonal_blocks(d).collect();
    let w = grid.w;
    dev.launch(blocks.len(), |ctx| {
        let ga = ctx.view(a);
        let gs = ctx.view(s);
        let gm = ctx.view(mirror);
        let (bi, bj) = blocks[ctx.block_id()];
        let (r0, c0) = grid.origin(bi, bj);
        let mut tile: SharedTile<T> = default_tile(ctx);
        load_block(ctx, &ga, grid, bi, bj, &mut tile);
        tile_sat(ctx, &mut tile);
        let mut top = vec![T::ZERO; w];
        if bi > 0 {
            gs.read_contig(grid.addr(r0 - 1, c0), &mut top, &mut ctx.rec);
        }
        let mut left = vec![T::ZERO; w];
        if bj > 0 {
            // The mirrored right column of the left neighbour — coalesced.
            gm.read_contig((bj - 1) * grid.rows + r0, &mut left, &mut ctx.rec);
        }
        let corner = if bi > 0 && bj > 0 {
            gs.read(grid.addr(r0 - 1, c0 - 1), &mut ctx.rec)
        } else {
            T::ZERO
        };
        let mut row = vec![T::ZERO; w];
        let mut right_col = vec![T::ZERO; w];
        for i in 0..w {
            tile.read_row(i, &mut row, &mut ctx.rec);
            let li = left[i].sub(corner);
            for j in 0..w {
                row[j] = row[j].add(top[j]).add(li);
            }
            right_col[i] = row[w - 1];
            gs.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
        }
        // Publish this block's right column, transposed — coalesced.
        gm.write_contig(bj * grid.rows + r0, &right_col, &mut ctx.rec);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{BlockOrder, Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    fn run(devw: usize, a: &Matrix<i64>) -> Vec<i64> {
        let dev = dev(devw);
        let (rows, cols) = (a.rows(), a.cols());
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let out = GlobalBuffer::filled(0i64, rows * cols);
        sat_1r1w(&dev, &buf, &out, rows, cols);
        out.into_vec()
    }

    #[test]
    fn fig3_full_sat() {
        assert_eq!(run(FIG_BLOCK_WIDTH, &fig3_input()), fig3_sat().into_vec());
    }

    #[test]
    fn fig11_one_r1w_stage3() {
        // Figure 11: at stage 3 (w = 3, m = 3) blocks Λ(1,2) and Λ(2,1) are
        // finished from Λ(0,2), Λ(1,1), Λ(2,0). Run stages 0..=2, then stage
        // 3, and check both blocks hold their final SAT values while the
        // last block (2,2) is still untouched.
        let n = 9;
        let dev = dev(FIG_BLOCK_WIDTH);
        let a = GlobalBuffer::from_vec(fig3_input().into_vec());
        let s = GlobalBuffer::filled(0i64, n * n);
        let grid = Grid::square(n, FIG_BLOCK_WIDTH);
        for d in 0..=3 {
            one_r1w_stage(&dev, &a, &s, grid, d);
        }
        let got = s.into_vec();
        let sat = fig3_sat();
        // Finished diagonals: every block with bi + bj ≤ 3.
        for bi in 0..3 {
            for bj in 0..3 {
                for i in 0..3 {
                    for j in 0..3 {
                        let (r, c) = (bi * 3 + i, bj * 3 + j);
                        if bi + bj <= 3 {
                            assert_eq!(got[r * 9 + c], sat.get(r, c), "({r},{c})");
                        } else {
                            assert_eq!(got[r * 9 + c], 0, "untouched ({r},{c})");
                        }
                    }
                }
            }
        }
        // The Figure 11 highlight: Λ(1,2) = rows 3–5 × cols 6–8.
        assert_eq!(got[3 * 9 + 6], 25);
        assert_eq!(got[4 * 9 + 7], 41);
        assert_eq!(got[5 * 9 + 8], 55);
    }

    #[test]
    fn matches_reference_various_sizes() {
        for (w, n) in [(4, 4), (4, 8), (4, 16), (8, 64), (3, 27), (5, 35), (4, 68)] {
            let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as i64 - 11);
            assert_eq!(run(w, &a), sat_reference(&a).into_vec(), "w={w} n={n}");
        }
    }

    #[test]
    fn matches_reference_rectangles() {
        for (w, rows, cols) in [(4, 4, 24), (4, 24, 4), (4, 8, 32), (3, 6, 15), (5, 20, 45)] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 11 + j * 5) % 17) as i64 - 8);
            assert_eq!(
                run(w, &a),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn exactly_one_read_one_write_per_element_plus_fringe() {
        // Theorem 6: n² + O(n²/w) reads, n² writes.
        let (w, n) = (8usize, 64usize);
        let m = n / w;
        let dev = dev(w);
        let a = GlobalBuffer::filled(1i64, n * n);
        let s = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_1r1w(&dev, &a, &s, n, n);
        let st = dev.stats();
        let n2 = (n * n) as u64;
        let blocks = (m * m) as u64;
        let wu = w as u64;
        // Reads: block loads (n²) + top fringes + left fringes + corners.
        let interior_pairs = ((m - 1) * m) as u64; // blocks with bi>0, resp. bj>0
        let corners = ((m - 1) * (m - 1)) as u64;
        assert_eq!(
            st.coalesced_reads + st.stride_reads,
            n2 + interior_pairs * wu * 2 + corners
        );
        assert_eq!(st.coalesced_writes + st.stride_writes, n2);
        // The only stride accesses are the left-fringe columns.
        assert_eq!(st.stride_reads, interior_pairs * wu);
        assert_eq!(st.stride_writes, 0);
        // Barriers: 2m − 1 launches.
        assert_eq!(st.barrier_steps, (2 * m - 2) as u64);
        let _ = blocks;
    }

    #[test]
    fn order_independent_within_a_stage() {
        // Asynchronous HMM correctness: blocks within one stage may run in
        // any order on any worker.
        let (w, n) = (4usize, 32usize);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j) % 13) as i64 - 6);
        let want = sat_reference(&a);
        for seed in [1u64, 7, 99] {
            let dev = Device::new(
                DeviceOptions::new(MachineConfig::with_width(w))
                    .workers(3)
                    .order(BlockOrder::Shuffled(seed)),
            );
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, n * n);
            sat_1r1w(&dev, &ab, &sb, n, n);
            assert_eq!(sb.into_vec(), want.as_slice(), "seed={seed}");
        }
    }

    #[test]
    fn persistent_matches_reference_various_shapes_and_workers() {
        for (w, rows, cols) in [
            (4, 4, 4),
            (4, 16, 16),
            (4, 8, 32),
            (4, 32, 8),
            (3, 27, 9),
            (5, 35, 35),
        ] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17) % 23) as i64 - 11);
            let want = sat_reference(&a);
            for workers in [0usize, 1, 3] {
                let dev =
                    Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(workers));
                let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
                let sb = GlobalBuffer::filled(0i64, rows * cols);
                sat_1r1w_persistent(&dev, &ab, &sb, rows, cols);
                assert_eq!(
                    sb.into_vec(),
                    want.as_slice(),
                    "w={w} {rows}x{cols} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn persistent_is_one_launch_with_handoffs_instead_of_barriers() {
        // Same data movement as launch-per-stage 1R1W, plus one coalesced
        // word per flag operation — and zero barrier steps.
        let (w, n) = (8usize, 64usize);
        let m = n / w;
        let a = GlobalBuffer::filled(1i64, n * n);

        let staged = dev(w);
        let s1 = GlobalBuffer::filled(0i64, n * n);
        staged.reset_stats();
        sat_1r1w(&staged, &a, &s1, n, n);
        let st_staged = staged.stats();

        let pers = Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(0));
        let s2 = GlobalBuffer::filled(0i64, n * n);
        pers.reset_stats();
        sat_1r1w_persistent(&pers, &a, &s2, n, n);
        let st = pers.stats();

        assert_eq!(pers.launches(), 1, "the whole wavefront in one launch");
        assert_eq!(st.barrier_steps, 0);
        assert_eq!(st_staged.barrier_steps, (2 * m - 2) as u64);
        let fl = ((m - 1) * m) as u64; // blocks with a row below = blocks with a row above
        assert_eq!(st.handoff_publishes, fl);
        // workers(0) ⇒ one resident ⇒ every acquire succeeds on its first
        // poll, so acquires are deterministic too.
        assert_eq!(st.handoff_acquires, fl);
        assert_eq!(st_staged.handoff_publishes, 0);
        // Flag words ride the normal coalesced counters: one write per
        // publish, one read per (first-poll-success) acquire.
        assert_eq!(st.coalesced_writes, st_staged.coalesced_writes + fl);
        assert_eq!(st.coalesced_reads, st_staged.coalesced_reads + fl);
        assert_eq!(st.stride_reads, st_staged.stride_reads);
        assert_eq!(s2.into_vec(), s1.into_vec());
    }

    #[test]
    fn persistent_hazard_free_under_race_detector_and_adversarial_order() {
        // Race-checked buffers + adversarial claim order + staggered
        // residents: the handoff protocol alone must order every
        // cross-resident access.
        let (w, n) = (4usize, 32usize);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 13) as i64);
        for seed in [2u64, 11, 42] {
            let dev = Device::new(
                DeviceOptions::new(MachineConfig::with_width(w))
                    .workers(3)
                    .order(BlockOrder::Adversarial(seed)),
            );
            let ab = GlobalBuffer::from_vec_checked(a.as_slice().to_vec());
            let sb = GlobalBuffer::from_vec_checked(vec![0i64; n * n]);
            sat_1r1w_persistent(&dev, &ab, &sb, n, n);
            assert_eq!(sb.into_vec(), sat_reference(&a).into_vec(), "seed={seed}");
        }
    }

    #[test]
    fn persistent_grid_respects_resident_capacity() {
        // mr = 8 block-rows but only workers+1 = 3 residents may be
        // launched; the kernel multiplexes rows onto them.
        let (w, n) = (4usize, 32usize);
        let dev = Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2));
        assert_eq!(dev.resident_capacity(), 3);
        let a = Matrix::from_fn(n, n, |i, j| (i * 5 + j) as i64 % 9);
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let sb = GlobalBuffer::filled(0i64, n * n);
        sat_1r1w_persistent(&dev, &ab, &sb, n, n);
        assert_eq!(dev.launches(), 1);
        assert_eq!(sb.into_vec(), sat_reference(&a).into_vec());
    }

    #[test]
    fn persistent_fallback_leaves_handoff_stall_breadcrumb() {
        // Lose exactly the persistent launch (index 0): the driver falls
        // back to launch-per-stage, stays bit-exact, and records a single
        // HandoffStall flight event carrying the stage count and the
        // resident count it gave up on.
        use gpu_exec::{FaultPlan, LossWindow};
        let obs = obs::Obs::new();
        let (w, n) = (4usize, 16usize);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as i64 - 5);
        let dev = Device::new(
            DeviceOptions::new(MachineConfig::with_width(w))
                .workers(0)
                .observer(obs.clone())
                .fault_plan(FaultPlan::new(1).loss(LossWindow::Launches { start: 0, count: 1 })),
        );
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let sb = GlobalBuffer::filled(0i64, n * n);
        sat_1r1w_persistent(&dev, &ab, &sb, n, n);
        assert_eq!(sb.into_vec(), sat_reference(&a).into_vec());
        let stalls: Vec<_> = obs
            .flight_recent()
            .into_iter()
            .filter(|e| e.kind == obs::FlightKind::HandoffStall)
            .collect();
        assert_eq!(stalls.len(), 1, "one breadcrumb per fallback");
        let m = (n / w) as u64;
        assert_eq!(stalls[0].a, 2 * m - 1, "stage count");
        assert_eq!(stalls[0].b, 1, "workers(0) launches one resident");
    }

    #[test]
    fn mirror_variant_matches_reference() {
        for (w, rows, cols) in [(4, 16, 16), (4, 8, 32), (3, 27, 9), (8, 64, 64)] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17) % 23) as i64 - 11);
            let dev = dev(w);
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, rows * cols);
            sat_1r1w_mirror(&dev, &ab, &sb, rows, cols);
            assert_eq!(
                sb.into_vec(),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn mirror_variant_is_fully_coalesced() {
        let (w, n) = (8usize, 64usize);
        let m = n / w;
        let dev = dev(w);
        let a = GlobalBuffer::filled(1i64, n * n);
        let s = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_1r1w_mirror(&dev, &a, &s, n, n);
        let st = dev.stats();
        assert_eq!(st.stride_ops(), 0, "no stride access remains");
        // Trade: + n·m/w coalesced mirror writes per column… i.e. n·m total
        // extra writes, versus the plain variant's n·(m−1) stride reads.
        let n2 = (n * n) as u64;
        assert_eq!(st.coalesced_writes + st.stride_writes, n2 + (n * m) as u64);
    }

    #[test]
    fn mirror_under_race_detector_and_shuffle() {
        let (w, n) = (4usize, 32usize);
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 13) as i64);
        let dev = Device::new(
            DeviceOptions::new(MachineConfig::with_width(w))
                .workers(3)
                .order(BlockOrder::Shuffled(5)),
        );
        let ab = GlobalBuffer::from_vec_checked(a.as_slice().to_vec());
        let sb = GlobalBuffer::from_vec_checked(vec![0i64; n * n]);
        sat_1r1w_mirror(&dev, &ab, &sb, n, n);
        assert_eq!(sb.into_vec(), sat_reference(&a).into_vec());
    }

    #[test]
    fn hazard_free_under_race_detector() {
        // Every stage only reads SAT values finished in earlier launches;
        // the race detector would panic otherwise.
        let (w, n) = (4usize, 16usize);
        let a = Matrix::from_fn(n, n, |i, j| (i + j) as i64);
        let dev = dev(w);
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let sb = GlobalBuffer::from_vec_checked(vec![0i64; n * n]);
        sat_1r1w(&dev, &ab, &sb, n, n);
        assert_eq!(sb.into_vec(), sat_reference(&a).into_vec());
    }
}
