//! The **4R1W** SAT algorithm (§VI): element-wise anti-diagonal wavefront.
//!
//! Formula (1) of the paper,
//!
//! ```text
//! s(i,j) = a(i,j) + s(i−1,j) + s(i,j−1) − s(i−1,j−1),
//! ```
//!
//! evaluated stage by stage along anti-diagonals (Figure 10): stage `d`
//! computes every `s(i, d−i)` from values finished in stages `d−1` and
//! `d−2`. Per element: 4 reads + 1 write — but every access runs along an
//! anti-diagonal (pitch `n − 1`), so **all operations are stride**, and the
//! wavefront needs `2n − 1` barrier-separated launches. Lemma 5 prices this
//! at `5n² + 2nL`: the worst algorithm on the GPU despite doing the least
//! writing — the paper's cautionary tale, and the direct inspiration for the
//! *block-wise* wavefront of 1R1W.

use gpu_exec::{Device, GlobalBuffer};

use crate::element::SatElement;
use crate::par::common::Grid;

/// **4R1W**: the SAT of the `rows × cols` matrix in `buf`, in place, by
/// `rows + cols − 1` anti-diagonal launches.
pub fn sat_4r1w<T: SatElement>(dev: &Device, buf: &GlobalBuffer<T>, rows: usize, cols: usize) {
    let grid = Grid::new(rows, cols, dev.width());
    let w = grid.w;
    for d in 0..(rows + cols - 1) {
        // Elements (i, d−i) with both coordinates in range.
        let lo = d.saturating_sub(cols - 1);
        let hi = d.min(rows - 1);
        let len = hi - lo + 1;
        let launches = len.div_ceil(w);
        dev.launch(launches, |ctx| {
            let g = ctx.view(buf);
            let start = lo + ctx.block_id() * w;
            let lanes = w.min(hi + 1 - start);
            // Gather lanes for each operand of Formula (1); lane t handles
            // element (i, j) = (start + t, d − start − t).
            let addr = |i: usize, j: usize| grid.addr(i, j);
            let own: Vec<usize> = (0..lanes).map(|t| addr(start + t, d - start - t)).collect();
            let mut s = vec![T::ZERO; lanes];
            g.read_gather(&own, &mut s, ctx.rec());
            // s(i−1, j): lanes with i ≥ 1.
            let up: Vec<usize> = (0..lanes)
                .filter(|&t| start + t >= 1)
                .map(|t| addr(start + t - 1, d - start - t))
                .collect();
            if !up.is_empty() {
                let mut vals = vec![T::ZERO; up.len()];
                g.read_gather(&up, &mut vals, ctx.rec());
                let off = lanes - up.len(); // lanes missing "up" come first
                for (k, v) in vals.into_iter().enumerate() {
                    s[off + k] = s[off + k].add(v);
                }
            }
            // s(i, j−1): lanes with j ≥ 1.
            let left: Vec<usize> = (0..lanes)
                .filter(|&t| d - start - t >= 1)
                .map(|t| addr(start + t, d - start - t - 1))
                .collect();
            if !left.is_empty() {
                let mut vals = vec![T::ZERO; left.len()];
                g.read_gather(&left, &mut vals, ctx.rec());
                for (k, v) in vals.into_iter().enumerate() {
                    s[k] = s[k].add(v); // lanes missing "left" come last
                }
            }
            // s(i−1, j−1): lanes with i ≥ 1 and j ≥ 1.
            let diag: Vec<(usize, usize)> = (0..lanes)
                .filter(|&t| start + t >= 1 && d - start - t >= 1)
                .map(|t| (t, addr(start + t - 1, d - start - t - 1)))
                .collect();
            if !diag.is_empty() {
                let addrs: Vec<usize> = diag.iter().map(|&(_, a)| a).collect();
                let mut vals = vec![T::ZERO; addrs.len()];
                g.read_gather(&addrs, &mut vals, ctx.rec());
                for ((t, _), v) in diag.into_iter().zip(vals) {
                    s[t] = s[t].sub(v);
                }
            }
            g.write_scatter(&own, &s, ctx.rec());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn fig3_full_sat() {
        let dev = dev(FIG_BLOCK_WIDTH);
        let buf = GlobalBuffer::from_vec(fig3_input().into_vec());
        sat_4r1w(&dev, &buf, 9, 9);
        assert_eq!(buf.into_vec(), fig3_sat().into_vec());
    }

    #[test]
    fn fig10_stage_wavefront_prefix_is_correct_midway() {
        // Figure 10 illustrates stage 7 of the wavefront on the 9 × 9
        // example: after stages 0..=6 every element with i + j ≤ 6 holds its
        // final SAT value while later anti-diagonals still hold input data.
        // (Computed with the sequential recurrence, which the device kernel
        // is verified against in the other tests of this module.)
        let n = 9;
        let mut v = fig3_input().into_vec();
        for d in 0..=6usize {
            let lo = d.saturating_sub(n - 1);
            let hi = d.min(n - 1);
            for i in lo..=hi {
                let j = d - i;
                let mut x = v[i * n + j];
                if i >= 1 {
                    x = x.add(v[(i - 1) * n + j]);
                }
                if j >= 1 {
                    x = x.add(v[i * n + j - 1]);
                }
                if i >= 1 && j >= 1 {
                    x = x.sub(v[(i - 1) * n + j - 1]);
                }
                v[i * n + j] = x;
            }
        }
        let sat = fig3_sat();
        let input = fig3_input();
        for i in 0..n {
            for j in 0..n {
                if i + j <= 6 {
                    assert_eq!(v[i * n + j], sat.get(i, j), "finished ({i},{j})");
                } else {
                    assert_eq!(v[i * n + j], input.get(i, j), "untouched ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn matches_reference() {
        for (w, rows, cols) in [(4, 8, 8), (8, 16, 16), (3, 12, 12), (4, 8, 16), (4, 16, 8)] {
            let dev = dev(w);
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 7 + j * 3) % 19) as i64 - 9);
            let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
            sat_4r1w(&dev, &buf, rows, cols);
            assert_eq!(
                buf.into_vec(),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn all_interior_accesses_are_stride_and_barriers_are_2n_minus_2() {
        let (w, n) = (8usize, 32usize);
        let dev = dev(w);
        let buf = GlobalBuffer::filled(1i64, n * n);
        dev.reset_stats();
        sat_4r1w(&dev, &buf, n, n);
        let s = dev.stats();
        assert_eq!(s.barrier_steps, (2 * n - 2) as u64);
        let n2 = (n * n) as u64;
        // 1 own-read + 1 write per element is exact; neighbour reads are
        // skipped on the two boundary edges.
        let reads = s.coalesced_reads + s.stride_reads;
        let writes = s.coalesced_writes + s.stride_writes;
        assert_eq!(writes, n2);
        // own n² + up (n² − n) + left (n² − n) + diagonal (n − 1)².
        assert_eq!(reads, 4 * n2 - 4 * (n as u64) + 1);
        // Stride dominates: coalesced ops only appear in degenerate 1-lane
        // warps at diagonal tips.
        assert!(s.stride_reads > 3 * n2);
    }
}
