//! The straightforward **2R2W** SAT algorithm (§IV).
//!
//! Kernel 1 computes the column-wise prefix sums with one thread per column:
//! step `i` touches row `i`, so every warp access is **coalesced**. After one
//! barrier, kernel 2 computes the row-wise prefix sums with one thread per
//! row: step `j` touches column `j`, a **stride** access of pitch `cols`.
//! Per element: 2 reads + 2 writes; half of them stride — which is exactly
//! what makes this algorithm slow on the UMM (Lemma 2).

use gpu_exec::{Device, GlobalBuffer};

use crate::element::SatElement;
use crate::par::common::Grid;

/// Column-wise prefix sums of a `rows × cols` matrix, in place: one launch,
/// a grid of `cols/w` blocks, each block owning `w` adjacent columns. All
/// accesses coalesced. Shared with 4R4W.
pub fn column_prefix_kernel<T: SatElement>(
    dev: &Device,
    buf: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    let w = grid.w;
    dev.launch(grid.mc, |ctx| {
        let g = ctx.view(buf);
        let base_col = ctx.block_id() * w;
        let mut acc = vec![T::ZERO; w];
        g.read_contig(grid.addr(0, base_col), &mut acc, ctx.rec());
        let mut row = vec![T::ZERO; w];
        for i in 1..rows {
            g.read_contig(grid.addr(i, base_col), &mut row, ctx.rec());
            for t in 0..w {
                acc[t] = acc[t].add(row[t]);
            }
            g.write_contig(grid.addr(i, base_col), &acc, ctx.rec());
        }
    });
}

/// Row-wise prefix sums, in place: one launch, each block owning `w`
/// adjacent rows. Every access is a stride warp transaction of pitch `cols`.
pub fn row_prefix_kernel<T: SatElement>(
    dev: &Device,
    buf: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    let w = grid.w;
    dev.launch(grid.mr, |ctx| {
        let g = ctx.view(buf);
        let base_row = ctx.block_id() * w;
        let mut acc = vec![T::ZERO; w];
        g.read_strided(grid.addr(base_row, 0), cols, &mut acc, ctx.rec());
        let mut col = vec![T::ZERO; w];
        for j in 1..cols {
            g.read_strided(grid.addr(base_row, j), cols, &mut col, ctx.rec());
            for t in 0..w {
                acc[t] = acc[t].add(col[t]);
            }
            g.write_strided(grid.addr(base_row, j), cols, &acc, ctx.rec());
        }
    });
}

/// **2R2W**: the SAT of the `rows × cols` matrix in `buf`, in place.
/// Two launches (one barrier step).
pub fn sat_2r2w<T: SatElement>(dev: &Device, buf: &GlobalBuffer<T>, rows: usize, cols: usize) {
    column_prefix_kernel(dev, buf, rows, cols);
    row_prefix_kernel(dev, buf, rows, cols);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_column_prefix, fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn fig3_column_pass_on_device() {
        let dev = dev(FIG_BLOCK_WIDTH);
        let buf = GlobalBuffer::from_vec(fig3_input().into_vec());
        column_prefix_kernel(&dev, &buf, 9, 9);
        assert_eq!(buf.into_vec(), fig3_column_prefix().into_vec());
    }

    #[test]
    fn fig3_full_sat() {
        let dev = dev(FIG_BLOCK_WIDTH);
        let buf = GlobalBuffer::from_vec(fig3_input().into_vec());
        sat_2r2w(&dev, &buf, 9, 9);
        assert_eq!(buf.into_vec(), fig3_sat().into_vec());
    }

    #[test]
    fn matches_reference_on_random_sizes() {
        for (w, rows, cols) in [
            (4, 4, 4),
            (4, 16, 16),
            (8, 32, 32),
            (3, 27, 27),
            (4, 8, 20),
            (4, 20, 8),
        ] {
            let dev = dev(w);
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 37 + j * 11) % 23) as i64 - 11);
            let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
            sat_2r2w(&dev, &buf, rows, cols);
            assert_eq!(
                buf.into_vec(),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn access_pattern_counts_match_lemma2() {
        // Lemma 2: ≈ 2n² coalesced operations (column pass) and ≈ 2n²
        // stride operations (row pass), one barrier.
        let (w, n) = (8usize, 64usize);
        let dev = dev(w);
        let a = Matrix::from_fn(n, n, |i, j| (i + j) as i64);
        let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
        dev.reset_stats();
        sat_2r2w(&dev, &buf, n, n);
        let s = dev.stats();
        let n2 = (n * n) as u64;
        assert_eq!(s.coalesced_reads, n2);
        assert_eq!(s.coalesced_writes, n2 - n as u64); // row 0 is read, not rewritten
        assert_eq!(s.stride_reads, n2);
        assert_eq!(s.stride_writes, n2 - n as u64); // column 0 likewise
        assert_eq!(s.barrier_steps, 1);
    }
}
