//! Batched 1R1W: amortise the wavefront's latency across many images.
//!
//! 1R1W's weakness is its `2m − 1` barrier-separated stages whose corner
//! launches are too narrow to hide latency (§VII). When *several* matrices
//! need SATs (video frames, depth + depth² for shadow maps, image stacks),
//! the stages can be **fused across the batch**: stage `d` of every image
//! runs in one launch, so the launch count stays `2m − 1` while each launch
//! is `B×` wider. The corner stages of a 16-image batch hold 16 blocks
//! instead of one — enough to hide the latency the hybrid algorithm exists
//! to dodge. (The alternative the paper's hybrid embodies is still better
//! for a *single* matrix; this is the batch counterpart.)

use gpu_exec::{Device, GlobalBuffer, SharedTile};

use crate::element::SatElement;
use crate::par::common::{default_tile, load_block, tile_sat, Grid};

/// Batched **1R1W**: compute `outputs[k]` = SAT of `inputs[k]` for every
/// `k`, all matrices `rows × cols`, with the block wavefront fused across
/// the batch (`rows/w + cols/w − 1` launches in total, independent of the
/// batch size).
pub fn sat_1r1w_batch<T: SatElement>(
    dev: &Device,
    inputs: &[&GlobalBuffer<T>],
    outputs: &[&GlobalBuffer<T>],
    rows: usize,
    cols: usize,
) {
    assert_eq!(inputs.len(), outputs.len(), "one output per input");
    if inputs.is_empty() {
        return;
    }
    let grid = Grid::new(rows, cols, dev.width());
    for (a, s) in inputs.iter().zip(outputs) {
        assert!(
            a.len() >= rows * cols && s.len() >= rows * cols,
            "buffers too small"
        );
    }
    let w = grid.w;
    let batch = inputs.len();
    for d in 0..grid.diagonals() {
        let blocks: Vec<(usize, usize)> = grid.diagonal_blocks(d).collect();
        let per_image = blocks.len();
        dev.launch(per_image * batch, |ctx| {
            let id = ctx.block_id();
            let (img, which) = (id / per_image, id % per_image);
            let ga = ctx.view(inputs[img]);
            let gs = ctx.view(outputs[img]);
            let (bi, bj) = blocks[which];
            let (r0, c0) = grid.origin(bi, bj);
            let mut tile: SharedTile<T> = default_tile(ctx);
            load_block(ctx, &ga, grid, bi, bj, &mut tile);
            tile_sat(ctx, &mut tile);
            let mut top = vec![T::ZERO; w];
            if bi > 0 {
                gs.read_contig(grid.addr(r0 - 1, c0), &mut top, &mut ctx.rec);
            }
            let mut left = vec![T::ZERO; w];
            if bj > 0 {
                gs.read_strided(grid.addr(r0, c0 - 1), grid.cols, &mut left, &mut ctx.rec);
            }
            let corner = if bi > 0 && bj > 0 {
                gs.read(grid.addr(r0 - 1, c0 - 1), &mut ctx.rec)
            } else {
                T::ZERO
            };
            let mut row = vec![T::ZERO; w];
            for (i, l) in left.iter().enumerate() {
                tile.read_row(i, &mut row, &mut ctx.rec);
                let li = l.sub(corner);
                for j in 0..w {
                    row[j] = row[j].add(top[j]).add(li);
                }
                gs.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;
    use hmm_sim::AsyncHmm;

    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    fn images(batch: usize, rows: usize, cols: usize) -> Vec<Matrix<i64>> {
        (0..batch)
            .map(|k| {
                Matrix::from_fn(rows, cols, |i, j| {
                    ((i * 31 + j * 7 + k * 13) % 29) as i64 - 14
                })
            })
            .collect()
    }

    #[test]
    fn batch_matches_per_image_results() {
        let (w, rows, cols) = (4usize, 16usize, 24usize);
        let d = dev(w);
        let imgs = images(5, rows, cols);
        let ins: Vec<GlobalBuffer<i64>> = imgs
            .iter()
            .map(|m| GlobalBuffer::from_vec(m.as_slice().to_vec()))
            .collect();
        let outs: Vec<GlobalBuffer<i64>> = (0..5)
            .map(|_| GlobalBuffer::filled(0i64, rows * cols))
            .collect();
        sat_1r1w_batch(
            &d,
            &ins.iter().collect::<Vec<_>>(),
            &outs.iter().collect::<Vec<_>>(),
            rows,
            cols,
        );
        for (img, out) in imgs.iter().zip(outs) {
            assert_eq!(out.into_vec(), sat_reference(img).into_vec());
        }
    }

    #[test]
    fn launch_count_is_batch_independent() {
        let (w, n) = (4usize, 16usize);
        let m = n / w;
        for batch in [1usize, 4, 8] {
            let d = dev(w);
            let imgs = images(batch, n, n);
            let ins: Vec<GlobalBuffer<i64>> = imgs
                .iter()
                .map(|mx| GlobalBuffer::from_vec(mx.as_slice().to_vec()))
                .collect();
            let outs: Vec<GlobalBuffer<i64>> = (0..batch)
                .map(|_| GlobalBuffer::filled(0i64, n * n))
                .collect();
            d.reset_stats();
            sat_1r1w_batch(
                &d,
                &ins.iter().collect::<Vec<_>>(),
                &outs.iter().collect::<Vec<_>>(),
                n,
                n,
            );
            assert_eq!(d.launches() as usize, 2 * m - 1, "batch={batch}");
        }
    }

    #[test]
    fn batching_hides_latency_in_simulation() {
        // Simulated time per image must drop with batching: the fused
        // corner stages finally have enough blocks to fill the pipeline.
        let (w, n) = (8usize, 64usize);
        let cfg = MachineConfig::with_width(w).latency(200).num_dmms(64);
        let mut per_image = Vec::new();
        for batch in [1usize, 8] {
            let d = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
            let imgs = images(batch, n, n);
            let ins: Vec<GlobalBuffer<i64>> = imgs
                .iter()
                .map(|mx| GlobalBuffer::from_vec(mx.as_slice().to_vec()))
                .collect();
            let outs: Vec<GlobalBuffer<i64>> = (0..batch)
                .map(|_| GlobalBuffer::filled(0i64, n * n))
                .collect();
            sat_1r1w_batch(
                &d,
                &ins.iter().collect::<Vec<_>>(),
                &outs.iter().collect::<Vec<_>>(),
                n,
                n,
            );
            let sim = AsyncHmm::new(cfg).simulate(&d.take_trace());
            per_image.push(sim.total_time as f64 / batch as f64);
        }
        assert!(
            per_image[1] < per_image[0] * 0.7,
            "batched {} vs single {} time units per image",
            per_image[1],
            per_image[0]
        );
    }

    #[test]
    fn empty_batch_is_noop() {
        let d = dev(4);
        sat_1r1w_batch::<i64>(&d, &[], &[], 8, 8);
        assert_eq!(d.launches(), 0);
    }

    #[test]
    #[should_panic(expected = "one output per input")]
    fn mismatched_batch_rejected() {
        let d = dev(4);
        let a = GlobalBuffer::filled(0i64, 64);
        sat_1r1w_batch(&d, &[&a], &[], 8, 8);
    }
}
