//! The hybrid **(1+r²)R1W** SAT algorithm (§VII).
//!
//! 1R1W is traffic-optimal but pays `2·(n/w) − 1` barrier-separated stages;
//! near the matrix corners those stages contain very few blocks, so the
//! per-stage latency is pure overhead. The hybrid (Figure 12) therefore
//! partitions the block grid by a ratio `r ∈ [0, 1]`:
//!
//! * **(A)** the top-left triangle of the first `⌊r·m⌋` block
//!   anti-diagonals — computed by (region) 2R1W in a constant number of
//!   launches;
//! * **(C)** the middle diagonals — computed by 1R1W wavefront stages, whose
//!   launches are now "wide" and amortise their latency;
//! * **(B)** the bottom-right triangle — (region) 2R1W again, seeded from
//!   the finished values.
//!
//! Reads per element: 2 in the triangles (`r²n²` elements), 1 in the middle
//! (`(1 − r²)n²`) — i.e. `(1 + r²)` on average; writes: 1. Theorem 7 prices
//! the whole at `(2 + r²)n²/w + (2(1 − r)n/w + O(k))·L`; minimising over `r`
//! trades triangle traffic against wavefront latency, and the optimal `r`
//! shrinks as `n` grows (Table II's last rows).
//!
//! `r = 0` degenerates to pure 1R1W; `r = 1` to 2R1W on two triangles.

use gpu_exec::{Device, GlobalBuffer};

use crate::element::SatElement;
use crate::par::common::Grid;
use crate::par::one_r1w::one_r1w_stage;
use crate::par::region::{sat_2r1w_region, Region};

/// Number of leading block anti-diagonals the ratio `r` assigns to each
/// corner triangle, for an `m × m` (or rectangular, `m = min(mr, mc)`)
/// block grid.
pub fn triangle_diagonals(m: usize, r: f64) -> usize {
    assert!((0.0..=1.0).contains(&r), "r must lie in [0, 1], got {r}");
    ((r * m as f64).round() as usize).min(m)
}

/// **(1+r²)R1W**: compute into `s` the SAT of the `rows × cols` matrix in
/// `a`, splitting the work between 2R1W corner triangles and a 1R1W middle
/// according to `r ∈ [0, 1]` (triangles span `r·min(mr, mc)` block
/// anti-diagonals).
pub fn sat_hybrid<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    s: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    r: f64,
) {
    let grid = Grid::new(rows, cols, dev.width());
    let diags = triangle_diagonals(grid.mr.min(grid.mc), r);
    if diags == 0 {
        // Pure 1R1W.
        for d in 0..grid.diagonals() {
            one_r1w_stage(dev, a, s, grid, d);
        }
        return;
    }
    // (A) top-left triangle.
    sat_2r1w_region(dev, a, s, grid, Region::UpperLeft { diags });
    // (C) middle wavefront.
    let b_start = (grid.diagonals() - diags).max(diags);
    for d in diags..b_start {
        one_r1w_stage(dev, a, s, grid, d);
    }
    // (B) bottom-right staircase.
    sat_2r1w_region(dev, a, s, grid, Region::LowerRight { start: b_start });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{BlockOrder, Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn triangle_sizing() {
        assert_eq!(triangle_diagonals(8, 0.0), 0);
        assert_eq!(triangle_diagonals(8, 1.0), 8);
        assert_eq!(triangle_diagonals(8, 0.5), 4);
        assert_eq!(triangle_diagonals(8, 0.06), 0); // rounds down
        assert_eq!(triangle_diagonals(8, 0.07), 1); // rounds up
    }

    #[test]
    #[should_panic(expected = "lie in [0, 1]")]
    fn invalid_ratio_rejected() {
        triangle_diagonals(8, 1.5);
    }

    #[test]
    fn fig3_all_ratios() {
        // m = 3 admits r ∈ {0, ⅓, ⅔, 1}.
        for r in [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0] {
            let dev = dev(FIG_BLOCK_WIDTH);
            let a = GlobalBuffer::from_vec(fig3_input().into_vec());
            let s = GlobalBuffer::filled(0i64, 81);
            sat_hybrid(&dev, &a, &s, 9, 9, r);
            assert_eq!(s.into_vec(), fig3_sat().into_vec(), "r={r}");
        }
    }

    #[test]
    fn every_admissible_ratio_matches_reference() {
        let (w, n) = (4usize, 24usize);
        let m = n / w;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 19 + j * 23) % 29) as i64 - 14);
        let want = sat_reference(&a);
        for k in 0..=m {
            let r = k as f64 / m as f64;
            let dev = dev(w);
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, n * n);
            sat_hybrid(&dev, &ab, &sb, n, n, r);
            assert_eq!(sb.into_vec(), want.as_slice(), "r={r}");
        }
    }

    #[test]
    fn rectangles_every_ratio() {
        let w = 4usize;
        for (rows, cols) in [(8usize, 32usize), (32, 8), (12, 20)] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 3 + j * 13) % 23) as i64 - 11);
            let want = sat_reference(&a);
            let mmin = (rows / w).min(cols / w);
            for k in 0..=mmin {
                let r = k as f64 / mmin as f64;
                let dev = dev(w);
                let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
                let sb = GlobalBuffer::filled(0i64, rows * cols);
                sat_hybrid(&dev, &ab, &sb, rows, cols, r);
                assert_eq!(sb.into_vec(), want.as_slice(), "{rows}x{cols} r={r}");
            }
        }
    }

    #[test]
    fn launch_count_shrinks_with_r() {
        // The whole point: larger triangles remove wavefront stages.
        let (w, n) = (4usize, 64usize);
        let m = n / w;
        let mut launches = Vec::new();
        for r in [0.0, 0.5, 1.0] {
            let dev = dev(w);
            let a = GlobalBuffer::filled(1i64, n * n);
            let s = GlobalBuffer::filled(0i64, n * n);
            dev.reset_stats();
            sat_hybrid(&dev, &a, &s, n, n, r);
            launches.push(dev.launches());
        }
        assert_eq!(launches[0], (2 * m - 1) as u64); // pure 1R1W
        assert!(launches[1] < launches[0]);
        assert!(launches[2] < launches[1]);
    }

    #[test]
    fn reads_per_element_interpolate_with_r() {
        // (1 + r²) reads per element, up to fringe terms.
        let (w, n) = (16usize, 256usize);
        for (r, expect) in [(0.0, 1.0), (0.5, 1.25), (1.0, 2.0)] {
            let dev = dev(w);
            let a = GlobalBuffer::filled(1i64, n * n);
            let s = GlobalBuffer::filled(0i64, n * n);
            dev.reset_stats();
            sat_hybrid(&dev, &a, &s, n, n, r);
            let got = dev.stats().reads_per_element(n);
            assert!(
                (got - expect).abs() < 0.45,
                "r={r}: reads/elt {got} vs (1+r²) = {expect}"
            );
            let wr = dev.stats().writes_per_element(n);
            assert!((1.0..1.4).contains(&wr), "r={r}: writes/elt {wr}");
        }
    }

    #[test]
    fn shuffled_block_order_and_race_detector() {
        let (w, n) = (4usize, 32usize);
        let a = Matrix::from_fn(n, n, |i, j| ((3 * i + 5 * j) % 7) as i64);
        let want = sat_reference(&a);
        let dev = Device::new(
            DeviceOptions::new(MachineConfig::with_width(w))
                .workers(3)
                .order(BlockOrder::Shuffled(2024)),
        );
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let sb = GlobalBuffer::from_vec_checked(vec![0i64; n * n]);
        sat_hybrid(&dev, &ab, &sb, n, n, 0.5);
        assert_eq!(sb.into_vec(), want.as_slice());
    }
}
