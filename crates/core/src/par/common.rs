//! Shared machinery of the block-structured GPU algorithms.

use gpu_exec::{BlockCtx, GlobalView, SharedTile, TileLayout};

use crate::element::SatElement;

/// Geometry of a `rows × cols` matrix partitioned into `mr × mc` blocks of
/// `w × w` elements (`rows = mr·w`, `cols = mc·w`).
///
/// The paper presents its algorithms for square matrices; every block
/// algorithm in this crate is implemented for the rectangular
/// generalisation (an image is rarely square), and the square case is
/// [`Grid::square`].
#[derive(Debug, Clone, Copy)]
pub struct Grid {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns (the row pitch of the backing buffer).
    pub cols: usize,
    /// Block side = machine width.
    pub w: usize,
    /// Blocks per column (`rows / w`).
    pub mr: usize,
    /// Blocks per row (`cols / w`).
    pub mc: usize,
}

impl Grid {
    /// Geometry for a `rows × cols` matrix and width `w`.
    ///
    /// # Panics
    /// Panics unless both sides are positive multiples of `w` — the block
    /// algorithms' shape; [`crate::compute_sat`] pads arbitrary inputs.
    pub fn new(rows: usize, cols: usize, w: usize) -> Self {
        assert!(
            rows > 0 && rows % w == 0,
            "rows = {rows} must be a positive multiple of w = {w}"
        );
        assert!(
            cols > 0 && cols % w == 0,
            "cols = {cols} must be a positive multiple of w = {w}"
        );
        Grid {
            rows,
            cols,
            w,
            mr: rows / w,
            mc: cols / w,
        }
    }

    /// Geometry for an `n × n` matrix (the paper's setting).
    pub fn square(n: usize, w: usize) -> Self {
        Self::new(n, n, w)
    }

    /// Row-major word address of element `(row, col)`.
    #[inline]
    pub fn addr(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// Total blocks.
    #[inline]
    pub fn blocks(&self) -> usize {
        self.mr * self.mc
    }

    /// Block coordinates of a row-major block id.
    #[inline]
    pub fn block_of(&self, id: usize) -> (usize, usize) {
        (id / self.mc, id % self.mc)
    }

    /// Top-left element of block `(bi, bj)`.
    #[inline]
    pub fn origin(&self, bi: usize, bj: usize) -> (usize, usize) {
        (bi * self.w, bj * self.w)
    }

    /// Number of block anti-diagonals (`mr + mc − 1`).
    pub fn diagonals(&self) -> usize {
        self.mr + self.mc - 1
    }

    /// The blocks `(bi, bj)` with `bi + bj = d`, in increasing `bi`.
    pub fn diagonal_blocks(&self, d: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let lo = d.saturating_sub(self.mc - 1);
        let hi = d.min(self.mr - 1);
        (lo..=hi).map(move |bi| (bi, d - bi))
    }
}

/// Load block `(bi, bj)` of the global matrix into a shared tile, one
/// coalesced row read per tile row.
pub fn load_block<T: SatElement>(
    ctx: &mut BlockCtx<'_>,
    g: &GlobalView<'_, T>,
    grid: Grid,
    bi: usize,
    bj: usize,
    tile: &mut SharedTile<T>,
) {
    let w = grid.w;
    let (r0, c0) = grid.origin(bi, bj);
    let mut row = vec![T::ZERO; w];
    for i in 0..w {
        g.read_contig(grid.addr(r0 + i, c0), &mut row, &mut ctx.rec);
        tile.write_row(i, &row, &mut ctx.rec);
    }
}

/// Store a shared tile to block `(bi, bj)` of the global matrix, one
/// coalesced row write per tile row.
pub fn store_block<T: SatElement>(
    ctx: &mut BlockCtx<'_>,
    g: &GlobalView<'_, T>,
    grid: Grid,
    bi: usize,
    bj: usize,
    tile: &SharedTile<T>,
) {
    let w = grid.w;
    let (r0, c0) = grid.origin(bi, bj);
    let mut row = vec![T::ZERO; w];
    for i in 0..w {
        tile.read_row(i, &mut row, &mut ctx.rec);
        g.write_contig(grid.addr(r0 + i, c0), &row, &mut ctx.rec);
    }
}

/// Compute the SAT of a `w × w` tile in shared memory: column-wise prefix
/// sums by row operations, then row-wise prefix sums by column operations.
/// With [`TileLayout::Diagonal`] every access is bank-conflict-free
/// (Lemma 1); with [`TileLayout::RowMajor`] the second pass pays a `w`-way
/// conflict per step — the ablation the diagonal arrangement exists for.
pub fn tile_sat<T: SatElement>(ctx: &mut BlockCtx<'_>, tile: &mut SharedTile<T>) {
    let w = tile.width();
    let mut prev = vec![T::ZERO; w];
    let mut cur = vec![T::ZERO; w];
    // Column-wise prefix sums: row i += row i−1.
    for i in 1..w {
        tile.read_row(i - 1, &mut prev, &mut ctx.rec);
        tile.read_row(i, &mut cur, &mut ctx.rec);
        for t in 0..w {
            cur[t] = cur[t].add(prev[t]);
        }
        tile.write_row(i, &cur, &mut ctx.rec);
    }
    // Row-wise prefix sums: column j += column j−1.
    for j in 1..w {
        tile.read_col(j - 1, &mut prev, &mut ctx.rec);
        tile.read_col(j, &mut cur, &mut ctx.rec);
        for t in 0..w {
            cur[t] = cur[t].add(prev[t]);
        }
        tile.write_col(j, &cur, &mut ctx.rec);
    }
}

/// Allocate the tile layout the algorithms use by default (diagonal, per
/// Lemma 1). Kept in one place so ablations can switch it.
pub fn default_tile<T: SatElement>(ctx: &mut BlockCtx<'_>) -> SharedTile<T> {
    ctx.shared_tile(TileLayout::Diagonal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
    use hmm_model::MachineConfig;

    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    #[test]
    fn grid_geometry_square() {
        let g = Grid::square(12, 4);
        assert_eq!((g.mr, g.mc), (3, 3));
        assert_eq!(g.addr(2, 5), 29);
        assert_eq!(g.block_of(5), (1, 2));
        assert_eq!(g.origin(1, 2), (4, 8));
        assert_eq!(g.diagonals(), 5);
        let d2: Vec<_> = g.diagonal_blocks(2).collect();
        assert_eq!(d2, vec![(0, 2), (1, 1), (2, 0)]);
        let d4: Vec<_> = g.diagonal_blocks(4).collect();
        assert_eq!(d4, vec![(2, 2)]);
    }

    #[test]
    fn grid_geometry_rect() {
        // 8 × 20 matrix, w = 4: 2 × 5 blocks.
        let g = Grid::new(8, 20, 4);
        assert_eq!((g.mr, g.mc), (2, 5));
        assert_eq!(g.blocks(), 10);
        assert_eq!(g.addr(1, 3), 23);
        assert_eq!(g.block_of(7), (1, 2));
        assert_eq!(g.diagonals(), 6);
        let d0: Vec<_> = g.diagonal_blocks(0).collect();
        assert_eq!(d0, vec![(0, 0)]);
        let d3: Vec<_> = g.diagonal_blocks(3).collect();
        assert_eq!(d3, vec![(0, 3), (1, 2)]);
        let d5: Vec<_> = g.diagonal_blocks(5).collect();
        assert_eq!(d5, vec![(1, 4)]);
        // Tall matrix.
        let t = Grid::new(20, 8, 4);
        assert_eq!((t.mr, t.mc), (5, 2));
        let d3: Vec<_> = t.diagonal_blocks(3).collect();
        assert_eq!(d3, vec![(2, 1), (3, 0)]);
    }

    #[test]
    #[should_panic(expected = "multiple of w")]
    fn grid_rejects_non_multiple() {
        Grid::new(10, 12, 4);
    }

    #[test]
    fn tile_sat_matches_reference_both_layouts() {
        let w = 8;
        let cfg = MachineConfig::with_width(w);
        let dev = Device::new(DeviceOptions::new(cfg).workers(0));
        let a = Matrix::from_fn(w, w, |i, j| (i * 3 + j * 5) as i64 % 11 - 5);
        let want = sat_reference(&a);
        for layout in [TileLayout::Diagonal, TileLayout::RowMajor] {
            let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let out = GlobalBuffer::filled(0i64, w * w);
            dev.launch(1, |ctx| {
                let gin = ctx.view(&buf);
                let gout = ctx.view(&out);
                let grid = Grid::square(w, w);
                let mut tile: SharedTile<i64> = ctx.shared_tile(layout);
                load_block(ctx, &gin, grid, 0, 0, &mut tile);
                tile_sat(ctx, &mut tile);
                store_block(ctx, &gout, grid, 0, 0, &tile);
            });
            assert_eq!(out.into_vec(), want.as_slice(), "{layout:?}");
        }
    }

    #[test]
    fn diagonal_layout_has_fewer_shared_stages() {
        let w = 8;
        let cfg = MachineConfig::with_width(w);
        let mut stages = Vec::new();
        for layout in [TileLayout::Diagonal, TileLayout::RowMajor] {
            let dev = Device::new(DeviceOptions::new(cfg).workers(0));
            let buf = GlobalBuffer::filled(1i64, w * w);
            dev.launch(1, |ctx| {
                let g = ctx.view(&buf);
                let grid = Grid::square(w, w);
                let mut tile: SharedTile<i64> = ctx.shared_tile(layout);
                load_block(ctx, &g, grid, 0, 0, &mut tile);
                tile_sat(ctx, &mut tile);
            });
            stages.push(dev.stats().shared_stages);
        }
        // Row-major pays w stages per column operation in the second pass.
        assert!(
            stages[1] > stages[0] * 2,
            "diagonal {} vs row-major {}",
            stages[0],
            stages[1]
        );
    }
}
