//! The **4R4W** SAT algorithm (§IV): trade traffic for coalescing.
//!
//! 2R2W's row-wise pass is stride access, which the UMM charges `w` times
//! more than coalesced access. 4R4W replaces it by *transpose → column-wise
//! prefix sums → transpose*, so **every** access is coalesced, at the price
//! of doubling the traffic: 4 reads + 4 writes per element, 4 launches,
//! 3 barriers (Lemma 3). For large matrices it beats 2R2W handily —
//! experimental evidence in the paper that "stride memory access imposes a
//! large penalty".

use gpu_exec::{Device, GlobalBuffer};

use crate::element::SatElement;
use crate::par::two_r2w::column_prefix_kernel;
use crate::transpose::transpose;

/// **4R4W**: the SAT of the `rows × cols` matrix in `buf`, in place, using
/// `tmp` (same word count) as the transpose staging buffer. Four launches,
/// all accesses coalesced.
pub fn sat_4r4w<T: SatElement>(
    dev: &Device,
    buf: &GlobalBuffer<T>,
    tmp: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    assert!(
        buf.len() >= rows * cols && tmp.len() >= rows * cols,
        "buffers too small"
    );
    column_prefix_kernel(dev, buf, rows, cols); // column-wise prefix sums
    transpose(dev, buf, tmp, rows, cols); // rows become columns (tmp: cols × rows)
    column_prefix_kernel(dev, tmp, cols, rows); // row-wise prefix sums, coalesced
    transpose(dev, tmp, buf, cols, rows); // back to original orientation
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn fig3_full_sat() {
        let dev = dev(FIG_BLOCK_WIDTH);
        let buf = GlobalBuffer::from_vec(fig3_input().into_vec());
        let tmp = GlobalBuffer::filled(0i64, 81);
        sat_4r4w(&dev, &buf, &tmp, 9, 9);
        assert_eq!(buf.into_vec(), fig3_sat().into_vec());
    }

    #[test]
    fn matches_reference() {
        for (w, rows, cols) in [(4, 8, 8), (8, 32, 32), (5, 25, 25), (4, 8, 24), (4, 24, 8)] {
            let dev = dev(w);
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 13 + j * 29) % 17) as i64 - 8);
            let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let tmp = GlobalBuffer::filled(0i64, rows * cols);
            sat_4r4w(&dev, &buf, &tmp, rows, cols);
            assert_eq!(
                buf.into_vec(),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn no_stride_access_and_three_barriers() {
        // Lemma 3: ≈ 8n²/w cost — 4n² reads + 4n² writes, all coalesced,
        // 3 barrier steps.
        let (w, n) = (8usize, 64usize);
        let dev = dev(w);
        let buf = GlobalBuffer::filled(1i64, n * n);
        let tmp = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_4r4w(&dev, &buf, &tmp, n, n);
        let s = dev.stats();
        let n2 = (n * n) as u64;
        assert_eq!(s.stride_reads + s.stride_writes, 0);
        assert_eq!(s.coalesced_reads, 4 * n2);
        assert_eq!(s.coalesced_writes, 4 * n2 - 2 * n as u64); // prefix passes skip row 0
        assert_eq!(s.barrier_steps, 3);
    }
}
