//! Parallel SAT algorithms for the asynchronous HMM, as `gpu-exec` kernels.

pub mod band;
pub mod batch;
pub mod common;
pub mod four_r1w;
pub mod four_r4w;
pub mod hybrid;
pub mod kogge_stone;
pub mod one_r1w;
pub mod region;
pub mod two_r1w;
pub mod two_r2w;

pub use band::{
    band_colsum, band_wavefront, band_wavefront_stage, margin_exchange, sat_1r1w_banded, Band,
    BandPlan,
};
pub use batch::sat_1r1w_batch;
pub use common::Grid;
pub use four_r1w::sat_4r1w;
pub use four_r4w::sat_4r4w;
pub use hybrid::{sat_hybrid, triangle_diagonals};
pub use kogge_stone::sat_kogge_stone;
pub use one_r1w::{
    one_r1w_persistent, one_r1w_stage, sat_1r1w, sat_1r1w_mirror, sat_1r1w_persistent,
};
pub use region::{sat_2r1w_region, Region};
pub use two_r1w::sat_2r1w;
pub use two_r2w::{column_prefix_kernel, row_prefix_kernel, sat_2r2w};
