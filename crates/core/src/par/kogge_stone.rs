//! The log-step (Kogge–Stone) SAT — the paper's reference [13] baseline.
//!
//! Before the block algorithms, Nakano's *"Optimal parallel algorithms for
//! computing the sum, the prefix-sums, and the summed area table on the
//! memory machine models"* computed the SAT by **repeated pairwise
//! addition**: `⌈log₂ n⌉` rounds of `a[i][j] += a[i − 2^k][j]` for the
//! column-wise prefix sums and the same along rows. On the UMM this is
//! latency-optimal — every round is one wide coalesced kernel — but it
//! performs `Θ(n² log n)` operations instead of `Θ(n²)`; the ICPP 2014
//! paper's §I dismisses it as *"repeats pairwise addition and has a large
//! constant factor in the computing time and it is not practically
//! efficient"*. This module implements it so the claim is measurable: at
//! `n = 1024` it moves ~`4·log₂(1024) = 40` operations per element against
//! 2R1W's ~3.2 (see the `ablation`/`algorithm_tour` outputs).
//!
//! Row rounds are kept coalesced via the 4R4W trick (transpose, column
//! rounds, transpose back); `2·⌈log₂ n⌉ + 2` launches in total. Each round
//! must be double-buffered (`a[i] += a[i − 2^k]` reads values the same
//! round overwrites), which is where the extra writes come from.

use gpu_exec::{Device, GlobalBuffer};

use crate::element::SatElement;
use crate::par::common::Grid;
use crate::transpose::transpose;

/// One Kogge–Stone column round: `dst[i][j] = src[i][j] + src[i − d][j]`
/// (`src` untouched — the rounds ping-pong between two buffers).
fn column_round<T: SatElement>(
    dev: &Device,
    src: &GlobalBuffer<T>,
    dst: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    d: usize,
) {
    let grid = Grid::new(rows, cols, dev.width());
    let w = grid.w;
    dev.launch(grid.mc, |ctx| {
        let gs = ctx.view(src);
        let gd = ctx.view(dst);
        let c0 = ctx.block_id() * w;
        let mut cur = vec![T::ZERO; w];
        let mut up = vec![T::ZERO; w];
        for i in 0..rows {
            gs.read_contig(grid.addr(i, c0), &mut cur, &mut ctx.rec);
            if i >= d {
                gs.read_contig(grid.addr(i - d, c0), &mut up, &mut ctx.rec);
                for t in 0..w {
                    cur[t] = cur[t].add(up[t]);
                }
            }
            gd.write_contig(grid.addr(i, c0), &cur, &mut ctx.rec);
        }
    });
}

/// All `⌈log₂ rows⌉` column rounds, ping-ponging `a` ↔ `tmp`; the result is
/// left in `a` (an extra copy round runs if the round count is odd).
fn column_prefix_kogge_stone<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    tmp: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    let mut d = 1usize;
    let mut in_a = true; // current values live in `a`
    while d < rows {
        let (src, dst) = if in_a { (a, tmp) } else { (tmp, a) };
        column_round(dev, src, dst, rows, cols, d);
        in_a = !in_a;
        d *= 2;
    }
    if !in_a {
        // Copy back with a d = rows no-op round (adds nothing, moves data).
        column_round(dev, tmp, a, rows, cols, rows);
    }
}

/// **Kogge–Stone SAT**: the SAT of the `rows × cols` matrix in `a`, using
/// `tmp` (same size) as the ping-pong/transpose buffer.
/// `Θ(log n)` wide coalesced launches, `Θ(n² log n)` operations.
pub fn sat_kogge_stone<T: SatElement>(
    dev: &Device,
    a: &GlobalBuffer<T>,
    tmp: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
) {
    assert!(
        a.len() >= rows * cols && tmp.len() >= rows * cols,
        "buffers too small"
    );
    column_prefix_kogge_stone(dev, a, tmp, rows, cols);
    transpose(dev, a, tmp, rows, cols);
    column_prefix_kogge_stone(dev, tmp, a, cols, rows);
    transpose(dev, tmp, a, cols, rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{Device, DeviceOptions};
    use hmm_model::MachineConfig;

    use crate::fixtures::{fig3_input, fig3_sat, FIG_BLOCK_WIDTH};
    use crate::matrix::Matrix;
    use crate::seq::sat_reference;

    fn dev(w: usize) -> Device {
        Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(2))
    }

    #[test]
    fn fig3_full_sat() {
        let dev = dev(FIG_BLOCK_WIDTH);
        let buf = GlobalBuffer::from_vec(fig3_input().into_vec());
        let tmp = GlobalBuffer::filled(0i64, 81);
        sat_kogge_stone(&dev, &buf, &tmp, 9, 9);
        assert_eq!(buf.into_vec(), fig3_sat().into_vec());
    }

    #[test]
    fn matches_reference_squares_and_rects() {
        for (w, rows, cols) in [
            (4, 4, 4),
            (4, 8, 8),
            (4, 16, 16),
            (4, 64, 64), // even round count
            (4, 32, 32),
            (3, 27, 27),
            (4, 8, 32),
            (4, 32, 8),
        ] {
            let a = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17) % 23) as i64 - 11);
            let dev = dev(w);
            let buf = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let tmp = GlobalBuffer::filled(0i64, rows * cols);
            sat_kogge_stone(&dev, &buf, &tmp, rows, cols);
            assert_eq!(
                buf.into_vec(),
                sat_reference(&a).into_vec(),
                "w={w} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn traffic_grows_logarithmically() {
        // The paper's §I complaint, measured: per-element operations grow
        // with log n while 2R1W's stay flat.
        let w = 8usize;
        let mut per_elt = Vec::new();
        for n in [64usize, 256, 1024] {
            let dev = dev(w);
            let buf = GlobalBuffer::filled(1i64, n * n);
            let tmp = GlobalBuffer::filled(0i64, n * n);
            dev.reset_stats();
            sat_kogge_stone(&dev, &buf, &tmp, n, n);
            let s = dev.stats();
            per_elt.push(s.global_ops() as f64 / (n * n) as f64);
            assert_eq!(s.stride_ops(), 0, "all rounds coalesced");
        }
        assert!(per_elt[1] > per_elt[0] + 3.0, "{per_elt:?}");
        assert!(per_elt[2] > per_elt[1] + 3.0, "{per_elt:?}");
        // ~4 ops per element per round (2 passes × (2 reads + 1 write) ≈ 3,
        // plus transposes): at n = 1024 that is ≥ 35 ops/element, an order
        // of magnitude above 2R1W's ≈ 3.2.
        assert!(per_elt[2] > 30.0, "{per_elt:?}");
    }

    #[test]
    fn few_launches_many_ops() {
        let (w, n) = (8usize, 256usize);
        let dev = dev(w);
        let buf = GlobalBuffer::filled(1i64, n * n);
        let tmp = GlobalBuffer::filled(0i64, n * n);
        dev.reset_stats();
        sat_kogge_stone(&dev, &buf, &tmp, n, n);
        // 8 rounds per pass (log₂ 256) + possible copy + 2 transposes.
        assert!(dev.launches() <= 2 * 9 + 2, "{}", dev.launches());
    }
}
