//! Property tests for the core SAT library (device algorithms, scan,
//! transpose, mirror variant) over randomly shaped rectangular inputs.

use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_model::MachineConfig;
use proptest::prelude::*;
use sat_core::par;
use sat_core::scan::{exclusive_scan, inclusive_scan, inclusive_scan_host};
use sat_core::seq::sat_reference;
use sat_core::transpose::transpose;
use sat_core::Matrix;

fn dev(w: usize) -> Device {
    Device::new(DeviceOptions::new(MachineConfig::with_width(w)).workers(1))
}

/// Random block-aligned rectangle: (w, rows, cols) with both sides
/// multiples of w.
fn arb_grid() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..=6, 1usize..=6, 1usize..=6).prop_map(|(w, mr, mc)| (w, mr * w, mc * w))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn one_r1w_and_mirror_agree_on_rectangles(
        (w, rows, cols) in arb_grid(),
        seed in 0i64..1000,
    ) {
        let a = Matrix::from_fn(rows, cols, |i, j| ((i as i64 * 31 + j as i64 * 7 + seed) % 41) - 20);
        let want = sat_reference(&a);
        let d = dev(w);
        for mirror in [false, true] {
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, rows * cols);
            if mirror {
                par::sat_1r1w_mirror(&d, &ab, &sb, rows, cols);
            } else {
                par::sat_1r1w(&d, &ab, &sb, rows, cols);
            }
            prop_assert_eq!(sb.into_vec(), want.as_slice(), "mirror={} {}x{}", mirror, rows, cols);
        }
    }

    #[test]
    fn two_r1w_matches_region_full_on_rectangles(
        (w, rows, cols) in arb_grid(),
        seed in 0i64..1000,
    ) {
        let a = Matrix::from_fn(rows, cols, |i, j| ((i as i64 * 13 + j as i64 * 17 + seed) % 23) - 11);
        let d = dev(w);
        let grid = par::Grid::new(rows, cols, w);
        let r1 = {
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, rows * cols);
            par::sat_2r1w(&d, &ab, &sb, rows, cols);
            sb.into_vec()
        };
        let r2 = {
            let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
            let sb = GlobalBuffer::filled(0i64, rows * cols);
            par::sat_2r1w_region(&d, &ab, &sb, grid, par::Region::Full);
            sb.into_vec()
        };
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(r1, sat_reference(&a).into_vec());
    }

    #[test]
    fn kogge_stone_matches_reference((w, rows, cols) in arb_grid(), seed in 0i64..100) {
        let a = Matrix::from_fn(rows, cols, |i, j| ((i as i64 * 5 + j as i64 * 3 + seed) % 19) - 9);
        let d = dev(w);
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let tmp = GlobalBuffer::filled(0i64, rows * cols);
        par::sat_kogge_stone(&d, &ab, &tmp, rows, cols);
        prop_assert_eq!(ab.into_vec(), sat_reference(&a).into_vec());
    }

    #[test]
    fn transpose_round_trip_rectangles((w, rows, cols) in arb_grid(), seed in 0i64..100) {
        let a = Matrix::from_fn(rows, cols, |i, j| (i as i64 * 101 + j as i64 + seed) % 257);
        let d = dev(w);
        let src = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let t = GlobalBuffer::filled(0i64, rows * cols);
        transpose(&d, &src, &t, rows, cols);
        let tv = t.into_vec();
        let at = a.transposed();
        prop_assert_eq!(&tv, at.as_slice());
        let t2 = GlobalBuffer::from_vec(tv);
        let back = GlobalBuffer::filled(0i64, rows * cols);
        transpose(&d, &t2, &back, cols, rows);
        prop_assert_eq!(back.into_vec(), a.into_vec());
    }

    #[test]
    fn scan_matches_host(len in 0usize..3000, w in 2usize..=8, seed in 0i64..100) {
        let v: Vec<i64> = (0..len).map(|i| (i as i64 * 7 + seed) % 31 - 15).collect();
        let d = dev(w);
        let input = GlobalBuffer::from_vec(v.clone());
        let output = GlobalBuffer::filled(0i64, len);
        inclusive_scan(&d, &input, &output, len);
        prop_assert_eq!(output.into_vec(), inclusive_scan_host(&v));
    }

    #[test]
    fn exclusive_plus_value_is_inclusive(len in 1usize..2000, w in 2usize..=8) {
        let v: Vec<i64> = (0..len).map(|i| (i as i64 * 13) % 27 - 13).collect();
        let d = dev(w);
        let input = GlobalBuffer::from_vec(v.clone());
        let output = GlobalBuffer::filled(0i64, len);
        exclusive_scan(&d, &input, &output, len);
        let ex = output.into_vec();
        let inc = inclusive_scan_host(&v);
        for i in 0..len {
            prop_assert_eq!(ex[i] + v[i], inc[i], "i={}", i);
        }
    }

    #[test]
    fn sat_monotone_for_nonnegative_inputs((w, rows, cols) in arb_grid()) {
        // With non-negative entries the SAT is monotone along rows and
        // columns — a structural invariant independent of any reference.
        let a = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) % 13) as i64);
        let d = dev(w);
        let ab = GlobalBuffer::from_vec(a.as_slice().to_vec());
        let sb = GlobalBuffer::filled(0i64, rows * cols);
        par::sat_1r1w(&d, &ab, &sb, rows, cols);
        let s = sb.into_vec();
        for i in 0..rows {
            for j in 1..cols {
                prop_assert!(s[i * cols + j] >= s[i * cols + j - 1]);
            }
        }
        for j in 0..cols {
            for i in 1..rows {
                prop_assert!(s[i * cols + j] >= s[(i - 1) * cols + j]);
            }
        }
    }
}
