//! Warp-level memory accesses and their classification.
//!
//! Threads are partitioned into *warps* of `w` threads each; a warp sends up
//! to one memory request per thread at a time. The two machine models differ
//! in how a warp's requests map onto pipeline stages:
//!
//! * **DMM** (shared memory): requests are split into stages such that each
//!   stage contains at most one request per *bank*; a warp whose requests hit
//!   some bank `k` times needs `k` stages (a *`k`-way bank conflict*).
//! * **UMM** (global memory): requests in the same *address group* are served
//!   together; a warp touching `g` distinct groups needs `g` stages. A warp
//!   touching a single group is *coalesced*.

use crate::address::{bank_of, group_of, Addr};

/// Minimum pipeline stages any warp transaction of `ops` element accesses can
/// occupy on a machine of width `w`: `⌈ops / w⌉`. A DMM access achieving this
/// bound is *conflict-free*; a UMM access achieving it is *coalesced*. A
/// trace analyzer compares recorded stage counts against this floor to detect
/// bank conflicts and uncoalesced access.
pub fn min_stages(ops: u64, w: usize) -> u64 {
    debug_assert!(w > 0, "machine width must be positive");
    ops.div_ceil(w as u64)
}

/// Which memory a transaction targets in the HMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// A DMM's shared memory (bank-conflict semantics, latency 1).
    Shared,
    /// The UMM's global memory (coalescing semantics, latency `L`).
    Global,
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// The set of addresses requested by one warp in one memory access round.
///
/// `lanes[t]` is the address requested by thread `t` of the warp, or `None`
/// if that thread does not access memory this round. At most `w` lanes are
/// meaningful; constructors enforce this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpAccess {
    lanes: Vec<Option<Addr>>,
}

impl WarpAccess {
    /// A warp access in which lane `t` requests `addrs[t]`.
    ///
    /// # Panics
    /// Panics if more than `w` lanes are supplied — callers pass `w` from
    /// their machine configuration.
    pub fn dense(addrs: &[Addr], w: usize) -> Self {
        assert!(
            addrs.len() <= w,
            "a warp has at most {w} lanes, got {}",
            addrs.len()
        );
        WarpAccess {
            lanes: addrs.iter().copied().map(Some).collect(),
        }
    }

    /// A warp access with explicit per-lane participation.
    pub fn sparse(lanes: Vec<Option<Addr>>, w: usize) -> Self {
        assert!(
            lanes.len() <= w,
            "a warp has at most {w} lanes, got {}",
            lanes.len()
        );
        WarpAccess { lanes }
    }

    /// The contiguous warp access `[base, base + len)`, the fully coalesced
    /// pattern produced by `thread t accesses base + t`.
    pub fn contiguous(base: Addr, len: usize, w: usize) -> Self {
        assert!(len <= w, "a warp has at most {w} lanes, got {len}");
        WarpAccess {
            lanes: (0..len).map(|t| Some(base + t)).collect(),
        }
    }

    /// The strided warp access `base, base + stride, base + 2·stride, …`
    /// (`stride` in words). With `stride = n ≥ w` this is the column-access
    /// pattern of a row-major `n × n` matrix — the worst case on the UMM.
    pub fn strided(base: Addr, stride: usize, len: usize, w: usize) -> Self {
        assert!(len <= w, "a warp has at most {w} lanes, got {len}");
        WarpAccess {
            lanes: (0..len).map(|t| Some(base + t * stride)).collect(),
        }
    }

    /// Per-lane requested addresses.
    pub fn lanes(&self) -> &[Option<Addr>] {
        &self.lanes
    }

    /// Addresses actually requested (participating lanes only).
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.lanes.iter().filter_map(|a| *a)
    }

    /// Number of participating lanes (= memory access *operations* this warp
    /// performs, in the paper's counting).
    pub fn ops(&self) -> usize {
        self.lanes.iter().filter(|a| a.is_some()).count()
    }

    /// `true` if no lane participates (such a warp is not dispatched).
    pub fn is_empty(&self) -> bool {
        self.ops() == 0
    }

    /// Pipeline stages this access occupies on a DMM of width `w`: the
    /// maximum number of requests destined for any single bank.
    pub fn dmm_stages(&self, w: usize) -> usize {
        let mut per_bank = vec![0usize; w];
        for a in self.addrs() {
            per_bank[bank_of(a, w)] += 1;
        }
        per_bank.into_iter().max().unwrap_or(0)
    }

    /// Pipeline stages this access occupies on a UMM of width `w`: the number
    /// of distinct address groups touched.
    pub fn umm_stages(&self, w: usize) -> usize {
        let mut groups: Vec<usize> = self.addrs().map(|a| group_of(a, w)).collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// `true` if the access is *coalesced* on a UMM of width `w` (at most one
    /// address group, i.e. a single pipeline stage).
    pub fn is_coalesced(&self, w: usize) -> bool {
        self.umm_stages(w) <= 1
    }

    /// `true` if the access is conflict-free on a DMM of width `w` (at most
    /// one request per bank).
    pub fn is_conflict_free(&self, w: usize) -> bool {
        self.dmm_stages(w) <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 4;

    #[test]
    fn fig4_warp_w0_dmm() {
        // Figure 4: warp W0 accesses {7, 5, 15, 0}; banks are {3, 1, 3, 0},
        // so bank 3 is hit twice and the access needs two pipeline stages.
        let a = WarpAccess::dense(&[7, 5, 15, 0], W);
        assert_eq!(a.dmm_stages(W), 2);
        assert!(!a.is_conflict_free(W));
    }

    #[test]
    fn fig4_warp_w1_dmm() {
        // W1 accesses {10, 11, 12, 9}; banks {2, 3, 0, 1} are all distinct,
        // one stage.
        let a = WarpAccess::dense(&[10, 11, 12, 9], W);
        assert_eq!(a.dmm_stages(W), 1);
        assert!(a.is_conflict_free(W));
    }

    #[test]
    fn fig4_warp_w0_umm() {
        // W0's addresses {7, 5, 15, 0} fall in address groups {1, 1, 3, 0}:
        // three distinct groups, three stages.
        let a = WarpAccess::dense(&[7, 5, 15, 0], W);
        assert_eq!(a.umm_stages(W), 3);
        assert!(!a.is_coalesced(W));
    }

    #[test]
    fn fig4_warp_w1_umm() {
        // W1's addresses {10, 11, 12, 9} fall in groups {2, 2, 3, 2}:
        // two distinct groups, two stages.
        let a = WarpAccess::dense(&[10, 11, 12, 9], W);
        assert_eq!(a.umm_stages(W), 2);
    }

    #[test]
    fn contiguous_is_coalesced_when_aligned() {
        let a = WarpAccess::contiguous(8, 4, W);
        assert!(a.is_coalesced(W));
        assert!(a.is_conflict_free(W));
        assert_eq!(a.ops(), 4);
    }

    #[test]
    fn unaligned_contiguous_spans_two_groups() {
        // [2, 6) crosses the group boundary at 4.
        let a = WarpAccess::contiguous(2, 4, W);
        assert_eq!(a.umm_stages(W), 2);
        assert!(a.is_conflict_free(W));
    }

    #[test]
    fn strided_by_width_is_worst_case_on_umm_but_conflicts_on_dmm() {
        // Column access of a row-major 4-wide matrix: stride = w.
        let a = WarpAccess::strided(1, W, 4, W);
        assert_eq!(a.umm_stages(W), 4); // every lane its own group
        assert_eq!(a.dmm_stages(W), 4); // every lane the same bank
    }

    #[test]
    fn empty_and_sparse() {
        let a = WarpAccess::sparse(vec![None, Some(5), None, Some(6)], W);
        assert_eq!(a.ops(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.umm_stages(W), 1);
        let e = WarpAccess::sparse(vec![None, None], W);
        assert!(e.is_empty());
        assert_eq!(e.dmm_stages(W), 0);
        assert_eq!(e.umm_stages(W), 0);
    }

    #[test]
    #[should_panic(expected = "at most 4 lanes")]
    fn too_many_lanes_rejected() {
        WarpAccess::dense(&[0, 1, 2, 3, 4], W);
    }

    #[test]
    fn min_stages_is_ceil_of_ops_over_width() {
        assert_eq!(min_stages(0, W), 0);
        assert_eq!(min_stages(1, W), 1);
        assert_eq!(min_stages(4, W), 1);
        assert_eq!(min_stages(5, W), 2);
        assert_eq!(min_stages(32, W), 8);
        // A full conflict-free warp access achieves the bound exactly.
        let a = WarpAccess::contiguous(0, 4, W);
        assert_eq!(a.dmm_stages(W) as u64, min_stages(a.ops() as u64, W));
        assert_eq!(a.umm_stages(W) as u64, min_stages(a.ops() as u64, W));
    }

    #[test]
    fn broadcast_same_address_single_stage_umm() {
        // All lanes reading one address: one group on the UMM.
        let a = WarpAccess::dense(&[9, 9, 9, 9], W);
        assert_eq!(a.umm_stages(W), 1);
        // On the DMM the same bank is hit four times.
        assert_eq!(a.dmm_stages(W), 4);
    }
}
