//! The diagonal arrangement of a `w × w` matrix (Lemma 1, Figure 6).
//!
//! In a DMM's shared memory a row-major `w × w` matrix puts each *column* in
//! a single bank, so column-wise warp access suffers a `w`-way bank conflict.
//! The *diagonal arrangement* stores element `(i, j)` at physical address
//! `i·w + ((i + j) mod w)`, i.e. row `i` is rotated right by `i` banks.
//! Then
//!
//! * row `i` occupies addresses `{ i·w + k : k }` — all `w` banks, and
//! * column `j` occupies addresses `{ i·w + (i+j) mod w : i }`, whose banks
//!   `(i + j) mod w` are also pairwise distinct,
//!
//! so **both row-wise and column-wise access are conflict-free** (Lemma 1).
//! The arrangement is used for the in-shared-memory SAT of a block and for
//! the block transpose of Figure 7.

use crate::warp::WarpAccess;

/// Address mapping of the diagonal arrangement for a `w × w` matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagonalLayout {
    w: usize,
}

impl DiagonalLayout {
    /// Layout for a `w × w` matrix.
    pub fn new(w: usize) -> Self {
        assert!(w > 0, "machine width must be positive");
        DiagonalLayout { w }
    }

    /// The width `w`.
    #[inline]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Physical word offset of logical element `(i, j)`.
    ///
    /// # Panics
    /// Panics in debug builds if `i` or `j` is out of range.
    #[inline]
    pub fn addr(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.w && j < self.w, "element out of range");
        let w = self.w;
        i * w + (i + j) % w
    }

    /// Inverse mapping: the logical `(i, j)` stored at physical offset `p`.
    #[inline]
    pub fn logical(&self, p: usize) -> (usize, usize) {
        debug_assert!(p < self.w * self.w, "offset out of range");
        let w = self.w;
        let i = p / w;
        let k = p % w;
        // k = (i + j) mod w  ⇒  j = (k − i) mod w
        let j = (k + w - i % w) % w;
        (i, j)
    }

    /// Warp access pattern for reading/writing logical row `i`
    /// (lane `t` touches element `(i, t)`).
    pub fn row_access(&self, i: usize) -> WarpAccess {
        let addrs: Vec<usize> = (0..self.w).map(|t| self.addr(i, t)).collect();
        WarpAccess::dense(&addrs, self.w)
    }

    /// Warp access pattern for reading/writing logical column `j`
    /// (lane `t` touches element `(t, j)`).
    pub fn col_access(&self, j: usize) -> WarpAccess {
        let addrs: Vec<usize> = (0..self.w).map(|t| self.addr(t, j)).collect();
        WarpAccess::dense(&addrs, self.w)
    }

    /// Store a row-major `w × w` tile into `storage` (length ≥ `w²`) using
    /// this layout.
    pub fn scatter<T: Copy>(&self, row_major: &[T], storage: &mut [T]) {
        let w = self.w;
        assert!(row_major.len() >= w * w && storage.len() >= w * w);
        for i in 0..w {
            for j in 0..w {
                storage[self.addr(i, j)] = row_major[i * w + j];
            }
        }
    }

    /// Read this layout's `storage` back into a row-major `w × w` tile.
    pub fn gather<T: Copy>(&self, storage: &[T], row_major: &mut [T]) {
        let w = self.w;
        assert!(row_major.len() >= w * w && storage.len() >= w * w);
        for i in 0..w {
            for j in 0..w {
                row_major[i * w + j] = storage[self.addr(i, j)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_example_w4() {
        // Figure 6: the diagonal arrangement of a 4 × 4 matrix stores row i
        // rotated right by i: row 1 holds (1,3),(1,0),(1,1),(1,2) physically.
        let d = DiagonalLayout::new(4);
        assert_eq!(d.addr(0, 0), 0);
        assert_eq!(d.addr(0, 3), 3);
        assert_eq!(d.addr(1, 0), 4 + 1);
        assert_eq!(d.addr(1, 3), 4);
        assert_eq!(d.addr(3, 1), 12);
        assert_eq!(d.addr(3, 0), 12 + 3);
    }

    #[test]
    fn lemma1_row_and_column_conflict_free() {
        for w in [1, 2, 3, 4, 8, 16, 32, 33] {
            let d = DiagonalLayout::new(w);
            for k in 0..w {
                assert!(
                    d.row_access(k).is_conflict_free(w),
                    "row {k} conflicts at w={w}"
                );
                assert!(
                    d.col_access(k).is_conflict_free(w),
                    "column {k} conflicts at w={w}"
                );
            }
        }
    }

    #[test]
    fn row_major_column_access_conflicts_without_diagonal() {
        // Sanity check of the motivation: without the diagonal arrangement a
        // column access is a w-way bank conflict.
        let w = 8;
        let col: Vec<usize> = (0..w).map(|i| i * w + 3).collect();
        let a = WarpAccess::dense(&col, w);
        assert_eq!(a.dmm_stages(w), w);
    }

    #[test]
    fn mapping_is_a_bijection() {
        for w in [1, 2, 5, 32] {
            let d = DiagonalLayout::new(w);
            let mut seen = vec![false; w * w];
            for i in 0..w {
                for j in 0..w {
                    let p = d.addr(i, j);
                    assert!(!seen[p], "address {p} reused at w={w}");
                    seen[p] = true;
                    assert_eq!(d.logical(p), (i, j));
                }
            }
            assert!(seen.into_iter().all(|b| b));
        }
    }

    #[test]
    fn scatter_gather_round_trip() {
        let w = 6;
        let d = DiagonalLayout::new(w);
        let tile: Vec<u32> = (0..(w * w) as u32).collect();
        let mut storage = vec![0u32; w * w];
        d.scatter(&tile, &mut storage);
        // Physically permuted (unless w == 1).
        assert_ne!(storage, tile);
        let mut back = vec![0u32; w * w];
        d.gather(&storage, &mut back);
        assert_eq!(back, tile);
    }
}
