//! Machine configuration shared by all model layers.

use serde::{Deserialize, Serialize};

/// Parameters of a (hierarchical) memory machine.
///
/// The paper's models are parameterised by the *width* `w` (number of memory
/// banks, number of threads per warp, and size of an address group), the
/// *latency* `L` of the global memory, and — for the HMM — the number of DMMs
/// `d` and the capacity of each DMM's shared memory.
///
/// Defaults mirror the experimental platform of the paper: `w = 32` (warp
/// width and bank count of CUDA GPUs), `L = 100` (global memory latency is
/// "several hundred clock cycles"; the exact value only scales the latency
/// terms), `d = 15` (streaming multiprocessors of a GeForce GTX 780 Ti), and
/// shared capacity `6·w²` words (48 KB of 64-bit words = six `32 × 32`
/// matrices, as computed in §II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Width `w`: threads per warp = memory banks per DMM = words per
    /// address group of the UMM.
    pub width: usize,
    /// Latency `L` of the global memory (time units per pipeline traversal).
    /// The shared memory latency is fixed at 1.
    pub latency: u64,
    /// Extra fixed overhead per barrier-delimited window, in time units.
    ///
    /// The paper's model charges only `L` per window, but its *experiments*
    /// implement every barrier as a CUDA kernel relaunch whose fixed cost
    /// (≈ 5 µs on the GTX 780 Ti, i.e. thousands of 32-word transaction
    /// times) dwarfs the memory latency. This extension term makes the model
    /// reproduce the measured crossovers of Table II; set it to 0 for the
    /// pure paper model. See [`MachineConfig::gtx780ti`].
    pub barrier_overhead: u64,
    /// Number of DMMs `d` (streaming multiprocessors).
    pub num_dmms: usize,
    /// Capacity of each DMM's shared memory, in words.
    pub shared_capacity: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::with_width(32)
    }
}

impl MachineConfig {
    /// A configuration with width `w` and the paper's default latency and
    /// DMM count, with shared capacity `6·w²` words.
    pub fn with_width(w: usize) -> Self {
        assert!(w > 0, "machine width must be positive");
        MachineConfig {
            width: w,
            latency: 100,
            barrier_overhead: 0,
            num_dmms: 15,
            shared_capacity: 6 * w * w,
        }
    }

    /// A profile calibrated against the paper's experimental platform
    /// (GeForce GTX 780 Ti).
    ///
    /// One time unit is one coalesced 32-word transaction (≈ 0.76 ns at
    /// 336 GB/s for 64-bit words). A kernel relaunch costs ≈ 5 µs, i.e.
    /// several thousand time units; we use 3200, which places the
    /// 2R1W/1R1W crossover of the cost model at `n ≈ 2·(L + overhead) ≈
    /// 6600` — between the 6K and 7K columns of Table II, exactly where the
    /// paper measured it.
    pub fn gtx780ti() -> Self {
        Self::with_width(32).barrier_overhead(3200)
    }

    /// Effective per-window overhead `Λ = L + barrier_overhead` charged for
    /// each barrier-delimited execution window.
    pub fn window_overhead(&self) -> u64 {
        self.latency + self.barrier_overhead
    }

    /// Replace the per-window barrier overhead.
    pub fn barrier_overhead(mut self, overhead: u64) -> Self {
        self.barrier_overhead = overhead;
        self
    }

    /// Replace the global memory latency `L`.
    pub fn latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }

    /// Replace the DMM count `d`.
    pub fn num_dmms(mut self, d: usize) -> Self {
        assert!(d > 0, "at least one DMM is required");
        self.num_dmms = d;
        self
    }

    /// Replace the per-DMM shared memory capacity (words).
    pub fn shared_capacity(mut self, words: usize) -> Self {
        self.shared_capacity = words;
        self
    }

    /// How many `w × w` word matrices fit in one DMM's shared memory.
    ///
    /// The paper assumes at least one (and on real GPUs about six, see §II);
    /// the block algorithms of `sat-core` need at most two at a time.
    pub fn shared_matrices(&self) -> usize {
        self.shared_capacity / (self.width * self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = MachineConfig::default();
        assert_eq!(c.width, 32);
        assert_eq!(c.shared_capacity, 6 * 32 * 32);
        assert_eq!(c.shared_matrices(), 6);
    }

    #[test]
    fn builder_chain() {
        let c = MachineConfig::with_width(4).latency(5).num_dmms(2);
        assert_eq!(c.width, 4);
        assert_eq!(c.latency, 5);
        assert_eq!(c.num_dmms, 2);
        assert_eq!(c.shared_matrices(), 6);
        assert_eq!(c.window_overhead(), 5);
    }

    #[test]
    fn calibrated_profile_places_crossover_near_6k() {
        let c = MachineConfig::gtx780ti();
        assert_eq!(c.width, 32);
        // The cost-model crossover between 2R1W and 1R1W sits at
        // n ≈ 2·Λ; the calibration targets the paper's 6K–7K window.
        let crossover = 2 * c.window_overhead();
        assert!((6 * 1024..7 * 1024).contains(&(crossover as usize)));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        MachineConfig::with_width(0);
    }
}
