//! Address arithmetic for the memory machine models.
//!
//! A single address space of the memory is mapped onto `w` memory banks in an
//! interleaved way: the word at address `a` is stored in bank `a mod w`
//! (DMM / shared memory view), and belongs to address group `a / w`
//! (UMM / global memory view).

/// A word address in a memory machine's address space.
///
/// Addresses index *words* (one matrix element each), not bytes; the models
/// are word-oriented.
pub type Addr = usize;

/// The memory bank that holds address `addr` on a DMM of width `w`.
///
/// `B[j] = { j, j + w, j + 2w, … }` is the set of addresses of the `j`-th
/// bank; two requests in the same bank cannot be served in the same pipeline
/// stage.
///
/// # Panics
/// Panics if `w == 0`.
#[inline]
pub fn bank_of(addr: Addr, w: usize) -> usize {
    assert!(w > 0, "machine width must be positive");
    addr % w
}

/// The address group that holds address `addr` on a UMM of width `w`.
///
/// `A[k] = { k·w, k·w + 1, …, (k+1)·w − 1 }` is the `k`-th address group;
/// requests within one group are served in a single pipeline stage, while
/// requests to `g` distinct groups need `g` stages.
///
/// # Panics
/// Panics if `w == 0`.
#[inline]
pub fn group_of(addr: Addr, w: usize) -> usize {
    assert!(w > 0, "machine width must be positive");
    addr / w
}

/// Row-major word address of element `(row, col)` of a matrix with `n_cols`
/// columns.
#[inline]
pub fn row_major(row: usize, col: usize, n_cols: usize) -> Addr {
    row * n_cols + col
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_interleaves() {
        // Figure 1 of the paper: address i is stored in the (i mod w)-th bank.
        let w = 4;
        assert_eq!(bank_of(0, w), 0);
        assert_eq!(bank_of(3, w), 3);
        assert_eq!(bank_of(4, w), 0);
        assert_eq!(bank_of(7, w), 3);
        assert_eq!(bank_of(15, w), 3);
    }

    #[test]
    fn groups_partition_contiguously() {
        let w = 4;
        assert_eq!(group_of(0, w), 0);
        assert_eq!(group_of(3, w), 0);
        assert_eq!(group_of(4, w), 1);
        assert_eq!(group_of(15, w), 3);
        // Figure 4 example: {7, 5, 15, 0} touches groups {1, 1, 3, 0}.
        let groups: Vec<_> = [7, 5, 15, 0].iter().map(|&a| group_of(a, w)).collect();
        assert_eq!(groups, vec![1, 1, 3, 0]);
    }

    #[test]
    fn row_major_addressing() {
        assert_eq!(row_major(0, 0, 9), 0);
        assert_eq!(row_major(1, 0, 9), 9);
        assert_eq!(row_major(2, 5, 9), 23);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        bank_of(1, 0);
    }
}
