//! Pipeline timing for memory access schedules.
//!
//! Both the DMM and the UMM process memory requests through an `L`-stage
//! pipeline (Figure 4 of the paper): warps are dispatched in turn, each warp's
//! access occupies one or more pipeline *stages* (bank-conflict splitting on
//! the DMM, address-group splitting on the UMM), stages enter the pipeline
//! back-to-back, and a request completes when it leaves the last pipeline
//! stage. A schedule whose accesses occupy `p` stages in total therefore
//! completes in `p + L − 1` time units — provided no thread has to wait for
//! its own previous request.
//!
//! [`Pipeline::independent_time`] computes that closed form; [`Pipeline::simulate`]
//! runs a dependency-aware round-robin simulation in which a warp may not
//! issue a new access until its previous one has completed, exhibiting the
//! latency-hiding behaviour the paper's algorithms rely on (enough warps keep
//! the pipeline full; too few expose the latency `L`).

use crate::warp::WarpAccess;

/// Which stage-splitting rule to apply to each warp access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// Discrete Memory Machine: stages = worst per-bank multiplicity.
    Dmm,
    /// Unified Memory Machine: stages = distinct address groups.
    Umm,
}

impl Machine {
    /// Pipeline stages a single warp access occupies on this machine.
    pub fn stages(&self, access: &WarpAccess, w: usize) -> usize {
        match self {
            Machine::Dmm => access.dmm_stages(w),
            Machine::Umm => access.umm_stages(w),
        }
    }
}

/// Timing calculator for one memory machine.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// Stage-splitting rule.
    pub machine: Machine,
    /// Width `w`.
    pub width: usize,
    /// Latency `L` (pipeline depth) in time units.
    pub latency: u64,
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineTiming {
    /// Total pipeline stages occupied by all accesses.
    pub stages: u64,
    /// Time units until the last request completes.
    pub completion_time: u64,
}

impl Pipeline {
    /// Construct a pipeline for `machine` with the given width and latency.
    pub fn new(machine: Machine, width: usize, latency: u64) -> Self {
        assert!(width > 0, "machine width must be positive");
        assert!(latency >= 1, "latency is at least one time unit");
        Pipeline {
            machine,
            width,
            latency,
        }
    }

    /// Completion time of a set of *independent* warp accesses (no thread
    /// issues twice): total occupied stages `p` give `p + L − 1` time units,
    /// as in Figure 4 of the paper. Returns the stage count and the time.
    pub fn independent_time(&self, accesses: &[WarpAccess]) -> PipelineTiming {
        let stages: u64 = accesses
            .iter()
            .map(|a| self.machine.stages(a, self.width) as u64)
            .sum();
        let completion_time = if stages == 0 {
            0
        } else {
            stages + self.latency - 1
        };
        PipelineTiming {
            stages,
            completion_time,
        }
    }

    /// Dependency-aware simulation.
    ///
    /// `rounds_per_warp[i]` is the ordered list of accesses warp `i` issues;
    /// a warp cannot issue access `k + 1` before access `k` has completed
    /// (the paper: *"a thread cannot send a new memory access request until
    /// the previous memory access request is completed"*). Warps are
    /// dispatched in round-robin order; a warp with no pending or ready
    /// access is skipped.
    ///
    /// Returns total stages and the completion time of the last request.
    pub fn simulate(&self, rounds_per_warp: &[Vec<WarpAccess>]) -> PipelineTiming {
        struct WarpState {
            next: usize,
            ready_at: u64,
        }
        let mut warps: Vec<WarpState> = rounds_per_warp
            .iter()
            .map(|_| WarpState {
                next: 0,
                ready_at: 0,
            })
            .collect();
        let mut pending: usize = rounds_per_warp.iter().map(|r| r.len()).sum();
        let mut stages_total: u64 = 0;
        let mut pipe_free: u64 = 0; // first time unit the pipeline entrance is free
        let mut finish: u64 = 0;
        let mut rr = 0usize; // round-robin scan start

        while pending > 0 {
            // Earliest time any warp with work could issue.
            let t = warps
                .iter()
                .enumerate()
                .filter(|(i, w)| w.next < rounds_per_warp[*i].len())
                .map(|(_, w)| w.ready_at.max(pipe_free))
                .min()
                .expect("pending > 0 implies some warp has work");
            // Round-robin: first ready warp scanning from `rr`.
            let n = warps.len();
            let chosen = (0..n)
                .map(|k| (rr + k) % n)
                .find(|&i| warps[i].next < rounds_per_warp[i].len() && warps[i].ready_at <= t)
                .expect("a warp is ready at the chosen time");
            let access = &rounds_per_warp[chosen][warps[chosen].next];
            let s = self.machine.stages(access, self.width) as u64;
            warps[chosen].next += 1;
            pending -= 1;
            rr = (chosen + 1) % n;
            if s == 0 {
                // A warp in which no thread accesses memory is not dispatched.
                continue;
            }
            stages_total += s;
            let completes = t + s - 1 + self.latency;
            pipe_free = t + s;
            warps[chosen].ready_at = completes;
            finish = finish.max(completes);
        }
        PipelineTiming {
            stages: stages_total,
            completion_time: finish,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 4;

    fn fig4_accesses() -> Vec<WarpAccess> {
        vec![
            WarpAccess::dense(&[7, 5, 15, 0], W),
            WarpAccess::dense(&[10, 11, 12, 9], W),
        ]
    }

    #[test]
    fn fig4_dmm_takes_l_plus_2() {
        // "the memory requests occupy three [DMM] stages, it takes
        //  L + 3 − 1 time units to complete the memory access."
        for latency in [1, 2, 5, 100] {
            let p = Pipeline::new(Machine::Dmm, W, latency);
            let t = p.independent_time(&fig4_accesses());
            assert_eq!(t.stages, 3);
            assert_eq!(t.completion_time, latency + 3 - 1);
        }
    }

    #[test]
    fn fig4_umm_takes_l_plus_4() {
        // On the UMM the same warps occupy 3 + 2 = 5 stages:
        // L + 5 − 1 time units.
        for latency in [1, 2, 5, 100] {
            let p = Pipeline::new(Machine::Umm, W, latency);
            let t = p.independent_time(&fig4_accesses());
            assert_eq!(t.stages, 5);
            assert_eq!(t.completion_time, latency + 5 - 1);
        }
    }

    #[test]
    fn empty_schedule_is_instant() {
        let p = Pipeline::new(Machine::Umm, W, 10);
        let t = p.independent_time(&[]);
        assert_eq!(t.stages, 0);
        assert_eq!(t.completion_time, 0);
    }

    #[test]
    fn latency_hiding_with_many_warps() {
        // m warps each issuing r coalesced accesses in sequence. With
        // m ≥ L the pipeline never starves: total ≈ m·r + L − 1.
        let latency = 8u64;
        let p = Pipeline::new(Machine::Umm, W, latency);
        let m = 16usize; // m ≥ L: full hiding
        let r = 10usize;
        let rounds: Vec<Vec<WarpAccess>> = (0..m)
            .map(|i| {
                (0..r)
                    .map(|k| WarpAccess::contiguous((i * r + k) * W, W, W))
                    .collect()
            })
            .collect();
        let t = p.simulate(&rounds);
        assert_eq!(t.stages, (m * r) as u64);
        assert_eq!(t.completion_time, (m * r) as u64 + latency - 1);
    }

    #[test]
    fn latency_exposed_with_single_warp() {
        // One warp issuing r dependent accesses pays the latency every time:
        // r·L time units exactly (each access: 1 stage + (L−1) wait).
        let latency = 8u64;
        let p = Pipeline::new(Machine::Umm, W, latency);
        let r = 5usize;
        let rounds = vec![(0..r)
            .map(|k| WarpAccess::contiguous(k * W, W, W))
            .collect::<Vec<_>>()];
        let t = p.simulate(&rounds);
        assert_eq!(t.stages, r as u64);
        assert_eq!(t.completion_time, r as u64 * latency);
    }

    #[test]
    fn simulate_matches_independent_for_one_round() {
        let p = Pipeline::new(Machine::Dmm, W, 6);
        let accesses = fig4_accesses();
        let rounds: Vec<Vec<WarpAccess>> = accesses.iter().map(|a| vec![a.clone()]).collect();
        let sim = p.simulate(&rounds);
        let ind = p.independent_time(&accesses);
        assert_eq!(sim.stages, ind.stages);
        assert_eq!(sim.completion_time, ind.completion_time);
    }

    #[test]
    fn empty_warps_are_not_dispatched() {
        let p = Pipeline::new(Machine::Umm, W, 4);
        let rounds = vec![
            vec![WarpAccess::sparse(vec![None, None], W)],
            vec![WarpAccess::contiguous(0, W, W)],
        ];
        let t = p.simulate(&rounds);
        assert_eq!(t.stages, 1);
        assert_eq!(t.completion_time, 4);
    }
}
