//! # hmm-model — memory machine models for GPU-like computation
//!
//! This crate implements the theoretical machine models of Nakano et al. that
//! capture the essence of CUDA-enabled GPUs, as used in
//! *"Parallel Algorithms for the Summed Area Table on the Asynchronous
//! Hierarchical Memory Machine, with GPU implementations"* (Kasagi, Nakano,
//! Ito — ICPP 2014):
//!
//! * the **Discrete Memory Machine (DMM)** — models *shared memory*: a single
//!   address space interleaved over `w` memory banks; a warp access is split
//!   into pipeline stages such that no two requests in a stage hit the same
//!   bank ([`warp::WarpAccess::dmm_stages`]);
//! * the **Unified Memory Machine (UMM)** — models *global memory*: addresses
//!   are partitioned into `w`-word *address groups*; a warp access occupies one
//!   pipeline stage per distinct group it touches
//!   ([`warp::WarpAccess::umm_stages`]);
//! * the **Hierarchical Memory Machine (HMM)** — `d` DMMs (one per streaming
//!   multiprocessor) plus one UMM, with shared-memory latency 1 and global
//!   latency `L`;
//! * the **asynchronous HMM** — the HMM with asynchronous block execution and
//!   global barrier synchronisation that *resets every shared memory*
//!   (mirroring CUDA kernel boundaries).
//!
//! The crate provides:
//!
//! * address/bank/group arithmetic ([`address`]),
//! * warp access classification and stage counting ([`warp`]),
//! * pipeline timing for access schedules on the DMM and the UMM ([`pipeline`]),
//! * the *diagonal arrangement* of a `w × w` matrix that makes both row-wise
//!   and column-wise warp access conflict-free (Lemma 1 of the paper;
//!   [`diagonal`]),
//! * the *global memory access cost* model and the closed forms of the paper's
//!   Table I for every SAT algorithm ([`cost`]).
//!
//! Higher layers build on this crate: `hmm-sim` executes whole programs on the
//! model with exact pipeline semantics, and `gpu-exec` runs CUDA-like kernels
//! on OS threads while accounting memory transactions with the classifiers
//! defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod config;
pub mod cost;
pub mod diagonal;
pub mod pipeline;
pub mod warp;

pub use address::{bank_of, group_of, Addr};
pub use config::MachineConfig;
pub use cost::{CostCounters, ExactCounts, GlobalCost};
pub use diagonal::DiagonalLayout;
pub use warp::{min_stages, AccessKind, MemSpace, WarpAccess};
