//! The global memory access cost model (§III) and the closed forms of the
//! paper's Table I.
//!
//! Let `C` be the number of *coalesced* global memory access operations
//! (element accesses whose warp transaction touches a single address group),
//! `S` the number of *stride* operations (all others), and `B` the number of
//! barrier synchronisation steps. Barriers split execution into `B + 1`
//! windows; a window whose accesses occupy `p` pipeline stages takes about
//! `p + L` time units (Figure 5), so the paper defines the
//! **global memory access cost**
//!
//! ```text
//! cost = C / w + S + L · (B + 1)
//! ```
//!
//! which approximates the computing time on the HMM whenever the work inside
//! the DMMs is negligible (the SAT algorithms arrange exactly that, using the
//! diagonal arrangement to keep shared memory conflict-free).
//!
//! [`CostCounters`] accumulates measured `C`, `S`, `B` (plus exact pipeline
//! stage counts and shared-memory statistics) from an execution;
//! [`GlobalCost`] evaluates the closed forms of Table I for each SAT
//! algorithm, so experiments can compare *measured* against *predicted*.

use serde::{Deserialize, Serialize};

use crate::config::MachineConfig;
use crate::warp::{AccessKind, MemSpace, WarpAccess};

/// Measured access statistics of one execution on the (asynchronous) HMM.
///
/// Operations are counted per *element access* (the paper's unit: "2R2W
/// performs 2 read operations and 2 write operations per element"), and
/// classified by the warp transaction that carried them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostCounters {
    /// Coalesced global read operations (element count).
    pub coalesced_reads: u64,
    /// Coalesced global write operations (element count).
    pub coalesced_writes: u64,
    /// Stride global read operations (element count).
    pub stride_reads: u64,
    /// Stride global write operations (element count).
    pub stride_writes: u64,
    /// Exact UMM pipeline stages occupied by all global transactions.
    pub global_stages: u64,
    /// Barrier synchronisation steps (kernel boundaries).
    pub barrier_steps: u64,
    /// Shared memory read operations (element count).
    pub shared_reads: u64,
    /// Shared memory write operations (element count).
    pub shared_writes: u64,
    /// Exact DMM pipeline stages occupied by all shared transactions.
    pub shared_stages: u64,
    /// Handoff-flag publishes (release stores). Persistent-block kernels
    /// replace per-stage launch barriers with these; the flag word itself
    /// is also counted as one coalesced global write.
    pub handoff_publishes: u64,
    /// Handoff-flag acquire/poll calls (each records one flag read
    /// regardless of how many times it spun).
    pub handoff_acquires: u64,
}

impl CostCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one warp transaction, classifying it with the machine width.
    pub fn record(&mut self, space: MemSpace, kind: AccessKind, access: &WarpAccess, w: usize) {
        let ops = access.ops() as u64;
        if ops == 0 {
            return;
        }
        match space {
            MemSpace::Global => {
                let stages = access.umm_stages(w) as u64;
                self.global_stages += stages;
                let coalesced = stages <= 1;
                match (kind, coalesced) {
                    (AccessKind::Read, true) => self.coalesced_reads += ops,
                    (AccessKind::Write, true) => self.coalesced_writes += ops,
                    (AccessKind::Read, false) => self.stride_reads += ops,
                    (AccessKind::Write, false) => self.stride_writes += ops,
                }
            }
            MemSpace::Shared => {
                self.shared_stages += access.dmm_stages(w) as u64;
                match kind {
                    AccessKind::Read => self.shared_reads += ops,
                    AccessKind::Write => self.shared_writes += ops,
                }
            }
        }
    }

    /// Record one barrier synchronisation step.
    pub fn barrier(&mut self) {
        self.barrier_steps += 1;
    }

    /// Fold another counter set into this one (counters from different DMMs
    /// or worker threads can be merged; barrier steps are global and should
    /// be merged from exactly one source — [`merge_parallel`](Self::merge_parallel)
    /// handles that).
    pub fn merge(&mut self, other: &CostCounters) {
        self.coalesced_reads += other.coalesced_reads;
        self.coalesced_writes += other.coalesced_writes;
        self.stride_reads += other.stride_reads;
        self.stride_writes += other.stride_writes;
        self.global_stages += other.global_stages;
        self.barrier_steps += other.barrier_steps;
        self.shared_reads += other.shared_reads;
        self.shared_writes += other.shared_writes;
        self.shared_stages += other.shared_stages;
        self.handoff_publishes += other.handoff_publishes;
        self.handoff_acquires += other.handoff_acquires;
    }

    /// Merge a per-worker counter set that must not contribute barrier steps.
    pub fn merge_parallel(&mut self, other: &CostCounters) {
        let barriers = self.barrier_steps;
        self.merge(other);
        self.barrier_steps = barriers;
    }

    /// Total global operations `C + S`.
    pub fn global_ops(&self) -> u64 {
        self.coalesced_ops() + self.stride_ops()
    }

    /// Coalesced global operations `C`.
    pub fn coalesced_ops(&self) -> u64 {
        self.coalesced_reads + self.coalesced_writes
    }

    /// Stride global operations `S`.
    pub fn stride_ops(&self) -> u64 {
        self.stride_reads + self.stride_writes
    }

    /// Global read operations per matrix element, for an `n × n` input —
    /// the "R" in the algorithm names (e.g. ≈ 1.0 for 1R1W).
    pub fn reads_per_element(&self, n: usize) -> f64 {
        (self.coalesced_reads + self.stride_reads) as f64 / (n as f64 * n as f64)
    }

    /// Global write operations per matrix element — the "W" in the names.
    pub fn writes_per_element(&self, n: usize) -> f64 {
        (self.coalesced_writes + self.stride_writes) as f64 / (n as f64 * n as f64)
    }

    /// The paper's global memory access cost `C/w + S + L·(B + 1)`.
    pub fn global_cost(&self, cfg: &MachineConfig) -> f64 {
        self.coalesced_ops() as f64 / cfg.width as f64
            + self.stride_ops() as f64
            + cfg.window_overhead() as f64 * (self.barrier_steps + 1) as f64
    }

    /// Stage-accurate simulated time: exact UMM pipeline stages plus `L` per
    /// barrier-delimited window. Differs from [`global_cost`](Self::global_cost)
    /// only in using measured stages instead of the `C/w + S` approximation
    /// (e.g. an unaligned coalesced-ish warp touching two groups counts two
    /// stages here but `w` "coalesced" ops there).
    pub fn simulated_time(&self, cfg: &MachineConfig) -> f64 {
        self.global_stages as f64 + cfg.window_overhead() as f64 * (self.barrier_steps + 1) as f64
    }
}

/// Closed-form global memory access costs of the SAT algorithms (Table I).
///
/// All formulas take the matrix side `n` (the input is `n × n`) and the
/// machine configuration; they keep the terms the paper reports and drop the
/// same "small terms" the paper drops. They are `f64` because the hybrid's
/// ratio `r` is continuous.
#[derive(Debug, Clone, Copy)]
pub struct GlobalCost {
    cfg: MachineConfig,
}

/// Identifier for the SAT algorithms analysed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SatAlgorithm {
    /// Column-wise then row-wise prefix sums, in place.
    TwoR2W,
    /// Prefix sums + two transposes, all coalesced.
    FourR4W,
    /// Element-wise anti-diagonal wavefront.
    FourR1W,
    /// Block three-phase algorithm (Nehab et al.).
    TwoR1W,
    /// Block anti-diagonal wavefront (this paper's contribution).
    OneR1W,
    /// Hybrid of 2R1W on corner triangles and 1R1W in the middle.
    HybridR1W,
}

impl SatAlgorithm {
    /// All algorithms in the order of Table I.
    pub const ALL: [SatAlgorithm; 6] = [
        SatAlgorithm::TwoR2W,
        SatAlgorithm::FourR4W,
        SatAlgorithm::FourR1W,
        SatAlgorithm::TwoR1W,
        SatAlgorithm::OneR1W,
        SatAlgorithm::HybridR1W,
    ];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SatAlgorithm::TwoR2W => "2R2W",
            SatAlgorithm::FourR4W => "4R4W",
            SatAlgorithm::FourR1W => "4R1W",
            SatAlgorithm::TwoR1W => "2R1W",
            SatAlgorithm::OneR1W => "1R1W",
            SatAlgorithm::HybridR1W => "(1+r^2)R1W",
        }
    }
}

/// One row of Table I: leading-term operation counts and barrier steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// Algorithm the row describes.
    pub algorithm: SatAlgorithm,
    /// Predicted coalesced read operations (leading terms).
    pub coalesced_reads: f64,
    /// Predicted coalesced write operations (leading terms).
    pub coalesced_writes: f64,
    /// Predicted stride read operations (leading terms).
    pub stride_reads: f64,
    /// Predicted stride write operations (leading terms).
    pub stride_writes: f64,
    /// Predicted barrier synchronisation steps.
    pub barrier_steps: f64,
    /// The resulting global memory access cost.
    pub cost: f64,
}

impl TableOneRow {
    /// Predicted read operations (coalesced + stride).
    pub fn total_reads(&self) -> f64 {
        self.coalesced_reads + self.stride_reads
    }

    /// Predicted write operations (coalesced + stride).
    pub fn total_writes(&self) -> f64 {
        self.coalesced_writes + self.stride_writes
    }

    /// Fraction of read operations Table I predicts to be *stride*
    /// (0 when the algorithm performs no reads). 2R2W reads half stride
    /// (the row-wise pass), 4R1W everything, 4R4W nothing.
    pub fn stride_read_fraction(&self) -> f64 {
        let total = self.total_reads();
        if total == 0.0 {
            0.0
        } else {
            self.stride_reads / total
        }
    }

    /// Fraction of write operations Table I predicts to be *stride*
    /// (0 when the algorithm performs no writes).
    pub fn stride_write_fraction(&self) -> f64 {
        let total = self.total_writes();
        if total == 0.0 {
            0.0
        } else {
            self.stride_writes / total
        }
    }

    /// Fraction of *all* global operations predicted to be stride — the
    /// budget a trace analyzer should hold a kernel implementation to.
    pub fn stride_fraction(&self) -> f64 {
        let total = self.total_reads() + self.total_writes();
        if total == 0.0 {
            0.0
        } else {
            (self.stride_reads + self.stride_writes) / total
        }
    }
}

/// Transaction-exact operation counts for an algorithm run, where a closed
/// form exists (Table I keeps leading terms only; these keep every term, so
/// a measured [`CostCounters`] can be compared for *equality*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactCounts {
    /// Coalesced global read operations.
    pub coalesced_reads: u64,
    /// Coalesced global write operations.
    pub coalesced_writes: u64,
    /// Stride global read operations.
    pub stride_reads: u64,
    /// Stride global write operations.
    pub stride_writes: u64,
    /// Barrier synchronisation steps.
    pub barrier_steps: u64,
}

impl ExactCounts {
    /// Coalesced operations `C`.
    pub fn coalesced_ops(&self) -> u64 {
        self.coalesced_reads + self.coalesced_writes
    }

    /// Stride operations `S`.
    pub fn stride_ops(&self) -> u64 {
        self.stride_reads + self.stride_writes
    }

    /// Whether measured counters agree exactly on `C`, `S` and `B`.
    pub fn matches(&self, measured: &CostCounters) -> bool {
        self.coalesced_reads == measured.coalesced_reads
            && self.coalesced_writes == measured.coalesced_writes
            && self.stride_reads == measured.stride_reads
            && self.stride_writes == measured.stride_writes
            && self.barrier_steps == measured.barrier_steps
    }
}

/// Transaction-exact counts of the banded (multi-device) 1R1W pipeline,
/// phase by phase, from
/// [`GlobalCost::banded_1r1w_exact_counts`].
///
/// The pipeline has three fleet-wide phases separated by full barriers:
/// per-band **column sums**, one **margin exchange** launch turning column
/// sums into carry rows, and the per-band carry-seeded **wavefronts**.
/// Bands run concurrently on independent devices *within* a phase, so the
/// fleet's critical path sums the slowest band of each phase, while
/// [`total`](Self::total) sums all work for traffic accounting.
///
/// Per-entry `barrier_steps` is the entry's launch count minus one
/// (barriers *within* that band's phase work on its own device).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandedCounts {
    /// Number of row-bands `D` (after clamping to the block-row count).
    pub bands: usize,
    /// Column-sum pass of each band; `colsum[bands − 1]` is all-zero
    /// because the last band's column sums are never consumed.
    pub colsum: Vec<ExactCounts>,
    /// The single margin-exchange launch (all-zero when `bands == 1`).
    pub exchange: ExactCounts,
    /// The carry-seeded wavefront of each band (mirror fringe variant).
    pub wavefront: Vec<ExactCounts>,
}

impl BandedCounts {
    /// Total data movement across all bands and phases. `barrier_steps` is
    /// normalised to [`total_launches`](Self::total_launches)` − 1`, i.e.
    /// the steps of an equivalent back-to-back single-device execution —
    /// per-device measurements partition launches differently, so compare
    /// launch counts, not merged barrier counters.
    pub fn total(&self) -> ExactCounts {
        let mut t = ExactCounts {
            coalesced_reads: 0,
            coalesced_writes: 0,
            stride_reads: 0,
            stride_writes: 0,
            barrier_steps: self.total_launches().saturating_sub(1),
        };
        for e in self.phase_entries() {
            t.coalesced_reads += e.coalesced_reads;
            t.coalesced_writes += e.coalesced_writes;
            t.stride_reads += e.stride_reads;
            t.stride_writes += e.stride_writes;
        }
        t
    }

    /// Every non-empty phase entry, colsum → exchange → wavefront.
    fn phase_entries(&self) -> impl Iterator<Item = &ExactCounts> {
        let exchange = if self.bands > 1 {
            Some(&self.exchange)
        } else {
            None
        };
        self.colsum
            .iter()
            .take(self.bands.saturating_sub(1))
            .chain(exchange)
            .chain(self.wavefront.iter())
    }

    /// Kernel launches summed over every band and phase.
    pub fn total_launches(&self) -> u64 {
        self.phase_entries().map(|e| e.barrier_steps + 1).sum()
    }

    /// Launches on the fleet's critical path: the slowest band of each
    /// phase (bands run concurrently inside a phase).
    pub fn critical_path_launches(&self) -> u64 {
        let col = if self.bands > 1 { 1 } else { 0 };
        let ex = if self.bands > 1 { 1 } else { 0 };
        let wave = self
            .wavefront
            .iter()
            .map(|e| e.barrier_steps + 1)
            .max()
            .unwrap_or(0);
        col + ex + wave
    }

    /// The fleet's modeled completion time: per phase, the slowest band's
    /// `C/w + S + Λ·launches`, summed over the three phases. At `bands == 1`
    /// this equals the single-device mirror-variant 1R1W cost.
    pub fn critical_path_cost(&self, cfg: &MachineConfig) -> f64 {
        let w = cfg.width as f64;
        let lam = cfg.window_overhead() as f64;
        let phase_cost = |e: &ExactCounts| {
            e.coalesced_ops() as f64 / w
                + e.stride_ops() as f64
                + lam * (e.barrier_steps + 1) as f64
        };
        let max_of =
            |entries: &[ExactCounts]| entries.iter().map(phase_cost).fold(0.0f64, |a, b| a.max(b));
        let mut cost = max_of(&self.wavefront);
        if self.bands > 1 {
            cost += max_of(&self.colsum[..self.bands - 1]);
            cost += phase_cost(&self.exchange);
        }
        cost
    }
}

impl GlobalCost {
    /// Cost evaluator for a machine configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        GlobalCost { cfg }
    }

    fn w(&self) -> f64 {
        self.cfg.width as f64
    }

    /// Effective per-window overhead Λ (latency plus barrier overhead).
    fn l(&self) -> f64 {
        self.cfg.window_overhead() as f64
    }

    /// Lemma 2 — 2R2W: `2n²/w + 2n² + 2L`.
    ///
    /// The column-wise pass is coalesced (`2n²` operations), the row-wise
    /// pass is stride (`2n²` operations), one barrier between them.
    pub fn two_r2w(&self, n: usize) -> f64 {
        let n2 = (n as f64) * (n as f64);
        2.0 * n2 / self.w() + 2.0 * n2 + 2.0 * self.l()
    }

    /// Lemma 3 — 4R4W: `8n²/w + 4L`.
    ///
    /// Two coalesced column-wise passes plus two coalesced transposes
    /// (`8n²` operations), three barriers.
    pub fn four_r4w(&self, n: usize) -> f64 {
        let n2 = (n as f64) * (n as f64);
        8.0 * n2 / self.w() + 4.0 * self.l()
    }

    /// Lemma 5 — 4R1W: `5n² + 2nL`.
    ///
    /// Every operation is stride (`4n²` reads + `n²` writes) and the
    /// anti-diagonal wavefront needs `2n − 1` barrier-delimited stages.
    pub fn four_r1w(&self, n: usize) -> f64 {
        let n2 = (n as f64) * (n as f64);
        5.0 * n2 + 2.0 * (n as f64) * self.l()
    }

    /// Lemma 4 — 2R1W with recursion depth `k`:
    /// `3n²/w + 6n²/w² + (2k + 3)·L`.
    ///
    /// Step 1 reads `n²` and writes ≈ `2n²/w + n²/w²` fringe data; Step 3
    /// reads `n² + 2n²/w + n²/w²` and writes `n²`; Step 2 touches the fringe
    /// matrices again (≈ `3n²/w` operations in total across both). All
    /// accesses are coalesced. Recursion multiplies only the `n²/w²`-sized
    /// problem, and adds two barriers per level; `k ≤ 1` in practice
    /// (`w³ ≥ n` already at `n ≤ 32768` for `w = 32`).
    pub fn two_r1w(&self, n: usize) -> f64 {
        self.two_r1w_depth(n, self.recursion_depth(n))
    }

    /// 2R1W cost with an explicit recursion depth.
    pub fn two_r1w_depth(&self, n: usize, k: u32) -> f64 {
        let n2 = (n as f64) * (n as f64);
        let w = self.w();
        3.0 * n2 / w + 6.0 * n2 / (w * w) + (2.0 * k as f64 + 3.0) * self.l()
    }

    /// Natural recursion depth of 2R1W: the sums matrix has side `n/w`;
    /// recursion continues while that exceeds one block, i.e. depth
    /// `k = ⌈log_w(n/w²)⌉` clamped at 0 (`k ≤ 1` for all practical sizes).
    pub fn recursion_depth(&self, n: usize) -> u32 {
        let w = self.cfg.width;
        let mut side = n.div_ceil(w); // side of the sums matrix
        let mut k = 0;
        while side > w {
            side = side.div_ceil(w);
            k += 1;
        }
        k
    }

    /// Theorem 6 — 1R1W: `2n²/w + 6n²/w² + (2n/w)·L`.
    ///
    /// Each block is read and written once (`2n²` coalesced operations) plus
    /// `O(w)` fringe operations per block; the block wavefront has
    /// `2·(n/w) − 1` barrier-delimited stages.
    pub fn one_r1w(&self, n: usize) -> f64 {
        let n2 = (n as f64) * (n as f64);
        let w = self.w();
        2.0 * n2 / w + 6.0 * n2 / (w * w) + 2.0 * (n as f64) / w * self.l()
    }

    /// Theorem 7 — the hybrid (1+r²)R1W:
    /// `(2 + r²)·n²/w + (2(1 − r)·n/w + 4k + 6)·L`.
    ///
    /// 2R1W handles the two corner triangles (together `r²n²` elements, so
    /// `3r²n²/w` traffic and `2(2k + 2) + 2` barriers), 1R1W handles the
    /// middle (`(1 − r²)n²` elements, `2(1 − r²)n²/w` traffic, and
    /// `2(1 − r)·n/w − 1` wavefront stages).
    pub fn hybrid(&self, n: usize, r: f64) -> f64 {
        assert!((0.0..=1.0).contains(&r), "r must lie in [0, 1]");
        let n2 = (n as f64) * (n as f64);
        let w = self.w();
        let k = self.recursion_depth(n) as f64;
        (2.0 + r * r) * n2 / w
            + 6.0 * n2 / (w * w)
            + (2.0 * (1.0 - r) * (n as f64) / w + 4.0 * k + 6.0) * self.l()
    }

    /// The admissible hybrid ratios for an `n × n` matrix: `r·(n/w)` must be
    /// an integer number of block anti-diagonals, so `r ∈ {0, w/n, 2w/n, …, 1}`.
    pub fn admissible_ratios(&self, n: usize) -> Vec<f64> {
        let m = n / self.cfg.width;
        (0..=m).map(|j| j as f64 / m as f64).collect()
    }

    /// The admissible `r` minimising the hybrid cost (the paper's Table II
    /// reports this per size; it decreases as `n` grows).
    pub fn optimal_r(&self, n: usize) -> f64 {
        let mut best = (f64::INFINITY, 0.0);
        for r in self.admissible_ratios(n) {
            let c = self.hybrid(n, r);
            if c < best.0 {
                best = (c, r);
            }
        }
        best.1
    }

    /// Cost of `algorithm` at size `n` (hybrid uses its optimal `r`).
    pub fn cost(&self, algorithm: SatAlgorithm, n: usize) -> f64 {
        match algorithm {
            SatAlgorithm::TwoR2W => self.two_r2w(n),
            SatAlgorithm::FourR4W => self.four_r4w(n),
            SatAlgorithm::FourR1W => self.four_r1w(n),
            SatAlgorithm::TwoR1W => self.two_r1w(n),
            SatAlgorithm::OneR1W => self.one_r1w(n),
            SatAlgorithm::HybridR1W => self.hybrid(n, self.optimal_r(n)),
        }
    }

    /// The algorithm the cost model predicts fastest at size `n`.
    pub fn predicted_best(&self, n: usize) -> SatAlgorithm {
        *SatAlgorithm::ALL
            .iter()
            .min_by(|a, b| {
                self.cost(**a, n)
                    .partial_cmp(&self.cost(**b, n))
                    .expect("costs are finite")
            })
            .expect("at least one algorithm")
    }

    /// One row of Table I: predicted operation counts, barriers and cost.
    pub fn table_one_row(&self, algorithm: SatAlgorithm, n: usize) -> TableOneRow {
        let n2 = (n as f64) * (n as f64);
        let w = self.w();
        let m = (n as f64) / w;
        let k = self.recursion_depth(n) as f64;
        let (cr, cw, sr, sw, b) = match algorithm {
            SatAlgorithm::TwoR2W => (n2, n2, n2, n2, 1.0),
            SatAlgorithm::FourR4W => (4.0 * n2, 4.0 * n2, 0.0, 0.0, 3.0),
            SatAlgorithm::FourR1W => (0.0, 0.0, 4.0 * n2, n2, 2.0 * n as f64 - 1.0),
            SatAlgorithm::TwoR1W => (
                2.0 * n2 + 3.0 * n2 / w,
                n2 + 3.0 * n2 / w,
                0.0,
                0.0,
                2.0 * k + 2.0,
            ),
            SatAlgorithm::OneR1W => (n2 + 2.0 * n2 / w, n2 + n2 / w, n2 / w, 0.0, 2.0 * m - 2.0),
            SatAlgorithm::HybridR1W => {
                // Fringe traffic scales with each part's share: ≈ 3n²/w in
                // the 2R1W triangles (r² of the area), ≈ n²/w coalesced +
                // n²/w stride in the 1R1W middle (1 − r² of the area).
                let r = self.optimal_r(n);
                let r2 = r * r;
                (
                    (1.0 + r2) * n2 + 3.0 * r2 * n2 / w + (1.0 - r2) * n2 / w,
                    n2 + 3.0 * r2 * n2 / w,
                    (1.0 - r2) * n2 / w,
                    0.0,
                    2.0 * (1.0 - r) * m + 4.0 * k + 5.0,
                )
            }
        };
        TableOneRow {
            algorithm,
            coalesced_reads: cr,
            coalesced_writes: cw,
            stride_reads: sr,
            stride_writes: sw,
            barrier_steps: b,
            cost: self.cost(algorithm, n),
        }
    }

    /// Transaction-exact counts for `algorithm` on an `n × n` input, where
    /// the kernel admits a closed form with *every* term (currently 1R1W on
    /// square inputs with `w | n`; other algorithms return `None` and should
    /// be compared against [`table_one_row`](Self::table_one_row) leading
    /// terms with a tolerance).
    ///
    /// 1R1W per Theorem 6, counting the fringes Table I drops: each of the
    /// `m² = (n/w)²` blocks loads its `w × w` tile coalesced (`n²` reads)
    /// and stores it once (`n²` coalesced writes). Blocks below the first
    /// block-row additionally read the `w`-wide column-sum fringe above them
    /// coalesced (`(m−1)·m·w` reads); blocks right of the first block-column
    /// read the `w`-tall row-sum fringe to their left, a stride access down
    /// a column (`(m−1)·m·w` stride reads); interior blocks read one corner
    /// prefix scalar (`(m−1)²` coalesced reads). The block anti-diagonal
    /// wavefront takes `2m − 1` launches, hence `2m − 2` barrier steps.
    pub fn exact_counts(&self, algorithm: SatAlgorithm, n: usize) -> Option<ExactCounts> {
        let w = self.cfg.width;
        if n == 0 || n % w != 0 {
            return None;
        }
        let m = (n / w) as u64;
        let wu = w as u64;
        let n2 = (n as u64) * (n as u64);
        match algorithm {
            SatAlgorithm::OneR1W => Some(ExactCounts {
                coalesced_reads: n2 + (m - 1) * m * wu + (m - 1) * (m - 1),
                coalesced_writes: n2,
                stride_reads: (m - 1) * m * wu,
                stride_writes: 0,
                barrier_steps: 2 * m - 2,
            }),
            _ => None,
        }
    }

    /// Transaction-exact per-phase counts of the **banded** (multi-device)
    /// 1R1W decomposition on a `rows × cols` input split into `bands`
    /// row-bands, one band per device. See
    /// [`BandedCounts`] for the phase structure; `bands` is clamped to the
    /// number of block-rows, and `None` is returned unless both dimensions
    /// are positive multiples of `w` (pad first, as the drivers do).
    ///
    /// Phase counts, with `m_k` block-rows in band `k`, `mc = cols / w`
    /// block-columns, and `D` bands:
    ///
    /// * **Column sums** (bands `0..D−1`; the last band's sums are never
    ///   consumed): read the band (`rows_k · cols` coalesced), write one
    ///   partial-sum row (`cols` coalesced), one launch.
    /// * **Margin exchange** (one launch): carry row `r` (seeding band
    ///   `r + 1`) reads partial-sum rows `0..=r` — `D(D−1)/2 · cols`
    ///   coalesced reads in total — and writes `D−1` carry rows.
    /// * **Band wavefront** (mirror fringe variant, so *zero* stride): the
    ///   band is read and written once (`2 · rows_k · cols` coalesced);
    ///   every block with a block-row above it (all of them when the band
    ///   is carry-seeded, `m_k − 1` rows' worth in band 0) reads a `w`-wide
    ///   top fringe; blocks right of the first block-column read their left
    ///   fringe from the mirror buffer (`m_k (mc−1) w` coalesced) plus one
    ///   corner scalar; every block publishes its right column to the
    ///   mirror (`m_k · mc · w` coalesced writes). `m_k + mc − 1` launches.
    pub fn banded_1r1w_exact_counts(
        &self,
        rows: usize,
        cols: usize,
        bands: usize,
    ) -> Option<BandedCounts> {
        let w = self.cfg.width;
        if rows == 0 || cols == 0 || rows % w != 0 || cols % w != 0 {
            return None;
        }
        let mr = rows / w;
        let mc = (cols / w) as u64;
        let d = bands.clamp(1, mr);
        let base = mr / d;
        let extra = mr % d;
        let band_rows = |k: usize| (base + usize::from(k >= d - extra)) as u64;

        let wu = w as u64;
        let colsu = cols as u64;
        let zero = ExactCounts {
            coalesced_reads: 0,
            coalesced_writes: 0,
            stride_reads: 0,
            stride_writes: 0,
            barrier_steps: 0,
        };

        let colsum = (0..d)
            .map(|k| {
                if k + 1 == d {
                    zero
                } else {
                    ExactCounts {
                        coalesced_reads: band_rows(k) * wu * colsu,
                        coalesced_writes: colsu,
                        ..zero
                    }
                }
            })
            .collect();

        let du = d as u64;
        let exchange = if d > 1 {
            ExactCounts {
                coalesced_reads: du * (du - 1) / 2 * colsu,
                coalesced_writes: (du - 1) * colsu,
                ..zero
            }
        } else {
            zero
        };

        let wavefront = (0..d)
            .map(|k| {
                let mk = band_rows(k);
                // Band 0 has no carry row: its first block-row reads no top
                // fringe and no corner scalar.
                let top_rows = if k == 0 { mk - 1 } else { mk };
                ExactCounts {
                    coalesced_reads: mk * wu * colsu
                        + top_rows * mc * wu
                        + mk * (mc - 1) * wu
                        + top_rows * (mc - 1),
                    coalesced_writes: mk * wu * colsu + mk * mc * wu,
                    stride_reads: 0,
                    stride_writes: 0,
                    barrier_steps: mk + mc - 2,
                }
            })
            .collect();

        Some(BandedCounts {
            bands: d,
            colsum,
            exchange,
            wavefront,
        })
    }

    /// Exact operation counts of the **persistent-block** 1R1W driver
    /// (single launch, flagged handoffs) on a square `n × n` input with
    /// `w | n`, fully deterministic at one resident block.
    ///
    /// Identical data movement to [`Self::exact_counts`] for
    /// [`SatAlgorithm::OneR1W`], plus one coalesced word per handoff flag
    /// operation: every block below the last block-row publishes its bottom
    /// SAT row once (`(m−1)·m` coalesced writes) and every block below the
    /// first block-row acquires the flag above it (`(m−1)·m` coalesced
    /// reads when each acquire succeeds on its first poll). The launch
    /// barrier disappears entirely: `B = 0`.
    pub fn persistent_1r1w_exact_counts(&self, n: usize) -> Option<ExactCounts> {
        let base = self.exact_counts(SatAlgorithm::OneR1W, n)?;
        let m = (n / self.cfg.width) as u64;
        Some(ExactCounts {
            coalesced_reads: base.coalesced_reads + (m - 1) * m,
            coalesced_writes: base.coalesced_writes + (m - 1) * m,
            barrier_steps: 0,
            ..base
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc() -> GlobalCost {
        GlobalCost::new(MachineConfig::default())
    }

    #[test]
    fn counters_classify_coalesced_and_stride() {
        let w = 4;
        let mut c = CostCounters::new();
        c.record(
            MemSpace::Global,
            AccessKind::Read,
            &WarpAccess::contiguous(0, 4, w),
            w,
        );
        c.record(
            MemSpace::Global,
            AccessKind::Write,
            &WarpAccess::strided(0, 4, 4, w),
            w,
        );
        assert_eq!(c.coalesced_reads, 4);
        assert_eq!(c.stride_writes, 4);
        assert_eq!(c.global_stages, 1 + 4);
        assert_eq!(c.global_ops(), 8);
    }

    #[test]
    fn cost_formula_matches_definition() {
        let cfg = MachineConfig::with_width(4).latency(10);
        let mut c = CostCounters::new();
        // 8 coalesced ops (2 stages), 3 stride ops, 1 barrier.
        c.record(
            MemSpace::Global,
            AccessKind::Read,
            &WarpAccess::contiguous(0, 4, 4),
            4,
        );
        c.record(
            MemSpace::Global,
            AccessKind::Write,
            &WarpAccess::contiguous(4, 4, 4),
            4,
        );
        c.barrier();
        c.record(
            MemSpace::Global,
            AccessKind::Read,
            &WarpAccess::strided(0, 4, 3, 4),
            4,
        );
        assert_eq!(c.global_cost(&cfg), 8.0 / 4.0 + 3.0 + 10.0 * 2.0);
        assert_eq!(c.simulated_time(&cfg), (2 + 3) as f64 + 10.0 * 2.0);
    }

    #[test]
    fn stride_fractions_match_table_one_columns() {
        let g = gc();
        let n = 1024;
        // 2R2W: the row-wise pass is stride — half of reads, half of writes.
        let r = g.table_one_row(SatAlgorithm::TwoR2W, n);
        assert_eq!(r.stride_read_fraction(), 0.5);
        assert_eq!(r.stride_write_fraction(), 0.5);
        assert_eq!(r.stride_fraction(), 0.5);
        // 4R4W: everything coalesced.
        let r = g.table_one_row(SatAlgorithm::FourR4W, n);
        assert_eq!(r.stride_fraction(), 0.0);
        // 4R1W: everything stride (and the write fraction is 1 despite
        // fewer writes than reads).
        let r = g.table_one_row(SatAlgorithm::FourR1W, n);
        assert_eq!(r.stride_read_fraction(), 1.0);
        assert_eq!(r.stride_write_fraction(), 1.0);
        // 1R1W: only the fringe reads (n²/w of ≈ n²) are stride.
        let r = g.table_one_row(SatAlgorithm::OneR1W, n);
        assert!(r.stride_write_fraction() == 0.0);
        assert!(r.stride_read_fraction() > 0.0 && r.stride_read_fraction() < 0.1);
    }

    #[test]
    fn merge_parallel_keeps_barriers() {
        let mut a = CostCounters::new();
        a.barrier();
        let mut b = CostCounters::new();
        b.barrier();
        b.coalesced_reads = 7;
        a.merge_parallel(&b);
        assert_eq!(a.barrier_steps, 1);
        assert_eq!(a.coalesced_reads, 7);
    }

    #[test]
    fn shared_accesses_do_not_touch_global_cost() {
        let cfg = MachineConfig::with_width(4).latency(10);
        let mut c = CostCounters::new();
        c.record(
            MemSpace::Shared,
            AccessKind::Read,
            &WarpAccess::contiguous(0, 4, 4),
            4,
        );
        assert_eq!(c.shared_reads, 4);
        assert_eq!(c.global_ops(), 0);
        assert_eq!(c.global_cost(&cfg), 10.0);
    }

    #[test]
    fn stride_access_dominates_2r2w() {
        // Lemma 2 vs Lemma 3: for large n, 4R4W beats 2R2W despite moving
        // twice the data, because stride access costs w times more.
        let g = gc();
        for n in [1024, 4096, 16384] {
            assert!(g.four_r4w(n) < g.two_r2w(n), "n={n}");
        }
    }

    #[test]
    fn four_r1w_is_worst_for_large_n() {
        let g = gc();
        for n in [1024usize, 8192] {
            for alg in [
                SatAlgorithm::TwoR2W,
                SatAlgorithm::FourR4W,
                SatAlgorithm::TwoR1W,
                SatAlgorithm::OneR1W,
            ] {
                assert!(
                    g.cost(alg, n) < g.four_r1w(n),
                    "{:?} should beat 4R1W at n={n}",
                    alg
                );
            }
        }
    }

    #[test]
    fn one_r1w_overtakes_two_r1w_for_large_n() {
        // The paper's Table II behaviour on the calibrated profile: 2R1W
        // wins up to 6K (the wavefront's per-stage overhead dominates), 1R1W
        // wins from 7K on (bandwidth dominates). The measured crossover in
        // Table II is exactly between the 6K and 7K columns.
        let g = GlobalCost::new(MachineConfig::gtx780ti());
        for n in (1..=6).map(|k| k * 1024) {
            assert!(g.two_r1w(n) <= g.one_r1w(n), "2R1W should win at n={n}");
        }
        for n in (7..=18).map(|k| k * 1024) {
            assert!(g.one_r1w(n) < g.two_r1w(n), "1R1W should win at n={n}");
        }
        // Under the pure paper model (no kernel-launch overhead) the
        // crossover happens much earlier, at n ≈ 2L.
        let pure = gc();
        assert!(pure.one_r1w(1024) < pure.two_r1w(1024));
    }

    #[test]
    fn hybrid_at_optimal_r_beats_both_parents() {
        let g = gc();
        for n in (1..=18).map(|k| k * 1024) {
            let r = g.optimal_r(n);
            let h = g.hybrid(n, r);
            // r = 0 is 1R1W and r = 1 is (almost) 2R1W, so the optimum over
            // admissible r is no worse than either endpoint.
            assert!(h <= g.hybrid(n, 0.0) + 1e-9);
            assert!(h <= g.hybrid(n, 1.0) + 1e-9);
        }
    }

    #[test]
    fn optimal_r_decreases_with_n() {
        // The paper's Table II: the best r shrinks as n grows (the stationary
        // point of the hybrid cost is r* = Λ/n, clamped to [0, 1]).
        let g = GlobalCost::new(MachineConfig::gtx780ti());
        let rs: Vec<f64> = [5, 6, 8, 10, 12, 14, 16, 18]
            .iter()
            .map(|&k| g.optimal_r(k * 1024))
            .collect();
        for pair in rs.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "optimal r should not increase: {rs:?}"
            );
        }
        assert!(rs[0] < 1.0, "r should be interior at n = 5K: {rs:?}");
        assert!(*rs.last().unwrap() > 0.0, "r should stay positive: {rs:?}");
    }

    #[test]
    fn predicted_best_follows_table_two_shape() {
        // Table II, boldface column by column: 2R1W is fastest for small
        // matrices, the hybrid (1+r²)R1W from 5K on.
        let g = GlobalCost::new(MachineConfig::gtx780ti());
        for n in [1024usize, 2048, 3072] {
            assert_eq!(
                g.predicted_best(n),
                SatAlgorithm::TwoR1W,
                "2R1W should be predicted fastest at n={n}"
            );
        }
        for n in (5..=18).map(|k| k * 1024) {
            assert_eq!(
                g.predicted_best(n),
                SatAlgorithm::HybridR1W,
                "the hybrid should be predicted fastest at n={n}"
            );
        }
    }

    #[test]
    fn recursion_depth_practical_values() {
        let g = gc();
        assert_eq!(g.recursion_depth(1024), 0); // 1024/32 = 32 ≤ w
        assert_eq!(g.recursion_depth(18 * 1024), 1); // 18432/32 = 576 > 32
        assert_eq!(g.recursion_depth(32), 0);
    }

    #[test]
    fn admissible_ratios_are_block_aligned() {
        let g = GlobalCost::new(MachineConfig::with_width(32));
        let rs = g.admissible_ratios(128);
        assert_eq!(rs.len(), 5); // m = 4 → {0, ¼, ½, ¾, 1}
        assert_eq!(rs[0], 0.0);
        assert_eq!(*rs.last().unwrap(), 1.0);
    }

    #[test]
    fn table_one_rows_are_consistent_with_costs() {
        let g = gc();
        let n = 4096;
        for alg in SatAlgorithm::ALL {
            let row = g.table_one_row(alg, n);
            assert_eq!(row.algorithm, alg);
            assert!(row.cost > 0.0);
            // Reads/writes per element must reflect the algorithm's name.
            let n2 = (n * n) as f64;
            let reads = (row.coalesced_reads + row.stride_reads) / n2;
            let writes = (row.coalesced_writes + row.stride_writes) / n2;
            match alg {
                SatAlgorithm::TwoR2W => {
                    assert_eq!(reads, 2.0);
                    assert_eq!(writes, 2.0);
                }
                SatAlgorithm::FourR4W => {
                    assert_eq!(reads, 4.0);
                    assert_eq!(writes, 4.0);
                }
                SatAlgorithm::FourR1W => {
                    assert_eq!(reads, 4.0);
                    assert_eq!(writes, 1.0);
                }
                SatAlgorithm::TwoR1W => {
                    assert!((2.0..2.2).contains(&reads), "{reads}");
                    assert!((1.0..1.2).contains(&writes), "{writes}");
                }
                SatAlgorithm::OneR1W => {
                    assert!((1.0..1.2).contains(&reads), "{reads}");
                    assert!((1.0..1.1).contains(&writes), "{writes}");
                }
                SatAlgorithm::HybridR1W => {
                    assert!((1.0..2.2).contains(&reads), "{reads}");
                    assert!((1.0..1.2).contains(&writes), "{writes}");
                }
            }
        }
    }

    #[test]
    fn exact_counts_refine_table_one_leading_terms() {
        let g = gc();
        let (w, n) = (32usize, 1024usize);
        let e = g.exact_counts(SatAlgorithm::OneR1W, n).unwrap();
        let row = g.table_one_row(SatAlgorithm::OneR1W, n);
        // Each exact column agrees with its Table I leading term to the
        // dropped-small-terms order, O(1/w) relative…
        let close = |exact: u64, lead: f64| (exact as f64 - lead).abs() <= lead * 4.0 / w as f64;
        assert!(close(e.coalesced_reads, row.coalesced_reads));
        assert!(close(e.coalesced_writes, row.coalesced_writes));
        assert!(close(e.stride_reads, row.stride_reads));
        assert_eq!(e.stride_writes, 0);
        assert_eq!(e.barrier_steps as f64, row.barrier_steps);
        // …and the derived C/S aggregates are consistent.
        assert_eq!(e.coalesced_ops(), e.coalesced_reads + e.coalesced_writes);
        let m = (n / w) as u64;
        assert_eq!(e.stride_ops(), (m - 1) * m * w as u64);
    }

    #[test]
    fn persistent_exact_counts_add_flag_words_and_drop_barriers() {
        let g = gc(); // w = 32
        let n = 256;
        let m = (n / 32) as u64;
        let base = g.exact_counts(SatAlgorithm::OneR1W, n).unwrap();
        let p = g.persistent_1r1w_exact_counts(n).unwrap();
        assert_eq!(p.coalesced_reads, base.coalesced_reads + (m - 1) * m);
        assert_eq!(p.coalesced_writes, base.coalesced_writes + (m - 1) * m);
        assert_eq!(p.stride_reads, base.stride_reads);
        assert_eq!(p.stride_writes, 0);
        assert_eq!(p.barrier_steps, 0, "no launch barrier survives");
        assert!(base.barrier_steps > 0);
        // Same alignment requirements as the staged form.
        assert!(g.persistent_1r1w_exact_counts(100).is_none());
        assert!(g.persistent_1r1w_exact_counts(0).is_none());
    }

    #[test]
    fn exact_counts_require_block_aligned_square() {
        let g = gc(); // w = 32
        assert!(g.exact_counts(SatAlgorithm::OneR1W, 0).is_none());
        assert!(g.exact_counts(SatAlgorithm::OneR1W, 100).is_none()); // 32 ∤ 100
        assert!(g.exact_counts(SatAlgorithm::TwoR2W, 1024).is_none()); // no closed form

        // Degenerate single-block case: no fringes, no barriers.
        let e = g.exact_counts(SatAlgorithm::OneR1W, 32).unwrap();
        assert_eq!(e.coalesced_reads, 32 * 32);
        assert_eq!(e.coalesced_writes, 32 * 32);
        assert_eq!(e.stride_reads, 0);
        assert_eq!(e.barrier_steps, 0);
    }

    #[test]
    fn exact_counts_match_detects_divergence() {
        let g = gc();
        let e = g.exact_counts(SatAlgorithm::OneR1W, 64).unwrap();
        let mut measured = CostCounters {
            coalesced_reads: e.coalesced_reads,
            coalesced_writes: e.coalesced_writes,
            stride_reads: e.stride_reads,
            stride_writes: e.stride_writes,
            barrier_steps: e.barrier_steps,
            ..CostCounters::new()
        };
        assert!(e.matches(&measured));
        measured.stride_reads += 1;
        assert!(!e.matches(&measured));
    }

    #[test]
    fn banded_counts_at_one_band_are_the_mirror_closed_form() {
        // D = 1 degenerates to the single-device mirror-variant 1R1W: no
        // column-sum pass, no exchange, and the wavefront entry carries the
        // full-matrix mirror counts (fully coalesced; writes n² + n·m).
        let g = GlobalCost::new(MachineConfig::with_width(8));
        let n = 64usize;
        let m = (n / 8) as u64;
        let b = g.banded_1r1w_exact_counts(n, n, 1).unwrap();
        assert_eq!(b.bands, 1);
        assert_eq!(b.colsum, vec![b.exchange]); // both all-zero
        assert_eq!(b.exchange.coalesced_ops(), 0);
        let wf = &b.wavefront[0];
        let n2 = (n * n) as u64;
        assert_eq!(
            wf.coalesced_reads,
            n2 + (m - 1) * m * 8 + m * (m - 1) * 8 + (m - 1) * (m - 1)
        );
        assert_eq!(wf.coalesced_writes, n2 + m * m * 8);
        assert_eq!(wf.stride_ops(), 0);
        assert_eq!(wf.barrier_steps, 2 * m - 2);
        assert_eq!(b.total_launches(), 2 * m - 1);
        assert_eq!(b.critical_path_launches(), 2 * m - 1);
        // Critical path cost is exactly that single entry's windowed cost.
        let cfg = MachineConfig::with_width(8);
        let expect =
            wf.coalesced_ops() as f64 / 8.0 + cfg.window_overhead() as f64 * (2 * m - 1) as f64;
        assert_eq!(b.critical_path_cost(&cfg), expect);
    }

    #[test]
    fn banded_counts_conserve_band_traffic() {
        // Across any number of bands, the wavefront phase reads and writes
        // each element exactly once (loads + stores = 2·rows·cols) and the
        // column-sum pass reads every non-final band once.
        let g = GlobalCost::new(MachineConfig::with_width(8));
        let (rows, cols) = (96usize, 64usize);
        for d in 1..=7 {
            let b = g.banded_1r1w_exact_counts(rows, cols, d).unwrap();
            let loads_stores: u64 = b
                .wavefront
                .iter()
                .map(|e| {
                    // Strip the fringe terms: loads are rows_k·cols of the
                    // reads, stores rows_k·cols of the writes; fringe and
                    // mirror terms are per-block multiples of w.
                    e.coalesced_reads + e.coalesced_writes
                })
                .sum();
            assert!(loads_stores >= 2 * (rows * cols) as u64, "d={d}");
            // Band partition covers all block-rows exactly once.
            let mr = rows / 8;
            let d_eff = d.min(mr);
            assert_eq!(b.bands, d_eff);
            let total_band_rows: u64 = b
                .wavefront
                .iter()
                .map(|e| (e.barrier_steps + 1) - (cols as u64 / 8) + 1)
                .sum();
            assert_eq!(total_band_rows, mr as u64);
        }
    }

    #[test]
    fn banded_counts_partition_puts_extras_on_later_bands() {
        let g = GlobalCost::new(MachineConfig::with_width(8));
        // 88 rows → 11 block-rows over 4 bands: 2, 3, 3, 3.
        let b = g.banded_1r1w_exact_counts(88, 64, 4).unwrap();
        let mc = 64u64 / 8;
        let band_rows: Vec<u64> = b
            .wavefront
            .iter()
            .map(|e| (e.barrier_steps + 1) - mc + 1)
            .collect();
        assert_eq!(band_rows, vec![2, 3, 3, 3]);
    }

    #[test]
    fn banded_counts_require_block_aligned_dims_and_clamp_bands() {
        let g = GlobalCost::new(MachineConfig::with_width(8));
        assert!(g.banded_1r1w_exact_counts(0, 64, 2).is_none());
        assert!(g.banded_1r1w_exact_counts(64, 0, 2).is_none());
        assert!(g.banded_1r1w_exact_counts(60, 64, 2).is_none());
        assert!(g.banded_1r1w_exact_counts(64, 60, 2).is_none());
        // More bands than block-rows clamps; 16 rows = 2 block-rows.
        let b = g.banded_1r1w_exact_counts(16, 64, 8).unwrap();
        assert_eq!(b.bands, 2);
        // Zero requested bands clamps up to one.
        assert_eq!(g.banded_1r1w_exact_counts(64, 64, 0).unwrap().bands, 1);
    }

    #[test]
    fn banded_critical_path_shows_fleet_speedup() {
        // The acceptance gate's model metric: at n = 512, w = 8, four bands
        // cut the modeled completion time of plain single-device 1R1W by
        // more than 3× (the margin-exchange traffic is priced in).
        let cfg = MachineConfig::with_width(8);
        let g = GlobalCost::new(cfg);
        let n = 512;
        let single = g.exact_counts(SatAlgorithm::OneR1W, n).unwrap();
        let single_cost = single.coalesced_ops() as f64 / 8.0
            + single.stride_ops() as f64
            + cfg.window_overhead() as f64 * (single.barrier_steps + 1) as f64;
        let fleet = g.banded_1r1w_exact_counts(n, n, 4).unwrap();
        let fleet_cost = fleet.critical_path_cost(&cfg);
        let speedup = single_cost / fleet_cost;
        assert!(
            speedup >= 3.0,
            "modeled D=4 speedup {speedup:.2} (single {single_cost:.0} vs fleet {fleet_cost:.0})"
        );
        // And fewer launches sit on the critical path than a single device
        // issues in total.
        assert!(fleet.critical_path_launches() < single.barrier_steps + 1);
        // Total traffic exceeds single-device (the exchange is not free) but
        // by less than the column-sum pass' one extra read per element.
        let total = fleet.total();
        assert!(total.coalesced_ops() > single.coalesced_ops());
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(SatAlgorithm::OneR1W.name(), "1R1W");
        assert_eq!(SatAlgorithm::HybridR1W.name(), "(1+r^2)R1W");
    }
}
