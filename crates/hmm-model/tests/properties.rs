//! Property tests for the machine-model primitives.

use hmm_model::pipeline::{Machine, Pipeline};
use hmm_model::{bank_of, group_of, DiagonalLayout, MachineConfig, WarpAccess};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(3), Just(4), Just(8), Just(16), Just(32)]
}

proptest! {
    #[test]
    fn dmm_stages_equal_max_bank_multiplicity(
        w in arb_width(),
        addrs in proptest::collection::vec(0usize..10_000, 1..32),
    ) {
        let addrs: Vec<usize> = addrs.into_iter().take(w).collect();
        let a = WarpAccess::dense(&addrs, w);
        // Brute force: count per bank.
        let mut per_bank = vec![0usize; w];
        for &x in &addrs {
            per_bank[bank_of(x, w)] += 1;
        }
        prop_assert_eq!(a.dmm_stages(w), *per_bank.iter().max().unwrap());
    }

    #[test]
    fn umm_stages_equal_distinct_groups(
        w in arb_width(),
        addrs in proptest::collection::vec(0usize..10_000, 1..32),
    ) {
        let addrs: Vec<usize> = addrs.into_iter().take(w).collect();
        let a = WarpAccess::dense(&addrs, w);
        let mut groups: Vec<usize> = addrs.iter().map(|&x| group_of(x, w)).collect();
        groups.sort_unstable();
        groups.dedup();
        prop_assert_eq!(a.umm_stages(w), groups.len());
    }

    #[test]
    fn stage_counts_are_bounded_by_ops(
        w in arb_width(),
        addrs in proptest::collection::vec(0usize..10_000, 1..32),
    ) {
        let addrs: Vec<usize> = addrs.into_iter().take(w).collect();
        let a = WarpAccess::dense(&addrs, w);
        prop_assert!(a.dmm_stages(w) >= 1);
        prop_assert!(a.dmm_stages(w) <= a.ops());
        prop_assert!(a.umm_stages(w) >= 1);
        prop_assert!(a.umm_stages(w) <= a.ops());
    }

    #[test]
    fn aligned_contiguous_access_is_always_ideal(w in arb_width(), base_grp in 0usize..100) {
        let a = WarpAccess::contiguous(base_grp * w, w, w);
        prop_assert!(a.is_coalesced(w));
        prop_assert!(a.is_conflict_free(w));
    }

    #[test]
    fn diagonal_layout_is_bijective_and_conflict_free(w in arb_width()) {
        let d = DiagonalLayout::new(w);
        let mut seen = vec![false; w * w];
        for i in 0..w {
            for j in 0..w {
                let p = d.addr(i, j);
                prop_assert!(!seen[p]);
                seen[p] = true;
                prop_assert_eq!(d.logical(p), (i, j));
            }
        }
        for k in 0..w {
            prop_assert!(d.row_access(k).is_conflict_free(w));
            prop_assert!(d.col_access(k).is_conflict_free(w));
        }
    }

    #[test]
    fn pipeline_time_is_stages_plus_latency_minus_one(
        w in arb_width(),
        latency in 1u64..200,
        n_warps in 1usize..20,
    ) {
        // Independent warps: closed form must hold whatever the accesses.
        let accesses: Vec<WarpAccess> = (0..n_warps)
            .map(|k| WarpAccess::strided(k * 7, 1 + k % 5, w.min(4), w))
            .collect();
        let p = Pipeline::new(Machine::Umm, w, latency);
        let t = p.independent_time(&accesses);
        prop_assert_eq!(t.completion_time, t.stages + latency - 1);
    }

    #[test]
    fn dependent_simulation_never_beats_independent(
        latency in 1u64..100,
        rounds in 1usize..6,
        warps in 1usize..8,
    ) {
        let w = 4;
        let per_warp: Vec<Vec<WarpAccess>> = (0..warps)
            .map(|i| {
                (0..rounds)
                    .map(|k| WarpAccess::contiguous((i * rounds + k) * w, w, w))
                    .collect()
            })
            .collect();
        let flat: Vec<WarpAccess> = per_warp.iter().flatten().cloned().collect();
        let p = Pipeline::new(Machine::Umm, w, latency);
        let dep = p.simulate(&per_warp);
        let ind = p.independent_time(&flat);
        prop_assert_eq!(dep.stages, ind.stages);
        prop_assert!(dep.completion_time >= ind.completion_time);
        // And it cannot be worse than full serialisation.
        prop_assert!(dep.completion_time <= ind.stages.max(1) * latency);
    }

    #[test]
    fn cost_is_monotone_in_latency(n in 64usize..4096, l1 in 1u64..500, dl in 1u64..500) {
        use hmm_model::cost::{GlobalCost, SatAlgorithm};
        let n = (n / 32) * 32 + 32;
        let g1 = GlobalCost::new(MachineConfig::with_width(32).latency(l1));
        let g2 = GlobalCost::new(MachineConfig::with_width(32).latency(l1 + dl));
        for alg in SatAlgorithm::ALL {
            prop_assert!(g1.cost(alg, n) <= g2.cost(alg, n), "{:?}", alg);
        }
    }

    #[test]
    fn optimal_r_is_admissible_and_optimal(n_blocks in 2usize..64, overhead in 0u64..8000) {
        use hmm_model::cost::GlobalCost;
        let w = 32;
        let n = n_blocks * w;
        let cfg = MachineConfig::with_width(w).barrier_overhead(overhead);
        let g = GlobalCost::new(cfg);
        let r = g.optimal_r(n);
        let ratios = g.admissible_ratios(n);
        prop_assert!(ratios.iter().any(|&x| (x - r).abs() < 1e-12));
        for x in ratios {
            prop_assert!(g.hybrid(n, r) <= g.hybrid(n, x) + 1e-9);
        }
    }
}
