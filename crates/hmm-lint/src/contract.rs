//! What a kernel *promises* — the budgets the analyzer holds it to.

use hmm_model::cost::{GlobalCost, SatAlgorithm, TableOneRow};
use hmm_model::MachineConfig;

/// The performance/correctness contract of one kernel run.
///
/// The structural rules (bank conflicts, barrier races, shared-reset reads)
/// are unconditional; the contract adds the *budgeted* dimensions: how much
/// stride traffic the kernel is allowed (Table I's stride columns — 2R2W
/// deliberately leaves its row-wise half stride, 1R1W must be essentially
/// coalesced), and which closed-form `C`/`S`/`B` predictions the measured
/// counters must track.
#[derive(Debug, Clone)]
pub struct KernelContract {
    /// Kernel name, used in reports.
    pub name: String,
    /// Allowed fraction of global operations that may be stride (0 = fully
    /// coalesced, 1 = unconstrained).
    pub stride_budget: f64,
    /// Absolute slack on the stride fraction, covering fringe terms the
    /// Table I leading terms drop.
    pub stride_slack: f64,
    /// Table I predictions to check measured counters against (skipped when
    /// `None`).
    pub expected: Option<TableOneRow>,
    /// Relative tolerance on the `C`/`S`/`B` divergence checks.
    pub rel_tolerance: f64,
    /// Absolute slack (in operations) on the `C`/`S` divergence checks —
    /// fringe traffic the leading terms drop is `O(n²/w)`.
    pub ops_slack: f64,
    /// Absolute slack (in steps) on the barrier divergence check.
    pub barrier_slack: f64,
    /// The kernel deliberately exchanges data between blocks of one launch
    /// through flagged handoff slots ([`gpu_exec::HandoffFlags`]). Skips
    /// the classic `barrier-race` rule (which has no notion of
    /// release→acquire edges and would flag every handoff); safety is then
    /// carried entirely by the schedule-generalizing `schedule-race` and
    /// `handoff-before-ready` rules, which understand those edges.
    pub allow_handoffs: bool,
}

impl KernelContract {
    /// The contract of a paper algorithm at size `n` on machine `cfg`:
    /// stride budget and expected counters from its Table I row.
    pub fn for_algorithm(alg: SatAlgorithm, n: usize, cfg: MachineConfig) -> Self {
        let row = GlobalCost::new(cfg).table_one_row(alg, n);
        let n2 = (n as f64) * (n as f64);
        // The hybrid's `B ≈ 2(1 − r)m + 4k + 5` is a leading-term
        // approximation whose constant term is off by several steps when
        // `r` is near 1 and `n` is small; the exact rows get a tight slack.
        let barrier_slack = match alg {
            SatAlgorithm::HybridR1W => 8.0,
            _ => 2.0,
        };
        KernelContract {
            name: alg.name().to_string(),
            stride_budget: row.stride_fraction(),
            stride_slack: 0.02,
            expected: Some(row),
            rel_tolerance: 0.25,
            // One fringe pass of traffic: the magnitude of the terms the
            // leading-term rows drop.
            ops_slack: 2.0 * n2 / (cfg.width as f64) + 4.0 * (n as f64),
            barrier_slack,
            allow_handoffs: false,
        }
    }

    /// The contract of the **persistent-block** 1R1W driver
    /// (`sat_1r1w_persistent`): identical data movement to
    /// [`SatAlgorithm::OneR1W`] plus one coalesced word per handoff flag
    /// operation, but the whole wavefront runs in a *single* launch —
    /// expected barrier steps drop from `2n/w − 2` to `0`, and the modeled
    /// cost pays `Λ` once instead of per stage. Handoffs are declared
    /// (`allow_handoffs`), so safety is checked by the
    /// schedule-generalizing `schedule-race` / `handoff-before-ready`
    /// rules rather than the barrier-race rule.
    pub fn for_persistent_1r1w(n: usize, cfg: MachineConfig) -> Self {
        let mut c = Self::for_algorithm(SatAlgorithm::OneR1W, n, cfg).with_handoffs();
        c.name = "1R1W-persist".to_string();
        if let Some(row) = &mut c.expected {
            let m = (n / cfg.width) as f64;
            let l = cfg.window_overhead() as f64;
            // Flag traffic rides the coalesced counters: one write per
            // publish, one read per (first-poll-success) acquire.
            row.coalesced_reads += (m - 1.0) * m;
            row.coalesced_writes += (m - 1.0) * m;
            row.barrier_steps = 0.0;
            // Same closed form as 1R1W with its `2·(n/w)·Λ` barrier term
            // replaced by the single launch's `Λ`, plus the flag words'
            // coalesced pipeline share.
            row.cost += l - 2.0 * m * l + 2.0 * (m - 1.0) * m / (cfg.width as f64);
        }
        c
    }

    /// A contract that only enforces the structural rules: any stride
    /// fraction is allowed and no Table I row is checked.
    pub fn unconstrained(name: impl Into<String>) -> Self {
        KernelContract {
            name: name.into(),
            stride_budget: 1.0,
            stride_slack: 0.0,
            expected: None,
            rel_tolerance: 0.25,
            ops_slack: 0.0,
            barrier_slack: 2.0,
            allow_handoffs: false,
        }
    }

    /// Mark the kernel as a deliberate user of flagged handoff slots (see
    /// [`KernelContract::allow_handoffs`]).
    pub fn with_handoffs(mut self) -> Self {
        self.allow_handoffs = true;
        self
    }

    /// A contract demanding essentially full coalescing (fringe slack only)
    /// and no Table I check.
    pub fn fully_coalesced(name: impl Into<String>) -> Self {
        KernelContract {
            stride_budget: 0.0,
            stride_slack: 0.02,
            ..Self::unconstrained(name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_contracts_take_budgets_from_table_one() {
        let cfg = MachineConfig::with_width(16);
        let c = KernelContract::for_algorithm(SatAlgorithm::TwoR2W, 256, cfg);
        assert_eq!(c.stride_budget, 0.5);
        assert!(c.expected.is_some());

        let c = KernelContract::for_algorithm(SatAlgorithm::FourR4W, 256, cfg);
        assert_eq!(c.stride_budget, 0.0);

        let c = KernelContract::for_algorithm(SatAlgorithm::FourR1W, 256, cfg);
        assert_eq!(c.stride_budget, 1.0);

        // 1R1W: only the left-fringe reads are stride — a few percent.
        let c = KernelContract::for_algorithm(SatAlgorithm::OneR1W, 256, cfg);
        assert!(c.stride_budget > 0.0 && c.stride_budget < 0.05);
    }

    #[test]
    fn persistent_1r1w_contract_drops_barriers_and_declares_handoffs() {
        let cfg = MachineConfig::with_width(16);
        let base = KernelContract::for_algorithm(SatAlgorithm::OneR1W, 256, cfg);
        let p = KernelContract::for_persistent_1r1w(256, cfg);
        assert_eq!(p.name, "1R1W-persist");
        assert!(p.allow_handoffs);
        let pb = p.expected.unwrap();
        let bb = base.expected.unwrap();
        assert_eq!(pb.barrier_steps, 0.0);
        assert!(bb.barrier_steps > 0.0);
        assert!(pb.coalesced_reads > bb.coalesced_reads, "flag reads ride C");
        assert!(
            pb.cost < bb.cost,
            "one launch must model cheaper than {} barrier steps",
            bb.barrier_steps
        );
    }

    #[test]
    fn unconstrained_and_coalesced() {
        let u = KernelContract::unconstrained("anything");
        assert_eq!(u.stride_budget, 1.0);
        assert!(u.expected.is_none());
        let f = KernelContract::fully_coalesced("strict");
        assert_eq!(f.stride_budget, 0.0);
        assert_eq!(f.name, "strict");
    }
}
