//! Diagnostic types: rules, severities, and the lint report.

use serde::{Deserialize, Serialize};

/// Version of the serialized report shape (`LintReport`, `Diagnostic`,
/// `ConflictSite`), surfaced as `schema_version` in `satlint --json`
/// records. Bump on any field addition/removal/rename.
///
/// History: 1 = the original shape; 2 = added `Diagnostic::conflict`
/// provenance, the `schedule-race` / `handoff-before-ready` rules and the
/// `schema_version` field itself.
pub const SCHEMA_VERSION: u32 = 2;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but possibly intentional (e.g. reads of reset shared
    /// state, which is well-defined — zeroed — but rarely meant).
    Warning,
    /// A contract violation: wrong on the asynchronous HMM or clearly
    /// missing the kernel's performance budget.
    Error,
}

/// The analyses `hmm-lint` runs over a recorded [`gpu_exec::RunTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// A shared-memory transaction occupies more DMM pipeline stages than
    /// the conflict-free minimum `⌈ops / w⌉` (Lemma 1 exists to avoid this).
    BankConflict,
    /// The kernel's global stride fraction exceeds its contract budget
    /// (Table I's stride columns; e.g. 1R1W must be ~100 % coalesced while
    /// 2R2W deliberately leaves its row-wise half stride).
    Uncoalesced,
    /// Two blocks of one launch touch the same global word with at least
    /// one write — inter-block communication inside a barrier window, which
    /// the asynchronous HMM forbids.
    BarrierRace,
    /// A block warp-reads a shared tile that is never warp-written in its
    /// launch window: barriers reset shared memory, so the read observes
    /// only zeroes.
    SharedReset,
    /// Measured `C`/`S`/`B` counters drift beyond tolerance from the
    /// Table I closed-form predictions for the kernel's algorithm.
    CostDivergence,
    /// A launch marked lost by fault injection still shows global writes
    /// in its trace. A lost device retains nothing: any observed write
    /// breaks the no-write-after-loss recovery contract that retry and
    /// degradation logic depend on.
    WriteAfterLoss,
    /// Two blocks of one launch make conflicting accesses to the same
    /// global word with no happens-before path between them — a data race
    /// under *some* legal HMM schedule, even if the recorded one got
    /// lucky. Unlike [`Rule::BarrierRace`] this rule understands
    /// release→acquire handoff edges, so properly acquired flagged
    /// handoffs are exempt.
    ScheduleRace,
    /// A read of a flagged handoff slot's data region that is not ordered
    /// after the corresponding flag write — the consumer may observe the
    /// region before the producer published it. Persistent-block
    /// execution relies on this rule.
    HandoffBeforeReady,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 8] = [
        Rule::BankConflict,
        Rule::Uncoalesced,
        Rule::BarrierRace,
        Rule::SharedReset,
        Rule::CostDivergence,
        Rule::WriteAfterLoss,
        Rule::ScheduleRace,
        Rule::HandoffBeforeReady,
    ];

    /// Stable kebab-case name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            Rule::BankConflict => "bank-conflict",
            Rule::Uncoalesced => "uncoalesced",
            Rule::BarrierRace => "barrier-race",
            Rule::SharedReset => "shared-reset",
            Rule::CostDivergence => "cost-divergence",
            Rule::WriteAfterLoss => "write-after-loss",
            Rule::ScheduleRace => "schedule-race",
            Rule::HandoffBeforeReady => "handoff-before-ready",
        }
    }
}

/// Structured provenance of a cross-block conflict: which word of which
/// buffer, and which two blocks collide. Attached to race-family findings
/// so JSON consumers need not parse messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictSite {
    /// Identity of the buffer (or flag set) the conflict is on.
    pub buf: u64,
    /// Word address within the buffer.
    pub word: usize,
    /// One conflicting block (the earlier-indexed one).
    pub first_block: usize,
    /// The other conflicting block.
    pub second_block: usize,
}

/// One finding, pinpointed as far as the trace allows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which analysis fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description with the measured numbers.
    pub message: String,
    /// Launch (barrier window) index, when the finding is localised.
    pub launch: Option<usize>,
    /// Block id within the launch, when localised.
    pub block: Option<usize>,
    /// Op index within the block's trace, when localised.
    pub op: Option<usize>,
    /// Cross-block conflict provenance (race-family rules only).
    pub conflict: Option<ConflictSite>,
}

impl Diagnostic {
    /// Render as a one-line compiler-style message.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        let mut site = String::new();
        if let Some(l) = self.launch {
            site.push_str(&format!(" launch {l}"));
        }
        if let Some(b) = self.block {
            site.push_str(&format!(" block {b}"));
        }
        if let Some(o) = self.op {
            site.push_str(&format!(" op {o}"));
        }
        format!("{sev}[{}]{site}: {}", self.rule.name(), self.message)
    }
}

/// Everything one analysis pass produced for one kernel run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Name of the analysed kernel (the contract's name).
    pub kernel: String,
    /// The findings, capped per rule (see `suppressed`).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings dropped beyond the per-rule cap — a broken kernel can
    /// violate a rule once per transaction.
    pub suppressed: usize,
    /// Launches (barrier windows) analysed.
    pub launches: usize,
    /// Warp transactions analysed.
    pub ops: usize,
}

impl LintReport {
    /// `true` when no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.suppressed == 0
    }

    /// `true` when no `Error`-severity rule fired.
    pub fn is_error_free(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of reported findings for `rule` (suppressed ones excluded).
    pub fn count(&self, rule: Rule) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// Whether `rule` fired at least once.
    pub fn has(&self, rule: Rule) -> bool {
        self.count(rule) > 0
    }

    /// Render the whole report as human-readable lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "{}: clean ({} launches, {} ops)\n",
                self.kernel, self.launches, self.ops
            ));
            return out;
        }
        out.push_str(&format!(
            "{}: {} finding(s) over {} launches, {} ops\n",
            self.kernel,
            self.diagnostics.len(),
            self.launches,
            self.ops
        ));
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.render());
            out.push('\n');
        }
        if self.suppressed > 0 {
            out.push_str(&format!(
                "  … and {} more finding(s) suppressed\n",
                self.suppressed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: Rule, sev: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            severity: sev,
            message: "m".to_string(),
            launch: Some(1),
            block: Some(2),
            op: None,
            conflict: None,
        }
    }

    #[test]
    fn conflict_site_is_carried_and_serialized() {
        let mut d = diag(Rule::ScheduleRace, Severity::Error);
        d.conflict = Some(ConflictSite {
            buf: 7,
            word: 42,
            first_block: 0,
            second_block: 3,
        });
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"conflict\""), "{json}");
        assert!(json.contains("\"word\":42"), "{json}");
        assert!(json.contains("\"second_block\":3"), "{json}");
        assert!(d.render().contains("schedule-race"));
    }

    #[test]
    fn report_queries() {
        let r = LintReport {
            kernel: "k".to_string(),
            diagnostics: vec![
                diag(Rule::BankConflict, Severity::Error),
                diag(Rule::SharedReset, Severity::Warning),
            ],
            suppressed: 0,
            launches: 3,
            ops: 10,
        };
        assert!(!r.is_clean());
        assert!(!r.is_error_free());
        assert_eq!(r.count(Rule::BankConflict), 1);
        assert!(r.has(Rule::SharedReset));
        assert!(!r.has(Rule::BarrierRace));
        let text = r.render();
        assert!(text.contains("error[bank-conflict] launch 1 block 2: m"));
        assert!(text.contains("warning[shared-reset]"));
    }

    #[test]
    fn clean_report_renders_clean() {
        let r = LintReport {
            kernel: "k".to_string(),
            diagnostics: Vec::new(),
            suppressed: 0,
            launches: 2,
            ops: 5,
        };
        assert!(r.is_clean());
        assert!(r.is_error_free());
        assert!(r.render().contains("clean"));
    }
}
