//! Schedule-generalizing race analysis: happens-before reconstruction over
//! a recorded run.
//!
//! The classic `barrier-race` rule asks "did two blocks of one launch touch
//! the same word?". This module asks the stronger question the asynchronous
//! HMM actually poses: *is there any legal schedule under which two
//! conflicting accesses are unordered?* The happens-before order it
//! reconstructs from a [`RunTrace`] has three kinds of edges:
//!
//! 1. **Program order** within a block — a block's warps issue its trace
//!    ops in order.
//! 2. **Barrier edges** between launches — every op of launch `L` happens
//!    before every op of launch `L+1` (the launch boundary is the machine's
//!    barrier).
//! 3. **Release→acquire edges** within a launch — a successful
//!    [`AddrPattern::FlagRead`] (`ready = true`) is ordered after the
//!    [`AddrPattern::FlagWrite`] that published the slot.
//!
//! Blocks of one launch are otherwise *unordered*: the machine may run them
//! in any order. Cross-block conflicting accesses (same global word, at
//! least one write) with no happens-before path are reported as
//! `schedule-race` — a data race under *some* legal schedule, even if the
//! recorded one got lucky. Reads of a flagged handoff slot's data region
//! that are not ordered after the corresponding flag write are reported as
//! `handoff-before-ready`.
//!
//! Happens-before within a launch is computed with vector-clock epochs:
//! each release→acquire edge grants the acquiring block the publisher's
//! knowledge frontier (its op count plus everything *it* acquired
//! earlier), propagated to a fixpoint — edge chains through intermediate
//! blocks are honoured, and the bounded iteration is safe even on
//! hand-crafted traces whose edges could not arise from a real execution.

use std::collections::BTreeMap;

use gpu_exec::{AddrPattern, LaunchTrace, RunTrace};
use hmm_model::{AccessKind, MemSpace};

use crate::analyze::Reporter;
use crate::report::{ConflictSite, Rule, Severity};

/// A handoff slot's identity: (flag-set id, slot index).
type SlotKey = (u64, usize);

/// One publication of a handoff slot observed anywhere in the run.
#[derive(Debug, Clone, Copy)]
struct Publication {
    launch: usize,
    block: usize,
    op: usize,
    data_buf: u64,
    base: usize,
    len: usize,
}

/// Every slot publication in the run, keyed by slot. Built once per
/// analysis; launches consult it for cross-launch handoff checks.
#[derive(Debug, Default)]
pub(crate) struct SlotDirectory {
    pubs: BTreeMap<SlotKey, Vec<Publication>>,
}

impl SlotDirectory {
    /// Scan the whole run for flag writes.
    pub(crate) fn collect(trace: &RunTrace) -> Self {
        let mut dir = SlotDirectory::default();
        for (li, launch) in trace.launches.iter().enumerate() {
            for (b, pats) in launch.addrs.iter().enumerate() {
                for (k, pat) in pats.iter().enumerate() {
                    if let AddrPattern::FlagWrite {
                        flags,
                        slot,
                        data_buf,
                        base,
                        len,
                    } = pat
                    {
                        dir.pubs
                            .entry((*flags, *slot))
                            .or_default()
                            .push(Publication {
                                launch: li,
                                block: b,
                                op: k,
                                data_buf: *data_buf,
                                base: *base,
                                len: *len,
                            });
                    }
                }
            }
        }
        dir
    }

    fn is_empty(&self) -> bool {
        self.pubs.is_empty()
    }

    /// Publications whose data region contains `(buf, word)`.
    fn covering(&self, buf: u64, word: usize) -> impl Iterator<Item = (SlotKey, &Publication)> {
        self.pubs.iter().flat_map(move |(key, pubs)| {
            pubs.iter()
                .filter(move |p| p.data_buf == buf && (p.base..p.base + p.len).contains(&word))
                .map(move |p| (*key, p))
        })
    }
}

/// A release→acquire edge inside one launch: op `from_op` of `from_block`
/// (the flag write) happens before op `to_op` of `to_block` (the
/// successful flag read).
#[derive(Debug, Clone, Copy)]
struct Edge {
    from_block: usize,
    from_op: usize,
    to_block: usize,
    to_op: usize,
}

/// Happens-before index for one launch: per block, the knowledge acquired
/// at each successful flag read, as vector clocks over blocks. Everything
/// else is program order.
struct HbIndex {
    /// `acquired[b]` = sorted `(op, clock)` checkpoints: from op indices
    /// strictly greater than `op`, block `b` additionally knows `clock`
    /// (`clock[a]` = number of leading ops of block `a` that happened
    /// before).
    acquired: BTreeMap<usize, Vec<(usize, Vec<usize>)>>,
    blocks: usize,
}

impl HbIndex {
    fn new(edges: &[Edge], blocks: usize) -> Self {
        // Fixpoint over edge-granted clocks: the clock granted by an edge
        // is the publisher's frontier *at the flag write*, which includes
        // what the publisher itself acquired before that op. Each pass can
        // only grow clocks, and every useful chain is at most `edges` long,
        // so `edges + 1` passes always converge (and bound the work on
        // adversarially cyclic hand-made traces).
        let mut granted: Vec<Vec<usize>> = vec![vec![0; blocks]; edges.len()];
        for _ in 0..=edges.len() {
            let mut changed = false;
            for (i, e) in edges.iter().enumerate() {
                let mut clock = vec![0; blocks];
                clock[e.from_block] = e.from_op + 1;
                for (j, e2) in edges.iter().enumerate() {
                    if e2.to_block == e.from_block && e2.to_op < e.from_op {
                        join(&mut clock, &granted[j]);
                    }
                }
                if join(&mut granted[i], &clock) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut acquired: BTreeMap<usize, Vec<(usize, Vec<usize>)>> = BTreeMap::new();
        for (i, e) in edges.iter().enumerate() {
            acquired
                .entry(e.to_block)
                .or_default()
                .push((e.to_op, granted[i].clone()));
        }
        for list in acquired.values_mut() {
            list.sort_by_key(|(op, _)| *op);
        }
        HbIndex { acquired, blocks }
    }

    /// Does op `o1` of block `b1` happen before op `o2` of block `b2`
    /// under every legal schedule of this launch?
    fn ordered(&self, b1: usize, o1: usize, b2: usize, o2: usize) -> bool {
        if b1 == b2 {
            return o1 < o2;
        }
        debug_assert!(b1 < self.blocks && b2 < self.blocks);
        let known = self
            .acquired
            .get(&b2)
            .into_iter()
            .flatten()
            .filter(|(op, _)| *op < o2)
            .map(|(_, clock)| clock[b1])
            .max()
            .unwrap_or(0);
        o1 < known
    }
}

/// Elementwise max; returns whether `into` grew.
fn join(into: &mut [usize], other: &[usize]) -> bool {
    let mut grew = false;
    for (a, &b) in into.iter_mut().zip(other) {
        if b > *a {
            *a = b;
            grew = true;
        }
    }
    grew
}

/// One global data access inside a launch.
#[derive(Debug, Clone, Copy)]
struct Access {
    block: usize,
    op: usize,
    write: bool,
}

/// Run the schedule-race and handoff-before-ready rules over one launch.
pub(crate) fn check_launch(
    r: &mut Reporter,
    li: usize,
    launch: &LaunchTrace,
    slots: &SlotDirectory,
) {
    // 1. Flag events of this launch.
    let mut flag_writes: Vec<(usize, usize, SlotKey)> = Vec::new(); // (block, op, slot)
    let mut flag_reads: Vec<(usize, usize, SlotKey, bool)> = Vec::new();
    for (b, pats) in launch.addrs.iter().enumerate() {
        for (k, pat) in pats.iter().enumerate() {
            match pat {
                AddrPattern::FlagWrite { flags, slot, .. } => {
                    flag_writes.push((b, k, (*flags, *slot)));
                }
                AddrPattern::FlagRead { flags, slot, ready } => {
                    flag_reads.push((b, k, (*flags, *slot), *ready));
                }
                _ => {}
            }
        }
    }

    // 2. Ambiguous publication: two blocks publishing one slot in one
    // launch races on the flag word itself — an acquire cannot tell whose
    // region it observed.
    let mut ambiguous: Vec<SlotKey> = Vec::new();
    {
        let mut writers: BTreeMap<SlotKey, usize> = BTreeMap::new();
        for &(b, k, key) in &flag_writes {
            match writers.get(&key) {
                Some(&other) if other != b => {
                    if !ambiguous.contains(&key) {
                        ambiguous.push(key);
                        r.push(
                            Rule::ScheduleRace,
                            Severity::Error,
                            format!(
                                "blocks {other} and {b} both publish handoff slot {} of \
                                 flag set {} in one launch window — an acquiring reader \
                                 cannot know whose region it observed",
                                key.1, key.0
                            ),
                            Some(li),
                            Some(b),
                            Some(k),
                            Some(ConflictSite {
                                buf: key.0,
                                word: key.1,
                                first_block: other.min(b),
                                second_block: other.max(b),
                            }),
                        );
                    }
                }
                _ => {
                    writers.insert(key, b);
                }
            }
        }
    }

    // 3. Release→acquire edges: a successful read of a slot published
    // exactly once in this launch by another block.
    let mut edges: Vec<Edge> = Vec::new();
    for &(c, k, key, ready) in &flag_reads {
        if !ready || ambiguous.contains(&key) {
            continue;
        }
        let mut writers = flag_writes.iter().filter(|(_, _, wkey)| *wkey == key);
        if let Some(&(p, j, _)) = writers.next() {
            if p != c {
                edges.push(Edge {
                    from_block: p,
                    from_op: j,
                    to_block: c,
                    to_op: k,
                });
            }
        }
        // No same-launch writer: a prior-launch publication, already
        // ordered by the barrier — no edge needed.
    }
    let hb = (!edges.is_empty()).then(|| HbIndex::new(&edges, launch.blocks.len()));

    // 4. Per-word access histories (BTreeMap: deterministic report order).
    let mut by_word: BTreeMap<(u64, usize), Vec<Access>> = BTreeMap::new();
    let mut words: Vec<(u64, usize)> = Vec::new();
    for (b, (ops, pats)) in launch.blocks.iter().zip(&launch.addrs).enumerate() {
        for (k, (op, pat)) in ops.iter().zip(pats).enumerate() {
            if op.space != MemSpace::Global {
                continue;
            }
            words.clear();
            pat.global_words(&mut words);
            let write = op.kind == AccessKind::Write;
            for &word in &words {
                by_word.entry(word).or_default().push(Access {
                    block: b,
                    op: k,
                    write,
                });
            }
        }
    }

    // 5. Schedule races: conflicting cross-block accesses with no
    // happens-before path, one finding per word.
    for (&(buf, word), accesses) in &by_word {
        let mut found: Option<(Access, Access)> = None;
        'pairs: for (i, &a) in accesses.iter().enumerate() {
            for &b in &accesses[i + 1..] {
                if a.block == b.block || !(a.write || b.write) {
                    continue;
                }
                let ordered = match &hb {
                    None => false,
                    Some(hb) => {
                        hb.ordered(a.block, a.op, b.block, b.op)
                            || hb.ordered(b.block, b.op, a.block, a.op)
                    }
                };
                if !ordered {
                    found = Some((a, b));
                    break 'pairs;
                }
            }
        }
        if let Some((a, b)) = found {
            let verb = match (a.write, b.write) {
                (true, true) => "both write",
                _ => "make a conflicting read/write on",
            };
            r.push(
                Rule::ScheduleRace,
                Severity::Error,
                format!(
                    "blocks {} and {} {verb} word {word} of buffer {buf} with no \
                     happens-before path — a data race under some legal schedule \
                     of this launch window",
                    a.block.min(b.block),
                    a.block.max(b.block),
                ),
                Some(li),
                Some(b.block),
                Some(b.op),
                Some(ConflictSite {
                    buf,
                    word,
                    first_block: a.block.min(b.block),
                    second_block: a.block.max(b.block),
                }),
            );
        }
    }

    // 6. Handoff-before-ready: reads of a published slot's data region
    // must be ordered after the flag write that publishes it.
    if slots.is_empty() {
        return;
    }
    let mut reported: Vec<(SlotKey, usize)> = Vec::new(); // (slot, reader block)
    for (b, (ops, pats)) in launch.blocks.iter().zip(&launch.addrs).enumerate() {
        for (k, (op, pat)) in ops.iter().zip(pats).enumerate() {
            if op.space != MemSpace::Global || op.kind != AccessKind::Read {
                continue;
            }
            if matches!(pat, AddrPattern::FlagRead { .. }) {
                continue;
            }
            words.clear();
            pat.global_words(&mut words);
            for &(buf, word) in &words {
                for (key, publication) in slots.covering(buf, word) {
                    if reported.contains(&(key, b)) {
                        continue;
                    }
                    let premature = if publication.launch < li {
                        false // barrier-ordered: published in an earlier launch
                    } else if publication.launch > li {
                        true // read happens launches before the publication
                    } else if publication.block == b {
                        false // the producer reading its own region
                    } else {
                        // Same launch: demand a happens-before path from
                        // the flag write to this read.
                        !hb.as_ref()
                            .is_some_and(|hb| hb.ordered(publication.block, publication.op, b, k))
                    };
                    if premature {
                        reported.push((key, b));
                        r.push(
                            Rule::HandoffBeforeReady,
                            Severity::Error,
                            format!(
                                "block {b} reads word {word} of buffer {buf}, part of \
                                 handoff slot {} of flag set {} published by block {} of \
                                 launch {}, without being ordered after the flag write — \
                                 the region may be observed before it is ready",
                                key.1, key.0, publication.block, publication.launch
                            ),
                            Some(li),
                            Some(b),
                            Some(k),
                            Some(ConflictSite {
                                buf,
                                word,
                                first_block: publication.block.min(b),
                                second_block: publication.block.max(b),
                            }),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hb_index_orders_through_edge_chains() {
        // Block 0 publishes at op 1; block 1 acquires at op 0, publishes at
        // op 2; block 2 acquires at op 0. Transitively, block 0's op 0
        // happens before block 2's op 1.
        let edges = [
            Edge {
                from_block: 0,
                from_op: 1,
                to_block: 1,
                to_op: 0,
            },
            Edge {
                from_block: 1,
                from_op: 2,
                to_block: 2,
                to_op: 0,
            },
        ];
        let hb = HbIndex::new(&edges, 3);
        assert!(hb.ordered(0, 0, 1, 1));
        assert!(hb.ordered(0, 1, 2, 1)); // through the chain
        assert!(hb.ordered(0, 0, 2, 1));
        assert!(!hb.ordered(0, 2, 2, 1)); // op 2 was never published
        assert!(!hb.ordered(2, 0, 0, 0)); // no reverse order
        assert!(!hb.ordered(1, 0, 0, 2)); // acquirer is not before publisher
    }

    #[test]
    fn hb_index_is_safe_on_cyclic_hand_made_edges() {
        // A real execution cannot produce a cycle, but a hand-crafted
        // trace can; the bounded fixpoint must terminate and stay sane.
        let edges = [
            Edge {
                from_block: 0,
                from_op: 1,
                to_block: 1,
                to_op: 0,
            },
            Edge {
                from_block: 1,
                from_op: 1,
                to_block: 0,
                to_op: 0,
            },
        ];
        let hb = HbIndex::new(&edges, 2);
        // Whatever the (impossible) cycle implies, queries terminate.
        let _ = hb.ordered(0, 0, 1, 1);
        let _ = hb.ordered(1, 0, 0, 1);
    }
}
