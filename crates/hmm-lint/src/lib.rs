//! # hmm-lint — a trace-based analyzer for asynchronous-HMM kernels
//!
//! `gpu-exec` can record every warp memory transaction a kernel issues —
//! its shape (`TraceOp`: space, kind, ops, stages) and, with the address
//! channel, the concrete words it touched (`AddrPattern`). This crate walks
//! those recordings and reports, compiler-style, where a kernel breaks the
//! machine model's rules or misses its performance budget:
//!
//! * **bank-conflict** — a shared (DMM) transaction occupies more pipeline
//!   stages than the conflict-free minimum `⌈ops/w⌉`. The paper's diagonal
//!   tile arrangement (Lemma 1) exists precisely to make every row *and*
//!   column access conflict-free; this rule catches regressions to
//!   row-major layouts.
//! * **uncoalesced** — the fraction of global (UMM) transactions spanning
//!   more than one `w`-word address group exceeds the kernel's budget.
//!   Budgets come from Table I's stride columns: 2R2W deliberately leaves
//!   its row-wise half stride, 1R1W must be essentially 100 % coalesced.
//! * **barrier-race** — two blocks of one launch touch the same global
//!   word with at least one write. On the asynchronous HMM, blocks of a
//!   launch run in arbitrary order, so inter-block communication is only
//!   legal across a barrier (a new launch).
//! * **shared-reset** — a block warp-reads a shared tile it never
//!   warp-writes in its launch window. Barriers reset shared memory, so
//!   such reads observe only zeroes.
//! * **cost-divergence** — the measured `C`/`S`/`B` counters drift beyond
//!   tolerance from the Table I closed forms for the algorithm, i.e. the
//!   implementation no longer matches its own cost analysis.
//! * **write-after-loss** — a launch the fault injector marked lost still
//!   shows global writes in its trace. Recovery (retry, CPU degradation)
//!   assumes a lost launch left global memory untouched; any recorded
//!   write breaks that no-write-after-loss contract.
//! * **schedule-race** — two blocks of one launch make conflicting accesses
//!   to the same global word with no happens-before path between them
//!   (program order + barrier edges + release→acquire handoff edges): a
//!   data race under *some* legal HMM schedule, even if the recorded run
//!   got lucky. Properly acquired [`gpu_exec::HandoffFlags`] handoffs are
//!   exempt — mark the contract with [`KernelContract::with_handoffs`].
//! * **handoff-before-ready** — a read of a flagged handoff slot's data
//!   region that is not ordered after the corresponding flag write; the
//!   consumer may observe the region before the producer published it.
//!
//! Entry points: [`analyze`] for a bare report, [`analyze_run`] to also
//! replay the trace on the [`hmm_sim::AsyncHmm`] and attach the barrier
//! window timeline. The `fixtures` module holds deliberately-broken
//! kernels (and their fixes) that pin analyzer↔replay agreement. The
//! `satlint` binary (in the `bench` crate) runs the whole paper suite
//! through this analyzer.

#![warn(missing_docs)]

mod analyze;
mod contract;
pub mod fixtures;
mod races;
mod report;

pub use analyze::{analyze, MAX_PER_RULE};
pub use contract::KernelContract;
pub use report::{ConflictSite, Diagnostic, LintReport, Rule, Severity, SCHEMA_VERSION};

use gpu_exec::RunTrace;
use hmm_model::cost::CostCounters;
use hmm_model::MachineConfig;
use hmm_sim::{AsyncHmm, WindowTimeline};
use serde::{Deserialize, Serialize};

/// A lint report plus the simulated timeline of the same run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunAnalysis {
    /// The analyzer's findings.
    pub report: LintReport,
    /// Per-launch barrier windows on the simulated machine — where in
    /// simulated time each diagnostic's `launch` index lives.
    pub windows: Vec<WindowTimeline>,
    /// End-to-end simulated time of the run.
    pub simulated_time: u64,
}

/// Analyze a recorded run and replay it on the machine simulator, so each
/// launch-localised finding can be placed on the simulated clock.
pub fn analyze_run(
    trace: &RunTrace,
    counters: &CostCounters,
    cfg: &MachineConfig,
    contract: &KernelContract,
) -> RunAnalysis {
    let report = analyze(trace, counters, cfg, contract);
    let sim = AsyncHmm::new(*cfg).simulate(trace);
    RunAnalysis {
        report,
        windows: sim.windows(cfg.barrier_overhead),
        simulated_time: sim.total_time,
    }
}
