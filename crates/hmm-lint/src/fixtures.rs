//! Deliberately-broken kernels (and their fixed twins) that pin the
//! analyzer and the schedule explorer to each other.
//!
//! Each [`Fixture`] is one canonical way to break the asynchronous HMM's
//! scheduling contract, paired with the minimal fix. The broken variant
//! must be flagged by the static happens-before analysis ([`crate::analyze`])
//! *and* produce divergent output under adversarial schedule replay
//! ([`gpu_exec::replay_schedules`]); the fixed variant must be clean under
//! both. `satlint --fixtures` and the agreement tests run every fixture
//! through both detectors and fail if they ever disagree.

use gpu_exec::replay::fingerprint_i64;
use gpu_exec::{Device, GlobalBuffer, HandoffFlags, TileLayout};

use crate::contract::KernelContract;
use crate::report::Rule;

/// Elements each block owns in a fixture kernel.
pub const CHUNK: usize = 8;
/// Blocks each fixture launches.
pub const GRID: usize = 4;

/// One canonical scheduling-contract violation with a fixed twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fixture {
    /// Producer/consumer chunks fused into one launch: each block writes
    /// its own chunk, then reads its neighbour's — inter-block data flow
    /// with no barrier between write and read. Fixed: split into two
    /// launches.
    MissingBarrier,
    /// A consumer reads a flagged handoff region *before* polling the
    /// flag (check-after-use): the poll succeeds on lucky schedules, but
    /// the read is never ordered after the publication. Fixed: publish in
    /// one launch, acquire-then-read in the next.
    PrematureHandoffRead,
    /// Two bugs the shared-reset and schedule rules split between them:
    /// a block reads a shared tile row it never wrote (reset at the
    /// barrier — observes zeroes), and every block writes the same global
    /// words (last writer wins). Fixed: write the tile first and give
    /// each block a disjoint region.
    SharedResetOverlap,
}

impl Fixture {
    /// Every fixture, in report order.
    pub const ALL: [Fixture; 3] = [
        Fixture::MissingBarrier,
        Fixture::PrematureHandoffRead,
        Fixture::SharedResetOverlap,
    ];

    /// Stable kebab-case name (used in `satlint --fixtures` records).
    pub fn name(&self) -> &'static str {
        match self {
            Fixture::MissingBarrier => "missing-barrier",
            Fixture::PrematureHandoffRead => "premature-handoff-read",
            Fixture::SharedResetOverlap => "shared-reset-overlap",
        }
    }

    /// Rules the analyzer must fire on the broken variant. The fixed
    /// variant must fire none of them.
    pub fn expected_rules(&self) -> &'static [Rule] {
        match self {
            Fixture::MissingBarrier => &[Rule::ScheduleRace],
            Fixture::PrematureHandoffRead => &[Rule::HandoffBeforeReady],
            Fixture::SharedResetOverlap => &[Rule::ScheduleRace, Rule::SharedReset],
        }
    }

    /// The contract to analyze a fixture run under. Handoff fixtures opt
    /// out of the classic barrier-race rule so the broken variant's
    /// verdict is carried entirely by the schedule-generalizing rules.
    pub fn contract(&self, broken: bool) -> KernelContract {
        let variant = if broken { "broken" } else { "fixed" };
        let c = KernelContract::unconstrained(format!("fixture:{}:{variant}", self.name()));
        match self {
            Fixture::PrematureHandoffRead => c.with_handoffs(),
            _ => c,
        }
    }
}

/// Run one fixture variant on `dev` and fingerprint its output buffer.
///
/// The caller owns the device (block order, worker count, tracing), so the
/// same kernel serves both the static analysis (tracing device, one run)
/// and schedule replay (sequential devices, one per explored order).
pub fn run_fixture(dev: &Device, fixture: Fixture, broken: bool) -> u64 {
    match fixture {
        Fixture::MissingBarrier => missing_barrier(dev, broken),
        Fixture::PrematureHandoffRead => premature_handoff_read(dev, broken),
        Fixture::SharedResetOverlap => shared_reset_overlap(dev, broken),
    }
}

fn missing_barrier(dev: &Device, broken: bool) -> u64 {
    let data = GlobalBuffer::filled(0i64, GRID * CHUNK);
    let out = GlobalBuffer::filled(0i64, GRID * CHUNK);
    let write_own = |ctx: &mut gpu_exec::BlockCtx<'_>| {
        let g = ctx.view(&data);
        let b = ctx.block_id();
        let vals = [(b + 1) as i64; CHUNK];
        g.write_contig(b * CHUNK, &vals, ctx.rec());
    };
    let read_neighbour = |ctx: &mut gpu_exec::BlockCtx<'_>| {
        let g = ctx.view(&data);
        let o = ctx.view(&out);
        let b = ctx.block_id();
        let mut vals = [0i64; CHUNK];
        g.read_contig(((b + 1) % GRID) * CHUNK, &mut vals, ctx.rec());
        for v in &mut vals {
            *v *= 10;
        }
        o.write_contig(b * CHUNK, &vals, ctx.rec());
    };
    if broken {
        // Fused: the read observes the neighbour's write only if the
        // neighbour happened to run first.
        dev.launch(GRID, |ctx| {
            write_own(ctx);
            read_neighbour(ctx);
        });
    } else {
        dev.launch(GRID, write_own);
        dev.launch(GRID, read_neighbour);
    }
    fingerprint_i64(&out.into_vec())
}

fn premature_handoff_read(dev: &Device, broken: bool) -> u64 {
    let data = GlobalBuffer::filled(0i64, CHUNK);
    let out = GlobalBuffer::filled(0i64, CHUNK);
    let flags = HandoffFlags::new(1);
    let produce = |ctx: &mut gpu_exec::BlockCtx<'_>| {
        let g = ctx.view(&data);
        let vals = [7i64; CHUNK];
        g.write_contig(0, &vals, ctx.rec());
        flags.publish(0, &g, 0, CHUNK, ctx.rec());
    };
    let consume = |ctx: &mut gpu_exec::BlockCtx<'_>, check_first: bool| {
        let g = ctx.view(&data);
        let o = ctx.view(&out);
        let mut vals = [0i64; CHUNK];
        if check_first {
            // Correct shape: acquire, then read.
            let ready = flags.acquire(0, 64, ctx.rec());
            debug_assert!(ready, "slot published in the previous launch");
            g.read_contig(0, &mut vals, ctx.rec());
        } else {
            // Check-after-use: the poll may well say "ready", but the
            // read it was meant to guard has already happened.
            g.read_contig(0, &mut vals, ctx.rec());
            let _ready = flags.poll(0, ctx.rec());
        }
        o.write_contig(0, &vals, ctx.rec());
    };
    if broken {
        dev.launch(2, |ctx| match ctx.block_id() {
            0 => produce(ctx),
            _ => consume(ctx, false),
        });
    } else {
        dev.launch(2, |ctx| {
            if ctx.block_id() == 0 {
                produce(ctx);
            }
        });
        dev.launch(2, |ctx| {
            if ctx.block_id() == 1 {
                consume(ctx, true);
            }
        });
    }
    fingerprint_i64(&out.into_vec())
}

fn shared_reset_overlap(dev: &Device, broken: bool) -> u64 {
    let out = GlobalBuffer::filled(0i64, GRID * CHUNK);
    dev.launch(GRID, |ctx| {
        let w = ctx.width();
        let b = ctx.block_id();
        let mut tile = ctx.shared_tile::<i64>(TileLayout::Diagonal);
        let mut row = vec![0i64; w];
        if !broken {
            let vals = vec![(b + 1) as i64; w];
            tile.write_row(0, &vals, ctx.rec());
        }
        // Broken: the tile was never written in this launch window, so
        // the barrier reset means this observes only zeroes.
        tile.read_row(0, &mut row, ctx.rec());
        let o = ctx.view(&out);
        let vals = [row[0] + b as i64; CHUNK];
        if broken {
            // Every block writes the same words: last writer wins.
            o.write_contig(0, &vals, ctx.rec());
        } else {
            o.write_contig(b * CHUNK, &vals, ctx.rec());
        }
    });
    fingerprint_i64(&out.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::{BlockOrder, DeviceOptions};
    use hmm_model::MachineConfig;

    fn sequential(order: BlockOrder) -> Device {
        Device::new(
            DeviceOptions::new(MachineConfig::with_width(8))
                .workers(0)
                .order(order),
        )
    }

    #[test]
    fn fixture_names_are_distinct() {
        for (i, a) in Fixture::ALL.iter().enumerate() {
            for b in &Fixture::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn fixed_variants_are_schedule_independent() {
        for f in Fixture::ALL {
            let fwd = run_fixture(&sequential(BlockOrder::Forward), f, false);
            let rev = run_fixture(&sequential(BlockOrder::Reverse), f, false);
            let adv = run_fixture(&sequential(BlockOrder::Adversarial(3)), f, false);
            assert_eq!(fwd, rev, "{}", f.name());
            assert_eq!(fwd, adv, "{}", f.name());
        }
    }

    #[test]
    fn broken_variants_depend_on_the_schedule() {
        for f in Fixture::ALL {
            let fwd = run_fixture(&sequential(BlockOrder::Forward), f, true);
            let rev = run_fixture(&sequential(BlockOrder::Reverse), f, true);
            assert_ne!(fwd, rev, "{} should diverge forward vs reverse", f.name());
        }
    }
}
