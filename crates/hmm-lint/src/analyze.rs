//! The analysis pass: one walk over a recorded run per rule family.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use gpu_exec::{AddrPattern, LaunchTrace, RunTrace};
use hmm_model::cost::CostCounters;
use hmm_model::{min_stages, AccessKind, MachineConfig, MemSpace};

use crate::contract::KernelContract;
use crate::races;
use crate::report::{ConflictSite, Diagnostic, LintReport, Rule, Severity};

/// Per-rule cap on reported findings: a broken kernel violates a rule once
/// per transaction, and the first few sites are what a human needs.
pub const MAX_PER_RULE: usize = 8;

/// Collects diagnostics with the per-rule cap.
pub(crate) struct Reporter {
    diagnostics: Vec<Diagnostic>,
    suppressed: usize,
}

impl Reporter {
    fn new() -> Self {
        Reporter {
            diagnostics: Vec::new(),
            suppressed: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push(
        &mut self,
        rule: Rule,
        severity: Severity,
        message: String,
        launch: Option<usize>,
        block: Option<usize>,
        op: Option<usize>,
        conflict: Option<ConflictSite>,
    ) {
        let seen = self.diagnostics.iter().filter(|d| d.rule == rule).count();
        if seen >= MAX_PER_RULE {
            self.suppressed += 1;
            return;
        }
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            message,
            launch,
            block,
            op,
            conflict,
        });
    }
}

/// Run every rule over a recorded execution.
///
/// `trace` is the device's [`gpu_exec::RunTrace`] (ideally recorded with the
/// address channel: a tracing device records it automatically), `counters`
/// the measured statistics of the same run, `cfg` the machine the run used,
/// and `contract` the budgets to hold the kernel to.
pub fn analyze(
    trace: &RunTrace,
    counters: &CostCounters,
    cfg: &MachineConfig,
    contract: &KernelContract,
) -> LintReport {
    let mut r = Reporter::new();
    let w = cfg.width;
    let slots = races::SlotDirectory::collect(trace);
    for (li, launch) in trace.launches.iter().enumerate() {
        check_bank_conflicts(&mut r, li, launch, w);
        check_write_after_loss(&mut r, li, launch);
        if launch.has_addrs() {
            // Handoff kernels deliberately exchange data inside a launch
            // window; the classic rule has no notion of release→acquire
            // edges, so the schedule-generalizing pass below takes over.
            if !contract.allow_handoffs {
                check_barrier_races(&mut r, li, launch);
            }
            check_shared_reset(&mut r, li, launch);
            races::check_launch(&mut r, li, launch, &slots);
        }
    }
    check_coalescing(&mut r, trace, counters, contract, w);
    check_cost_divergence(&mut r, counters, contract);
    LintReport {
        kernel: contract.name.clone(),
        diagnostics: r.diagnostics,
        suppressed: r.suppressed,
        launches: trace.launches.len(),
        ops: trace.total_ops(),
    }
}

/// Short human-readable description of an access pattern, for messages.
fn describe(pat: &AddrPattern) -> String {
    match pat {
        AddrPattern::Single { buf, addr } => format!("word {addr} of buffer {buf}"),
        AddrPattern::Contig { buf, base, lanes } => {
            format!("words [{base}, {}) of buffer {buf}", base + *lanes as usize)
        }
        AddrPattern::Strided {
            buf,
            base,
            stride,
            lanes,
        } => {
            format!("{lanes} words from {base} by stride {stride} of buffer {buf}")
        }
        AddrPattern::Gather { buf, addrs } => {
            format!("gather of {} words of buffer {buf}", addrs.len())
        }
        AddrPattern::TileRow { tile, index } => format!("row {index} of shared tile {tile}"),
        AddrPattern::TileCol { tile, index } => format!("column {index} of shared tile {tile}"),
        AddrPattern::FlagWrite {
            flags,
            slot,
            data_buf,
            base,
            len,
        } => format!(
            "publication of slot {slot} of flag set {flags} \
             (words [{base}, {}) of buffer {data_buf})",
            base + len
        ),
        AddrPattern::FlagRead { flags, slot, ready } => format!(
            "poll of slot {slot} of flag set {flags} ({})",
            if *ready { "ready" } else { "not ready" }
        ),
        AddrPattern::Opaque => "an unrecorded address pattern".to_string(),
    }
}

/// Rule 1 — shared transactions occupying more DMM stages than the
/// conflict-free minimum `⌈ops / w⌉`.
fn check_bank_conflicts(r: &mut Reporter, li: usize, launch: &LaunchTrace, w: usize) {
    for (b, ops) in launch.blocks.iter().enumerate() {
        for (k, op) in ops.iter().enumerate() {
            if op.space != MemSpace::Shared {
                continue;
            }
            let min = min_stages(op.ops as u64, w);
            if (op.stages as u64) <= min {
                continue;
            }
            let what = launch
                .addrs
                .get(b)
                .and_then(|pats| pats.get(k))
                .map(describe)
                .unwrap_or_else(|| "a shared access".to_string());
            r.push(
                Rule::BankConflict,
                Severity::Error,
                format!(
                    "{what} occupies {} DMM stages for {} ops \
                     (conflict-free minimum is {min}; see the diagonal arrangement, Lemma 1)",
                    op.stages, op.ops
                ),
                Some(li),
                Some(b),
                Some(k),
                None,
            );
        }
    }
}

/// Rule 3 — write→write and write→read pairs between blocks of one launch
/// window over concrete global words.
fn check_barrier_races(r: &mut Reporter, li: usize, launch: &LaunchTrace) {
    // (buffer, word) → writing block. The asynchronous HMM contract: blocks
    // of one launch write disjoint words, and nobody reads another block's
    // writes before the barrier.
    let mut writer: HashMap<(u64, usize), u32> = HashMap::new();
    let mut words: Vec<(u64, usize)> = Vec::new();
    for (b, (ops, pats)) in launch.blocks.iter().zip(&launch.addrs).enumerate() {
        for (k, (op, pat)) in ops.iter().zip(pats).enumerate() {
            if op.space != MemSpace::Global || op.kind != AccessKind::Write {
                continue;
            }
            words.clear();
            pat.global_words(&mut words);
            let mut flagged = false;
            for &word in &words {
                match writer.entry(word) {
                    Entry::Occupied(e) => {
                        let other = *e.get();
                        if other != b as u32 && !flagged {
                            r.push(
                                Rule::BarrierRace,
                                Severity::Error,
                                format!(
                                    "blocks {other} and {b} both write word {} of buffer {} \
                                     inside one launch window (writes must be disjoint \
                                     between barriers)",
                                    word.1, word.0
                                ),
                                Some(li),
                                Some(b),
                                Some(k),
                                Some(ConflictSite {
                                    buf: word.0,
                                    word: word.1,
                                    first_block: (other as usize).min(b),
                                    second_block: (other as usize).max(b),
                                }),
                            );
                            flagged = true;
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(b as u32);
                    }
                }
            }
        }
    }
    for (b, (ops, pats)) in launch.blocks.iter().zip(&launch.addrs).enumerate() {
        for (k, (op, pat)) in ops.iter().zip(pats).enumerate() {
            if op.space != MemSpace::Global || op.kind != AccessKind::Read {
                continue;
            }
            words.clear();
            pat.global_words(&mut words);
            for &word in &words {
                if let Some(&other) = writer.get(&word) {
                    if other != b as u32 {
                        r.push(
                            Rule::BarrierRace,
                            Severity::Error,
                            format!(
                                "block {b} reads word {} of buffer {}, written by block \
                                 {other} in the same launch window (inter-block data \
                                 needs a barrier, i.e. a new launch)",
                                word.1, word.0
                            ),
                            Some(li),
                            Some(b),
                            Some(k),
                            Some(ConflictSite {
                                buf: word.0,
                                word: word.1,
                                first_block: (other as usize).min(b),
                                second_block: (other as usize).max(b),
                            }),
                        );
                        break; // one finding per op
                    }
                }
            }
        }
    }
}

/// Rule 3b — warp reads of shared tiles that are never warp-written in the
/// block's launch window: barriers reset shared memory, so such a read can
/// only observe zeroes.
///
/// Tile-granular on purpose: scalar `set`/`get` accesses are register-style
/// and invisible to the trace, so a partially warp-written tile cannot be
/// judged per-row without false positives.
fn check_shared_reset(r: &mut Reporter, li: usize, launch: &LaunchTrace) {
    for (b, (ops, pats)) in launch.blocks.iter().zip(&launch.addrs).enumerate() {
        let mut written: HashSet<u32> = HashSet::new();
        for (op, pat) in ops.iter().zip(pats) {
            if op.space == MemSpace::Shared && op.kind == AccessKind::Write {
                if let AddrPattern::TileRow { tile, .. } | AddrPattern::TileCol { tile, .. } = pat {
                    written.insert(*tile);
                }
            }
        }
        let mut reported: HashSet<u32> = HashSet::new();
        for (k, (op, pat)) in ops.iter().zip(pats).enumerate() {
            if op.space != MemSpace::Shared || op.kind != AccessKind::Read {
                continue;
            }
            if let AddrPattern::TileRow { tile, .. } | AddrPattern::TileCol { tile, .. } = pat {
                if !written.contains(tile) && reported.insert(*tile) {
                    r.push(
                        Rule::SharedReset,
                        Severity::Warning,
                        format!(
                            "block {b} reads {} but never warp-writes tile {} in this \
                             launch window — shared memory is reset at every barrier, \
                             so the read observes only zeroes",
                            describe(pat),
                            tile
                        ),
                        Some(li),
                        Some(b),
                        Some(k),
                        None,
                    );
                }
            }
        }
    }
}

/// Rule 6 — global writes recorded in a launch the fault injector marked
/// lost. A lost device retains nothing, so recovery logic (retry, CPU
/// degradation) assumes such launches left global memory untouched; a
/// write in the trace means the kernel or harness broke that contract.
fn check_write_after_loss(r: &mut Reporter, li: usize, launch: &LaunchTrace) {
    if !launch.lost {
        return;
    }
    for (b, ops) in launch.blocks.iter().enumerate() {
        for (k, op) in ops.iter().enumerate() {
            if op.space != MemSpace::Global || op.kind != AccessKind::Write {
                continue;
            }
            let what = launch
                .addrs
                .get(b)
                .and_then(|pats| pats.get(k))
                .map(describe)
                .unwrap_or_else(|| "a global write".to_string());
            r.push(
                Rule::WriteAfterLoss,
                Severity::Error,
                format!(
                    "{what} was recorded in launch {li}, which the fault \
                     injector marked lost — a lost device retains nothing, \
                     so no global write may survive it"
                ),
                Some(li),
                Some(b),
                Some(k),
                None,
            );
        }
    }
}

/// Rule 2 — the run's global stride fraction against the contract budget,
/// with the first offending transaction named when the budget is blown.
fn check_coalescing(
    r: &mut Reporter,
    trace: &RunTrace,
    counters: &CostCounters,
    contract: &KernelContract,
    w: usize,
) {
    let total = counters.global_ops();
    if total == 0 {
        return;
    }
    // Budget + fractional slack, plus the contract's absolute fringe
    // allowance: unaligned boundary accesses contribute O(n) stride ops
    // that a purely fractional budget cannot absorb at small sizes.
    let allowed =
        (contract.stride_budget + contract.stride_slack) * total as f64 + contract.ops_slack;
    let measured = counters.stride_ops() as f64 / total as f64;
    if counters.stride_ops() as f64 <= allowed {
        return;
    }
    // Pinpoint the first transaction occupying more UMM stages than the
    // coalesced minimum, as an example site.
    let mut site = None;
    'outer: for (li, launch) in trace.launches.iter().enumerate() {
        for (b, ops) in launch.blocks.iter().enumerate() {
            for (k, op) in ops.iter().enumerate() {
                if op.space == MemSpace::Global && (op.stages as u64) > min_stages(op.ops as u64, w)
                {
                    let what = launch
                        .addrs
                        .get(b)
                        .and_then(|pats| pats.get(k))
                        .map(describe)
                        .unwrap_or_else(|| "a global access".to_string());
                    site = Some((li, b, k, what));
                    break 'outer;
                }
            }
        }
    }
    let (launch, block, op, example) = match site {
        Some((l, b, k, what)) => (
            Some(l),
            Some(b),
            Some(k),
            format!("; first stride site: {what}"),
        ),
        None => (None, None, None, String::new()),
    };
    r.push(
        Rule::Uncoalesced,
        Severity::Error,
        format!(
            "stride fraction {measured:.3} exceeds the kernel budget {:.3} \
             (+{:.3} slack): {} of {} global ops span more than one address \
             group{example}",
            contract.stride_budget,
            contract.stride_slack,
            counters.stride_ops(),
            total,
        ),
        launch,
        block,
        op,
        None,
    );
}

/// Rule 4 — measured `C`/`S`/`B` against the Table I closed forms.
fn check_cost_divergence(r: &mut Reporter, counters: &CostCounters, contract: &KernelContract) {
    let Some(row) = &contract.expected else {
        return;
    };
    let within = |measured: f64, predicted: f64, abs: f64| {
        (measured - predicted).abs() <= abs + contract.rel_tolerance * predicted
    };
    let checks = [
        (
            "coalesced ops C",
            counters.coalesced_ops() as f64,
            row.coalesced_reads + row.coalesced_writes,
            contract.ops_slack,
        ),
        (
            "stride ops S",
            counters.stride_ops() as f64,
            row.stride_reads + row.stride_writes,
            contract.ops_slack,
        ),
        (
            "barrier steps B",
            counters.barrier_steps as f64,
            row.barrier_steps,
            contract.barrier_slack,
        ),
    ];
    for (what, measured, predicted, abs) in checks {
        if !within(measured, predicted, abs) {
            r.push(
                Rule::CostDivergence,
                Severity::Error,
                format!(
                    "{what} diverge from Table I for {}: measured {measured:.0}, \
                     predicted {predicted:.0} (tolerance ±{:.0} ±{:.0}%)",
                    contract.name,
                    abs,
                    contract.rel_tolerance * 100.0
                ),
                None,
                None,
                None,
                None,
            );
        }
    }
}
