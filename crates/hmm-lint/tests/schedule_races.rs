//! The schedule-generalizing half of the analyzer's contract: the static
//! happens-before analysis and the dynamic schedule explorer must agree on
//! every fixture — broken kernels are flagged *and* diverge under replay,
//! fixed kernels are clean *and* bit-exact.

use gpu_exec::replay::replay_schedules;
use gpu_exec::{BlockOrder, Device, DeviceOptions, GlobalBuffer, HandoffFlags};
use hmm_lint::fixtures::{run_fixture, Fixture, CHUNK};
use hmm_lint::{analyze, KernelContract, LintReport, Rule, Severity};
use hmm_model::MachineConfig;

const W: usize = 8;

fn cfg() -> MachineConfig {
    MachineConfig::with_width(W)
}

fn tracing_device(order: BlockOrder) -> Device {
    Device::new(
        DeviceOptions::new(cfg())
            .workers(0)
            .order(order)
            .record_trace(true),
    )
}

fn lint(dev: &Device, contract: &KernelContract) -> LintReport {
    let counters = dev.stats();
    let trace = dev.take_trace();
    analyze(&trace, &counters, &cfg(), contract)
}

fn lint_fixture(fixture: Fixture, broken: bool, order: BlockOrder) -> LintReport {
    let dev = tracing_device(order);
    run_fixture(&dev, fixture, broken);
    lint(&dev, &fixture.contract(broken))
}

/// Broken fixtures fire exactly their expected rules — on every recorded
/// schedule, not just the unlucky one. The analysis generalizes over
/// schedules, so even a trace where the race happened to resolve benignly
/// must be flagged.
#[test]
fn broken_fixtures_are_flagged_under_any_recorded_schedule() {
    for fixture in Fixture::ALL {
        for order in [
            BlockOrder::Forward,
            BlockOrder::Reverse,
            BlockOrder::Adversarial(5),
        ] {
            let report = lint_fixture(fixture, true, order);
            for &rule in fixture.expected_rules() {
                assert!(
                    report.has(rule),
                    "{} under {order:?} should fire {}:\n{}",
                    fixture.name(),
                    rule.name(),
                    report.render()
                );
            }
        }
    }
}

/// Fixed fixtures are clean of every race-family rule under every recorded
/// schedule.
#[test]
fn fixed_fixtures_are_clean() {
    for fixture in Fixture::ALL {
        for order in [BlockOrder::Forward, BlockOrder::Reverse] {
            let report = lint_fixture(fixture, false, order);
            assert!(
                report.is_clean(),
                "{} (fixed) under {order:?}:\n{}",
                fixture.name(),
                report.render()
            );
        }
    }
}

/// The core acceptance property: the static analyzer and the schedule
/// explorer agree on every fixture × variant. A finding without divergence
/// or divergence without a finding is a bug in one of the two detectors.
#[test]
fn analyzer_and_replay_agree_on_every_fixture() {
    for fixture in Fixture::ALL {
        for broken in [true, false] {
            let report = lint_fixture(fixture, broken, BlockOrder::Forward);
            let statically_dirty = !report.is_clean();
            let replay = replay_schedules(6, 17, |order| {
                let dev = Device::new(DeviceOptions::new(cfg()).workers(0).order(order));
                run_fixture(&dev, fixture, broken)
            });
            assert_eq!(
                statically_dirty,
                !replay.bit_exact(),
                "{} broken={broken}: analyzer says dirty={statically_dirty}, \
                 replay says divergent={:?}\n{}",
                fixture.name(),
                replay.divergent,
                report.render()
            );
        }
    }
}

/// Race findings carry structured provenance: which word of which buffer,
/// and which two blocks collide.
#[test]
fn schedule_race_findings_carry_conflict_provenance() {
    let report = lint_fixture(Fixture::MissingBarrier, true, BlockOrder::Forward);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == Rule::ScheduleRace)
        .expect("schedule-race finding");
    assert_eq!(d.severity, Severity::Error);
    let site = d.conflict.expect("conflict provenance");
    assert!(site.first_block < site.second_block);
    assert!(
        d.message.contains(&format!("word {}", site.word)),
        "{}",
        d.message
    );
}

/// A same-launch handoff whose consumer properly acquires before reading is
/// clean under the schedule-generalizing rules (with a handoff-aware
/// contract), while the classic barrier-race rule — which has no notion of
/// release→acquire edges — would flag it. This is exactly the gap the
/// happens-before analysis closes.
#[test]
fn acquired_same_launch_handoff_is_clean_only_under_hb_analysis() {
    let run = || {
        // Forward sequential order: the producer (block 0) runs first, so
        // the consumer's bounded acquire succeeds within the launch.
        let dev = tracing_device(BlockOrder::Forward);
        let data = GlobalBuffer::filled(0i64, CHUNK);
        let out = GlobalBuffer::filled(0i64, CHUNK);
        let flags = HandoffFlags::new(1);
        dev.launch(2, |ctx| {
            let g = ctx.view(&data);
            if ctx.block_id() == 0 {
                let vals = [3i64; CHUNK];
                g.write_contig(0, &vals, ctx.rec());
                flags.publish(0, &g, 0, CHUNK, ctx.rec());
            } else {
                let ready = flags.acquire(0, 64, ctx.rec());
                assert!(ready, "producer ran first under forward order");
                let mut vals = [0i64; CHUNK];
                g.read_contig(0, &mut vals, ctx.rec());
                ctx.view(&out).write_contig(0, &vals, ctx.rec());
            }
        });
        dev
    };

    // Handoff-aware contract: the acquire edge orders the read — clean.
    let report = lint(
        &run(),
        &KernelContract::unconstrained("handoff").with_handoffs(),
    );
    assert!(report.is_clean(), "{}", report.render());

    // Classic contract: barrier-race fires on the same trace, but the
    // schedule-generalizing rules still agree the handoff itself is sound.
    let report = lint(&run(), &KernelContract::unconstrained("handoff"));
    assert!(report.has(Rule::BarrierRace), "{}", report.render());
    assert!(!report.has(Rule::ScheduleRace), "{}", report.render());
    assert!(!report.has(Rule::HandoffBeforeReady), "{}", report.render());
}

/// Two blocks publishing the same slot in one launch window is itself a
/// race: an acquiring reader cannot know whose region it observed.
#[test]
fn ambiguous_double_publication_is_a_schedule_race() {
    let dev = tracing_device(BlockOrder::Forward);
    let data = GlobalBuffer::filled(0i64, 2 * CHUNK);
    let flags = HandoffFlags::new(1);
    dev.launch(2, |ctx| {
        let g = ctx.view(&data);
        let b = ctx.block_id();
        let vals = [b as i64; CHUNK];
        g.write_contig(b * CHUNK, &vals, ctx.rec());
        flags.publish(0, &g, b * CHUNK, CHUNK, ctx.rec());
    });
    let report = lint(
        &dev,
        &KernelContract::unconstrained("double-pub").with_handoffs(),
    );
    assert!(report.has(Rule::ScheduleRace), "{}", report.render());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == Rule::ScheduleRace)
        .unwrap();
    assert!(d.message.contains("both publish"), "{}", d.message);
}

/// Adversarial replay is deterministic: the same seed explores the same
/// schedules and reaches the same verdict, run after run.
#[test]
fn adversarial_replay_is_deterministic_per_seed() {
    let explore = |seed: u64| {
        replay_schedules(6, seed, |order| {
            let dev = Device::new(DeviceOptions::new(cfg()).workers(0).order(order));
            run_fixture(&dev, Fixture::MissingBarrier, true)
        })
    };
    let a = explore(23);
    let b = explore(23);
    assert_eq!(a, b);
    assert!(!a.bit_exact());
}

/// The JSON a report serializes to parses back with the expected shape —
/// the vendored serde shim has no runtime deserializer, so the round-trip
/// goes through the `obs` JSON parser.
#[test]
fn report_json_round_trips_through_the_parser() {
    let report = lint_fixture(Fixture::MissingBarrier, true, BlockOrder::Forward);
    let json = serde_json::to_string(&report).unwrap();
    let value = obs::json::JsonValue::parse(&json).unwrap();
    assert_eq!(
        value.get("kernel").and_then(|v| v.as_str()),
        Some("fixture:missing-barrier:broken")
    );
    let diags = value.get("diagnostics").and_then(|v| v.as_array()).unwrap();
    assert_eq!(diags.len(), report.diagnostics.len());
    let first = &diags[0];
    assert!(first.get("rule").is_some());
    let site = first.get("conflict").expect("conflict serialized");
    // The provenance numbers survive the round-trip bit-for-bit.
    let expect = report.diagnostics[0].conflict.unwrap();
    assert_eq!(
        site.get("word").and_then(|v| v.as_f64()),
        Some(expect.word as f64)
    );
    assert_eq!(
        site.get("second_block").and_then(|v| v.as_f64()),
        Some(expect.second_block as f64)
    );
}
