//! The negative half of the analyzer's contract: deliberately broken
//! kernels trigger exactly the diagnostic they were built to trigger.

use gpu_exec::{Device, DeviceOptions, GlobalBuffer, TileLayout};
use hmm_lint::{analyze, KernelContract, LintReport, Rule, Severity};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_core::{par, Matrix};

const W: usize = 8;

fn cfg() -> MachineConfig {
    MachineConfig::with_width(W)
}

fn tracing_device() -> Device {
    Device::new(DeviceOptions::new(cfg()).workers(0).record_trace(true))
}

fn lint(dev: &Device, contract: &KernelContract) -> LintReport {
    let counters = dev.stats();
    let trace = dev.take_trace();
    analyze(&trace, &counters, &cfg(), contract)
}

/// A 1R1W-style kernel that writes its output with stride `w` — every lane
/// in its own address group — under a fully-coalesced contract.
#[test]
fn strided_write_blows_a_coalesced_budget() {
    let dev = tracing_device();
    let buf = GlobalBuffer::filled(0.0f64, W * W);
    dev.launch(1, |ctx| {
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        g.write_strided(0, W, &vals, ctx.rec());
    });
    let report = lint(&dev, &KernelContract::fully_coalesced("strided-writer"));
    assert!(report.has(Rule::Uncoalesced), "{}", report.render());
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    // The finding pinpoints the offending transaction.
    assert_eq!((d.launch, d.block, d.op), (Some(0), Some(0), Some(0)));
    assert!(d.message.contains("stride fraction"), "{}", d.message);
    // The same kernel is fine under an unconstrained contract.
    let dev = tracing_device();
    dev.launch(1, |ctx| {
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        g.write_strided(0, W, &vals, ctx.rec());
    });
    assert!(lint(&dev, &KernelContract::unconstrained("any")).is_clean());
}

/// A column access through a row-major tile serialises on one bank; the
/// diagonal arrangement (Lemma 1) exists to avoid exactly this.
#[test]
fn row_major_column_access_is_a_bank_conflict() {
    let dev = tracing_device();
    dev.launch(1, |ctx| {
        let mut t = ctx.shared_tile::<f64>(TileLayout::RowMajor);
        let vals = [1.0; W];
        t.write_col(0, &vals, ctx.rec());
    });
    let report = lint(&dev, &KernelContract::unconstrained("row-major-tile"));
    assert_eq!(report.count(Rule::BankConflict), 1, "{}", report.render());
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("column 0"), "{}", d.message);
    // The identical kernel on a diagonal tile is conflict-free.
    let dev = tracing_device();
    dev.launch(1, |ctx| {
        let mut t = ctx.shared_tile::<f64>(TileLayout::Diagonal);
        let vals = [1.0; W];
        t.write_col(0, &vals, ctx.rec());
    });
    assert!(lint(&dev, &KernelContract::unconstrained("diagonal-tile")).is_clean());
}

/// Two blocks of one launch exchange data through global memory — a fused
/// kernel missing the barrier in between.
#[test]
fn fused_launch_without_barrier_is_a_race() {
    let dev = tracing_device();
    let buf = GlobalBuffer::filled(0.0f64, 2 * W);
    dev.launch(2, |ctx| {
        let b = ctx.block_id();
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        let mut got = [0.0; W];
        g.write_contig(b * W, &vals, ctx.rec());
        // Reads the *other* block's freshly written half: needs a barrier.
        g.read_contig((1 - b) * W, &mut got, ctx.rec());
    });
    let report = lint(&dev, &KernelContract::unconstrained("fused-no-barrier"));
    assert_eq!(report.count(Rule::BarrierRace), 2, "{}", report.render());
    assert!(report.diagnostics[0].message.contains("same launch window"));

    // The fixed kernel — same accesses, barrier (= second launch) between
    // the writes and the cross-block reads — is clean.
    let dev = tracing_device();
    dev.launch(2, |ctx| {
        let b = ctx.block_id();
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        g.write_contig(b * W, &vals, ctx.rec());
    });
    dev.launch(2, |ctx| {
        let b = ctx.block_id();
        let g = ctx.view(&buf);
        let mut got = [0.0; W];
        g.read_contig((1 - b) * W, &mut got, ctx.rec());
    });
    assert!(lint(&dev, &KernelContract::unconstrained("fixed")).is_clean());
}

/// Two blocks writing the same words is a race even without any read.
#[test]
fn overlapping_writes_are_a_race() {
    let dev = tracing_device();
    let buf = GlobalBuffer::filled(0.0f64, W);
    dev.launch(2, |ctx| {
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        g.write_contig(0, &vals, ctx.rec());
    });
    let report = lint(&dev, &KernelContract::unconstrained("overlapping-writes"));
    assert!(report.has(Rule::BarrierRace), "{}", report.render());
    assert!(report.diagnostics[0].message.contains("both write"));
}

/// Reading a tile that was never warp-written in the launch window: the
/// barrier reset the shared memory, so the read sees zeroes.
#[test]
fn reading_reset_shared_state_is_flagged() {
    let dev = tracing_device();
    dev.launch(1, |ctx| {
        let t = ctx.shared_tile::<f64>(TileLayout::Diagonal);
        let mut got = [0.0; W];
        t.read_row(0, &mut got, ctx.rec());
    });
    let report = lint(&dev, &KernelContract::unconstrained("reads-reset-tile"));
    assert_eq!(report.count(Rule::SharedReset), 1, "{}", report.render());
    // A stale-read is suspicious, not necessarily wrong: Warning severity.
    assert_eq!(report.diagnostics[0].severity, Severity::Warning);
    assert!(!report.is_clean());
    assert!(report.is_error_free());

    // Writing the tile anywhere in the same window (even *after* the read,
    // as recursive in-tile passes do) silences the rule.
    let dev = tracing_device();
    dev.launch(1, |ctx| {
        let mut t = ctx.shared_tile::<f64>(TileLayout::Diagonal);
        let mut got = [0.0; W];
        t.read_row(0, &mut got, ctx.rec());
        t.write_row(0, &got, ctx.rec());
    });
    assert!(lint(&dev, &KernelContract::unconstrained("tile-rw")).is_clean());
}

/// A correct kernel held to the wrong closed form: 2R2W measured against
/// the 4R4W row of Table I diverges in C, S and B.
#[test]
fn wrong_table_row_is_a_cost_divergence() {
    let n = 64;
    let dev = tracing_device();
    let a = Matrix::from_fn(n, n, |i, j| (i + j) as f64);
    let buf = GlobalBuffer::from_vec(a.into_vec());
    par::sat_2r2w(&dev, &buf, n, n);
    let report = lint(
        &dev,
        &KernelContract::for_algorithm(SatAlgorithm::FourR4W, n, cfg()),
    );
    assert!(report.has(Rule::CostDivergence), "{}", report.render());
    assert!(!report.is_error_free());
    // … and against its own row it is clean.
    let dev = tracing_device();
    let a = Matrix::from_fn(n, n, |i, j| (i + j) as f64);
    let buf = GlobalBuffer::from_vec(a.into_vec());
    par::sat_2r2w(&dev, &buf, n, n);
    let report = lint(
        &dev,
        &KernelContract::for_algorithm(SatAlgorithm::TwoR2W, n, cfg()),
    );
    assert!(report.is_clean(), "{}", report.render());
}

/// A launch marked lost must show no global writes. The real device skips
/// every block of a lost launch, so the violation has to be hand-crafted:
/// flip `lost` on a trace that did write, exactly what a buggy harness
/// that "recovers" by trusting partial output would produce.
#[test]
fn writes_in_a_lost_launch_break_the_recovery_contract() {
    use gpu_exec::{FaultPlan, LossWindow};

    let dev = tracing_device();
    let buf = GlobalBuffer::filled(0.0f64, 2 * W);
    dev.launch(2, |ctx| {
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        g.write_contig(ctx.block_id() * W, &vals, ctx.rec());
    });
    let counters = dev.stats();
    let mut trace = dev.take_trace();
    trace.launches[0].lost = true;
    let report = analyze(
        &trace,
        &counters,
        &cfg(),
        &KernelContract::unconstrained("lying-lost-launch"),
    );
    assert_eq!(report.count(Rule::WriteAfterLoss), 2, "{}", report.render());
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("marked lost"), "{}", d.message);
    assert_eq!((d.launch, d.block), (Some(0), Some(0)));

    // An honest device honours the contract: during an injected loss
    // window every block is skipped, so the lost launch traces no writes
    // and the rule stays silent.
    let dev = Device::new(
        DeviceOptions::new(cfg())
            .workers(0)
            .record_trace(true)
            .fault_plan(FaultPlan::new(3).loss(LossWindow::Launches { start: 0, count: 1 })),
    );
    dev.launch(2, |ctx| {
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        g.write_contig(ctx.block_id() * W, &vals, ctx.rec());
    });
    let counters = dev.stats();
    let trace = dev.take_trace();
    assert!(trace.launches[0].lost, "the window covers launch 0");
    let report = analyze(
        &trace,
        &counters,
        &cfg(),
        &KernelContract::unconstrained("honest-lost-launch"),
    );
    assert!(!report.has(Rule::WriteAfterLoss), "{}", report.render());
}

/// Reports serialize to JSON for `satlint --json` and tooling on top.
#[test]
fn reports_serialize_to_json() {
    let dev = tracing_device();
    let buf = GlobalBuffer::filled(0.0f64, W * W);
    dev.launch(1, |ctx| {
        let g = ctx.view(&buf);
        let vals = [1.0; W];
        g.write_strided(0, W, &vals, ctx.rec());
    });
    let report = lint(&dev, &KernelContract::fully_coalesced("strided-writer"));
    let json = serde_json::to_string(&report).expect("reports are serializable");
    assert!(json.contains("\"kernel\""), "{json}");
    assert!(json.contains("Uncoalesced"), "{json}");
    assert!(json.contains("\"suppressed\""), "{json}");
}

/// A kernel violating one rule hundreds of times stays readable: findings
/// beyond the per-rule cap are counted, not printed.
#[test]
fn mass_violations_are_capped() {
    let dev = tracing_device();
    dev.launch(1, |ctx| {
        let mut t = ctx.shared_tile::<f64>(TileLayout::RowMajor);
        let vals = [1.0; W];
        for _ in 0..4 {
            for j in 0..W {
                t.write_col(j, &vals, ctx.rec());
            }
        }
    });
    let report = lint(&dev, &KernelContract::unconstrained("conflict-storm"));
    assert_eq!(report.count(Rule::BankConflict), hmm_lint::MAX_PER_RULE);
    assert_eq!(
        report.suppressed,
        4 * W - hmm_lint::MAX_PER_RULE,
        "{}",
        report.render()
    );
    assert!(report.render().contains("suppressed"));
}
