//! The positive half of the analyzer's contract: every algorithm of the
//! paper is lint-clean — structurally (no bank conflicts, no barrier
//! races, no reads of reset shared state) on *arbitrary* shapes and
//! widths, and against its full Table I budget on aligned sizes.

use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_lint::{analyze, analyze_run, KernelContract, LintReport};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use proptest::prelude::*;
use sat_core::{compute_sat, compute_sat_hybrid, par, Matrix};

fn tracing_device(cfg: MachineConfig) -> Device {
    Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true))
}

fn workload(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| ((3 * i + 5 * j) % 7) as f64)
}

/// Run `alg` for real at size `n` (as the bench harness does) and lint it
/// against its own Table I contract.
fn lint_algorithm(cfg: MachineConfig, alg: SatAlgorithm, n: usize) -> LintReport {
    let dev = tracing_device(cfg);
    let a = workload(n);
    match alg {
        SatAlgorithm::TwoR2W => {
            let buf = GlobalBuffer::from_vec(a.into_vec());
            par::sat_2r2w(&dev, &buf, n, n);
        }
        SatAlgorithm::FourR4W => {
            let buf = GlobalBuffer::from_vec(a.into_vec());
            let tmp = GlobalBuffer::filled(0.0f64, n * n);
            par::sat_4r4w(&dev, &buf, &tmp, n, n);
        }
        SatAlgorithm::FourR1W => {
            let buf = GlobalBuffer::from_vec(a.into_vec());
            par::sat_4r1w(&dev, &buf, n, n);
        }
        SatAlgorithm::TwoR1W => {
            let buf = GlobalBuffer::from_vec(a.into_vec());
            let s = GlobalBuffer::filled(0.0f64, n * n);
            par::sat_2r1w(&dev, &buf, &s, n, n);
        }
        SatAlgorithm::OneR1W => {
            let buf = GlobalBuffer::from_vec(a.into_vec());
            let s = GlobalBuffer::filled(0.0f64, n * n);
            par::sat_1r1w(&dev, &buf, &s, n, n);
        }
        SatAlgorithm::HybridR1W => {
            let buf = GlobalBuffer::from_vec(a.into_vec());
            let s = GlobalBuffer::filled(0.0f64, n * n);
            let r = GlobalCost::new(cfg).optimal_r(n);
            par::sat_hybrid(&dev, &buf, &s, n, n, r);
        }
    }
    let counters = dev.stats();
    let trace = dev.take_trace();
    analyze(
        &trace,
        &counters,
        &cfg,
        &KernelContract::for_algorithm(alg, n, cfg),
    )
}

#[test]
fn every_algorithm_meets_its_table_one_contract() {
    let cfg = MachineConfig::with_width(16);
    for alg in SatAlgorithm::ALL {
        let report = lint_algorithm(cfg, alg, 128);
        assert!(
            report.is_clean(),
            "{} not clean:\n{}",
            alg.name(),
            report.render()
        );
    }
}

#[test]
fn analyze_run_places_findings_on_the_simulated_clock() {
    let cfg = MachineConfig::with_width(8).latency(16);
    let dev = tracing_device(cfg);
    let n = 64;
    let a = workload(n);
    let buf = GlobalBuffer::from_vec(a.into_vec());
    let s = GlobalBuffer::filled(0.0f64, n * n);
    par::sat_1r1w(&dev, &buf, &s, n, n);
    let counters = dev.stats();
    let trace = dev.take_trace();
    let contract = KernelContract::for_algorithm(SatAlgorithm::OneR1W, n, cfg);
    let run = analyze_run(&trace, &counters, &cfg, &contract);
    assert!(run.report.is_clean(), "{}", run.report.render());
    assert_eq!(run.windows.len(), run.report.launches);
    assert!(run.simulated_time > 0);
    // Windows tile the clock in order and end at the simulated total.
    for pair in run.windows.windows(2) {
        assert!(pair[0].end <= pair[1].start);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Full Table I contract on aligned sizes: any width, any latency, any
    /// DMM count — the measured counters must track the closed forms.
    #[test]
    fn table_one_contracts_hold_on_random_machines(
        wi in 0usize..3,
        m in 2usize..=6,
        latency in 1u64..200,
        d in 1usize..16,
    ) {
        let w = [4usize, 8, 16][wi];
        let n = w * m;
        let cfg = MachineConfig::with_width(w).latency(latency).num_dmms(d);
        for alg in SatAlgorithm::ALL {
            let report = lint_algorithm(cfg, alg, n);
            prop_assert!(
                report.is_clean(),
                "{} w={w} n={n} L={latency} d={d}:\n{}",
                alg.name(),
                report.render()
            );
        }
    }

    /// Structural rules on arbitrary (unaligned, non-square) shapes: no
    /// bank conflicts, no barrier races, no reads of reset shared state.
    #[test]
    fn structural_rules_hold_on_arbitrary_shapes(
        rows in 1usize..=40,
        cols in 1usize..=40,
        w in 3usize..=8,
        num in 0usize..=4,
    ) {
        let a = Matrix::from_fn(rows, cols, |i, j| ((7 * i + 3 * j) % 5) as i64);
        let cfg = MachineConfig::with_width(w);
        for alg in SatAlgorithm::ALL {
            let dev = tracing_device(cfg);
            if alg == SatAlgorithm::HybridR1W {
                compute_sat_hybrid(&dev, &a, num as f64 / 4.0);
            } else {
                compute_sat(&dev, alg, &a);
            }
            let counters = dev.stats();
            let trace = dev.take_trace();
            let report = analyze(
                &trace,
                &counters,
                &cfg,
                &KernelContract::unconstrained(alg.name()),
            );
            prop_assert!(
                report.is_clean(),
                "{} w={w} {rows}x{cols}:\n{}",
                alg.name(),
                report.render()
            );
        }
    }
}
