//! # hmm-sim — discrete-event simulation of the asynchronous HMM
//!
//! `gpu-exec` runs kernels for real and counts their memory transactions;
//! this crate answers the question the paper's Table II asks: **how long
//! would that execution take on the machine model?**
//!
//! A [`machine::AsyncHmm`] replays a recorded [`gpu_exec::RunTrace`] on `d`
//! DMM pipelines (shared memory, latency 1) and one UMM pipeline (global
//! memory, latency `L`), honouring per-block program order, the
//! one-outstanding-request rule, pipeline occupancy, and the per-launch
//! barrier/relaunch overhead. The result is a *dependency-aware* simulated
//! time that exhibits, from first principles, the regimes the paper's
//! global-memory-access cost `C/w + S + L·(B+1)` interpolates between —
//! full latency hiding when launches are wide, full latency exposure when a
//! wavefront stage holds a single block.
//!
//! [`harness::trace_and_simulate`] wires the two crates together: build a
//! tracing device, run any algorithm on it, and get back the measured
//! counters, the trace, and the simulated time.

#![warn(missing_docs)]

pub mod harness;
pub mod machine;

pub use harness::{export_sim_timeline, trace_and_simulate, TracedRun};
pub use machine::{AsyncHmm, LaunchTiming, SimReport, WindowTimeline};
