//! Convenience harness: run an algorithm on a tracing device and simulate it.

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::CostCounters;
use hmm_model::MachineConfig;

use crate::machine::{AsyncHmm, SimReport};

/// Everything one traced execution yields.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Measured transaction counters (coalesced/stride ops, stages,
    /// barriers).
    pub counters: CostCounters,
    /// Dependency-aware simulated timing.
    pub sim: SimReport,
    /// The paper's analytic cost `C/w + S + Λ·(B+1)` evaluated on the
    /// measured counters.
    pub analytic_cost: f64,
}

impl TracedRun {
    /// Ratio of simulated time to analytic cost — ≈ 1 when the cost model
    /// is a good approximation of the machine (the paper's §III claim).
    pub fn model_accuracy(&self) -> f64 {
        self.sim.total_time as f64 / self.analytic_cost
    }
}

/// Build a single-launcher tracing device for `cfg`, run `algo` on it, and
/// replay the recorded trace through the discrete-event machine.
///
/// The device executes blocks sequentially (0 extra workers): execution
/// order does not affect results (that is tested separately) and the traces
/// stay deterministic.
pub fn trace_and_simulate(cfg: MachineConfig, algo: impl FnOnce(&Device)) -> TracedRun {
    let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
    algo(&dev);
    let counters = dev.stats();
    let trace = dev.take_trace();
    let sim = AsyncHmm::new(cfg).simulate(&trace);
    TracedRun {
        counters,
        sim,
        analytic_cost: counters.global_cost(&cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::GlobalBuffer;

    #[test]
    fn harness_collects_counters_trace_and_time() {
        let cfg = MachineConfig::with_width(4).latency(8).num_dmms(2);
        let run = trace_and_simulate(cfg, |dev| {
            let buf = GlobalBuffer::filled(1.0f64, 64);
            for _ in 0..2 {
                dev.launch(4, |ctx| {
                    let g = ctx.view(&buf);
                    let mut v = [0.0; 4];
                    g.read_contig(ctx.block_id() * 4, &mut v, ctx.rec());
                    g.write_contig(ctx.block_id() * 4, &v, ctx.rec());
                });
            }
        });
        assert_eq!(run.counters.coalesced_reads, 32);
        assert_eq!(run.counters.barrier_steps, 1);
        assert_eq!(run.sim.per_launch.len(), 2);
        // Per launch: the four reads dispatch at t = 0..3 and complete at
        // t = 8..11; each block's dependent write then starts at its own
        // completion (4 blocks < L: latency is only partially hidden), so
        // the last write completes at 11 + 1 − 1 + 8 = 19.
        assert_eq!(run.sim.busy_time(), 2 * 19);
        // Analytic: C/w + S + Λ(B+1) = 64/4 + 0 + 8·2 = 32.
        assert_eq!(run.analytic_cost, 32.0);
        assert!(run.model_accuracy() > 0.5 && run.model_accuracy() < 2.0);
    }
}
