//! Convenience harness: run an algorithm on a tracing device and simulate
//! it, and export simulated timelines into an observability trace.

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::CostCounters;
use hmm_model::MachineConfig;
use obs::{ArgValue, Obs, SpanId};

use crate::machine::{AsyncHmm, SimReport};

/// Everything one traced execution yields.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Measured transaction counters (coalesced/stride ops, stages,
    /// barriers).
    pub counters: CostCounters,
    /// Dependency-aware simulated timing.
    pub sim: SimReport,
    /// The paper's analytic cost `C/w + S + Λ·(B+1)` evaluated on the
    /// measured counters.
    pub analytic_cost: f64,
}

impl TracedRun {
    /// Ratio of simulated time to analytic cost — ≈ 1 when the cost model
    /// is a good approximation of the machine (the paper's §III claim).
    pub fn model_accuracy(&self) -> f64 {
        self.sim.total_time as f64 / self.analytic_cost
    }
}

/// Build a single-launcher tracing device for `cfg`, run `algo` on it, and
/// replay the recorded trace through the discrete-event machine.
///
/// The device executes blocks sequentially (0 extra workers): execution
/// order does not affect results (that is tested separately) and the traces
/// stay deterministic.
pub fn trace_and_simulate(cfg: MachineConfig, algo: impl FnOnce(&Device)) -> TracedRun {
    let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
    algo(&dev);
    let counters = dev.stats();
    let trace = dev.take_trace();
    let sim = AsyncHmm::new(cfg).simulate(&trace);
    TracedRun {
        counters,
        sim,
        analytic_cost: counters.global_cost(&cfg),
    }
}

/// Export a simulated run onto `obs`'s **simulated clock** (trace process
/// [`obs::Track::SIM_PID`]): one umbrella span named `label` covering the
/// whole program on lane 0, and one `window` span per barrier-delimited
/// launch window on lane 1, parented to the umbrella, carrying the
/// window's stage and block counts as args — plus a `sim stages` counter
/// track sampling each window's global/shared stage counts. In Perfetto the resulting
/// track sits alongside the wall-clock track of the *real* execution, so
/// the paper's simulated-vs-measured comparison becomes a visual overlay.
///
/// No-op (returning `None`) when `obs` is disabled. Returns the umbrella
/// span's id otherwise.
pub fn export_sim_timeline(obs: &Obs, report: &SimReport, label: &str) -> Option<SpanId> {
    if !obs.is_enabled() {
        return None;
    }
    // `total_time` charges one fixed overhead per launch on top of busy
    // time, so the per-launch overhead is recoverable exactly.
    let overhead = report.total_time.saturating_sub(report.busy_time())
        / report.per_launch.len().max(1) as u64;
    let windows = report.windows(overhead);
    let root = obs.sim_span(
        0,
        format!("sim:{label}"),
        0,
        report.total_time,
        None,
        vec![
            ("launches", ArgValue::from(report.per_launch.len())),
            ("total_time", ArgValue::from(report.total_time)),
            ("busy_time", ArgValue::from(report.busy_time())),
        ],
    );
    for w in &windows {
        obs.sim_span(
            1,
            "window",
            w.start,
            w.end,
            root,
            vec![
                ("index", ArgValue::from(w.index)),
                ("blocks", ArgValue::from(w.blocks)),
                ("global_stages", ArgValue::from(w.global_stages)),
                ("shared_stages", ArgValue::from(w.shared_stages)),
            ],
        );
        // Modeled-stage counter track: Perfetto draws the per-window stage
        // counts as a step function under the window spans.
        obs.counter_event(
            obs::Track::sim(1),
            "sim stages",
            w.start as f64,
            &[
                ("global", w.global_stages as f64),
                ("shared", w.shared_stages as f64),
            ],
        );
    }
    if let Some(last) = windows.last() {
        obs.counter_event(
            obs::Track::sim(1),
            "sim stages",
            last.end as f64,
            &[("global", 0.0), ("shared", 0.0)],
        );
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::GlobalBuffer;

    #[test]
    fn harness_collects_counters_trace_and_time() {
        let cfg = MachineConfig::with_width(4).latency(8).num_dmms(2);
        let run = trace_and_simulate(cfg, |dev| {
            let buf = GlobalBuffer::filled(1.0f64, 64);
            for _ in 0..2 {
                dev.launch(4, |ctx| {
                    let g = ctx.view(&buf);
                    let mut v = [0.0; 4];
                    g.read_contig(ctx.block_id() * 4, &mut v, ctx.rec());
                    g.write_contig(ctx.block_id() * 4, &v, ctx.rec());
                });
            }
        });
        assert_eq!(run.counters.coalesced_reads, 32);
        assert_eq!(run.counters.barrier_steps, 1);
        assert_eq!(run.sim.per_launch.len(), 2);
        // Per launch: the four reads dispatch at t = 0..3 and complete at
        // t = 8..11; each block's dependent write then starts at its own
        // completion (4 blocks < L: latency is only partially hidden), so
        // the last write completes at 11 + 1 − 1 + 8 = 19.
        assert_eq!(run.sim.busy_time(), 2 * 19);
        // Analytic: C/w + S + Λ(B+1) = 64/4 + 0 + 8·2 = 32.
        assert_eq!(run.analytic_cost, 32.0);
        assert!(run.model_accuracy() > 0.5 && run.model_accuracy() < 2.0);
    }

    #[test]
    fn sim_timeline_lands_on_simulated_clock() {
        let cfg = MachineConfig::with_width(4).latency(8).num_dmms(2);
        let run = trace_and_simulate(cfg, |dev| {
            let buf = GlobalBuffer::filled(1.0f64, 64);
            for _ in 0..2 {
                dev.launch(4, |ctx| {
                    let g = ctx.view(&buf);
                    let mut v = [0.0; 4];
                    g.read_contig(ctx.block_id() * 4, &mut v, ctx.rec());
                    g.write_contig(ctx.block_id() * 4, &v, ctx.rec());
                });
            }
        });

        let obs = Obs::new();
        let root = export_sim_timeline(&obs, &run.sim, "harness").expect("enabled obs yields id");
        // Umbrella + one window span and one stage-counter sample per
        // window (single-launch windows here), plus the closing zero.
        let windows = run.sim.per_launch.len();
        assert_eq!(obs.event_count(), 1 + 2 * windows + 1);

        let json = obs.trace_json();
        let stats = obs::chrome::validate(&json).expect("valid chrome trace");
        assert_eq!(stats.complete, 1 + windows);
        assert_eq!(stats.counters, windows + 1);

        // Every emitted event sits on the simulated-clock process, and the
        // windows point back at the umbrella span.
        let parsed = obs::json::JsonValue::parse(&json).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        let mut windows = 0;
        for ev in events {
            if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            assert_eq!(
                ev.get("pid").unwrap().as_f64().unwrap() as u32,
                obs::Track::SIM_PID
            );
            let args = ev.get("args").unwrap();
            if ev.get("name").and_then(|n| n.as_str()) == Some("window") {
                windows += 1;
                assert_eq!(args.get("parent").unwrap().as_f64().unwrap() as u64, root.0);
            } else {
                assert_eq!(ev.get("name").and_then(|n| n.as_str()), Some("sim:harness"));
                assert_eq!(args.get("launches").unwrap().as_f64().unwrap() as usize, 2);
            }
        }
        assert_eq!(windows, run.sim.per_launch.len());
    }

    #[test]
    fn disabled_obs_skips_sim_export() {
        let cfg = MachineConfig::with_width(4);
        let run = trace_and_simulate(cfg, |dev| {
            let buf = GlobalBuffer::filled(1.0f64, 16);
            dev.launch(1, |ctx| {
                let g = ctx.view(&buf);
                let mut v = [0.0; 4];
                g.read_contig(0, &mut v, ctx.rec());
            });
        });
        let obs = Obs::disabled();
        assert!(export_sim_timeline(&obs, &run.sim, "off").is_none());
        assert_eq!(obs.event_count(), 0);
    }
}
