//! The discrete-event machine: `d` DMM pipelines + one UMM pipeline.
//!
//! Each block of a launch plays the role of one warp context (the kernels of
//! `sat-core` are warp-synchronous within a block, so a block's transactions
//! form one dependent chain). Blocks are assigned to DMMs round-robin, as
//! CUDA assigns resident blocks to streaming multiprocessors. A transaction
//! occupying `s` pipeline stages that enters its pipeline at time `t`:
//!
//! * blocks the pipeline entrance during `[t, t + s)`;
//! * completes at `t + s − 1 + latency` (shared latency 1, global `L`);
//! * its issuer may not issue again before completion — the paper's
//!   *"a thread cannot send a new memory access request until the previous
//!   memory access request is completed"*.
//!
//! The simulator therefore reproduces, from first principles, both regimes
//! the paper's cost analysis interpolates between: with many resident blocks
//! the pipelines stay full and a window costs `≈ stages + L`; with few (a
//! narrow wavefront stage) each transaction pays the full latency — exactly
//! why 4R1W loses and why the hybrid trims the wavefront's corners.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gpu_exec::{LaunchTrace, RunTrace};
use hmm_model::{MachineConfig, MemSpace};
use serde::{Deserialize, Serialize};

/// Timing of one simulated kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchTiming {
    /// Time units from launch start until the last transaction completes.
    pub time: u64,
    /// Total UMM pipeline stages issued.
    pub global_stages: u64,
    /// Total DMM pipeline stages issued (across all DMMs).
    pub shared_stages: u64,
    /// Blocks in the launch.
    pub blocks: usize,
}

/// Simulation result for a whole program (sequence of launches).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-launch timings, in launch order.
    pub per_launch: Vec<LaunchTiming>,
    /// End-to-end simulated time: the sum of launch times plus the fixed
    /// per-launch overhead (`MachineConfig::barrier_overhead`, modelling the
    /// kernel relaunch cost; the memory latency itself is already inside
    /// each launch's critical path).
    pub total_time: u64,
}

impl SimReport {
    /// Sum of per-launch times without the relaunch overhead.
    pub fn busy_time(&self) -> u64 {
        self.per_launch.iter().map(|l| l.time).sum()
    }

    /// Lay the launches out on the simulated clock: window `i` starts when
    /// window `i − 1` ends plus the barrier/relaunch overhead. Analyzers and
    /// reports use this to show *where* in a run each barrier-delimited
    /// window sits and what it spent its time on.
    pub fn windows(&self, barrier_overhead: u64) -> Vec<WindowTimeline> {
        let mut start = 0u64;
        self.per_launch
            .iter()
            .enumerate()
            .map(|(index, l)| {
                let w = WindowTimeline {
                    index,
                    start,
                    end: start + l.time,
                    global_stages: l.global_stages,
                    shared_stages: l.shared_stages,
                    blocks: l.blocks,
                };
                start = w.end + barrier_overhead;
                w
            })
            .collect()
    }
}

/// One barrier-delimited window of a simulated program, placed on the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowTimeline {
    /// Launch index (window number) within the program.
    pub index: usize,
    /// Simulated time at which the window's first transaction may issue.
    pub start: u64,
    /// Simulated time at which the window's last transaction completes
    /// (the barrier overhead is charged *after* this, before the next
    /// window's `start`).
    pub end: u64,
    /// UMM pipeline stages issued inside this window.
    pub global_stages: u64,
    /// DMM pipeline stages issued inside this window (all DMMs).
    pub shared_stages: u64,
    /// Blocks resident in the window.
    pub blocks: usize,
}

/// The asynchronous HMM discrete-event simulator.
#[derive(Debug, Clone, Copy)]
pub struct AsyncHmm {
    cfg: MachineConfig,
}

impl AsyncHmm {
    /// A simulator with the given machine parameters.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.latency >= 1, "global latency is at least 1");
        AsyncHmm { cfg }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Replay a recorded execution.
    pub fn simulate(&self, trace: &RunTrace) -> SimReport {
        let per_launch: Vec<LaunchTiming> = trace
            .launches
            .iter()
            .map(|l| self.simulate_launch(l))
            .collect();
        let total_time = per_launch
            .iter()
            .map(|l| l.time + self.cfg.barrier_overhead)
            .sum();
        SimReport {
            per_launch,
            total_time,
        }
    }

    /// Replay one launch; returns its critical-path time.
    pub fn simulate_launch(&self, launch: &LaunchTrace) -> LaunchTiming {
        let d = self.cfg.num_dmms.max(1);
        let mut dmm_free = vec![0u64; d];
        let mut umm_free = 0u64;
        let mut global_stages = 0u64;
        let mut shared_stages = 0u64;
        // (ready_at, block index, next op index); min-heap.
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = launch
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, ops)| !ops.is_empty())
            .map(|(b, _)| Reverse((0u64, b, 0usize)))
            .collect();
        let mut makespan = 0u64;
        while let Some(Reverse((ready, b, k))) = heap.pop() {
            let op = launch.blocks[b][k];
            let stages = op.stages as u64;
            let completion = if stages == 0 {
                ready
            } else {
                let (free, latency) = match op.space {
                    MemSpace::Shared => (&mut dmm_free[b % d], 1),
                    MemSpace::Global => (&mut umm_free, self.cfg.latency),
                };
                match op.space {
                    MemSpace::Shared => shared_stages += stages,
                    MemSpace::Global => global_stages += stages,
                }
                let start = ready.max(*free);
                *free = start + stages;
                start + stages - 1 + latency
            };
            makespan = makespan.max(completion);
            if k + 1 < launch.blocks[b].len() {
                heap.push(Reverse((completion, b, k + 1)));
            }
        }
        LaunchTiming {
            time: makespan,
            global_stages,
            shared_stages,
            blocks: launch.blocks.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_exec::TraceOp;
    use hmm_model::AccessKind;

    fn g(ops: u32, stages: u32) -> TraceOp {
        TraceOp {
            space: MemSpace::Global,
            kind: AccessKind::Read,
            ops,
            stages,
        }
    }

    fn sh(ops: u32, stages: u32) -> TraceOp {
        TraceOp {
            space: MemSpace::Shared,
            kind: AccessKind::Write,
            ops,
            stages,
        }
    }

    fn cfg(l: u64, d: usize) -> MachineConfig {
        MachineConfig::with_width(4).latency(l).num_dmms(d)
    }

    #[test]
    fn empty_trace() {
        let sim = AsyncHmm::new(cfg(10, 2));
        let r = sim.simulate(&RunTrace::default());
        assert_eq!(r.total_time, 0);
        assert!(r.per_launch.is_empty());
    }

    #[test]
    fn fig4_umm_example() {
        // Two warps on the UMM occupying 3 and 2 stages: L + 5 − 1.
        let launch = LaunchTrace::from_blocks(vec![vec![g(4, 3)], vec![g(4, 2)]]);
        for l in [1u64, 5, 100] {
            let sim = AsyncHmm::new(cfg(l, 1));
            let t = sim.simulate_launch(&launch);
            assert_eq!(t.time, l + 5 - 1, "L={l}");
            assert_eq!(t.global_stages, 5);
        }
    }

    #[test]
    fn fig4_dmm_example() {
        // The same two warps on one DMM (stage counts 2 and 1, latency 1):
        // 3 stages → 1 + 3 − 1 = 3 time units.
        let launch = LaunchTrace::from_blocks(vec![vec![sh(4, 2)], vec![sh(4, 1)]]);
        let sim = AsyncHmm::new(cfg(100, 1));
        let t = sim.simulate_launch(&launch);
        assert_eq!(t.time, 3);
        assert_eq!(t.shared_stages, 3);
    }

    #[test]
    fn latency_hiding_with_many_blocks() {
        // 64 blocks, each 10 dependent coalesced accesses, L = 16:
        // the pipeline stays saturated → ≈ stages + L − 1.
        let l = 16u64;
        let launch = LaunchTrace::from_blocks((0..64).map(|_| vec![g(4, 1); 10]).collect());
        let sim = AsyncHmm::new(cfg(l, 1));
        let t = sim.simulate_launch(&launch);
        assert_eq!(t.time, 640 + l - 1);
    }

    #[test]
    fn latency_exposed_with_single_block() {
        // One block, 10 dependent accesses: every access pays L.
        let l = 16u64;
        let launch = LaunchTrace::from_blocks(vec![vec![g(4, 1); 10]]);
        let sim = AsyncHmm::new(cfg(l, 1));
        let t = sim.simulate_launch(&launch);
        assert_eq!(t.time, 10 * l);
    }

    #[test]
    fn shared_work_overlaps_across_dmms() {
        // Two blocks with heavy shared work: on one DMM they serialise, on
        // two DMMs they overlap.
        let launch = LaunchTrace::from_blocks(vec![vec![sh(4, 8); 4], vec![sh(4, 8); 4]]);
        let one = AsyncHmm::new(cfg(100, 1)).simulate_launch(&launch);
        let two = AsyncHmm::new(cfg(100, 2)).simulate_launch(&launch);
        assert!(two.time < one.time);
        assert_eq!(two.time, 4 * 8); // each DMM runs its own chain back-to-back
        assert_eq!(one.time, 2 * 4 * 8);
    }

    #[test]
    fn global_pipeline_is_shared_across_dmms() {
        // Global traffic does not scale with d: one UMM.
        let launch = LaunchTrace::from_blocks((0..8).map(|_| vec![g(4, 4)]).collect());
        let a = AsyncHmm::new(cfg(4, 1)).simulate_launch(&launch);
        let b = AsyncHmm::new(cfg(4, 8)).simulate_launch(&launch);
        assert_eq!(a.time, b.time);
        assert_eq!(a.time, 8 * 4 + 4 - 1);
    }

    #[test]
    fn total_time_adds_barrier_overhead_per_launch() {
        let launch = LaunchTrace::from_blocks(vec![vec![g(4, 1)]]);
        let trace = RunTrace {
            launches: vec![launch.clone(), launch],
        };
        let cfg = MachineConfig::with_width(4)
            .latency(10)
            .barrier_overhead(500);
        let sim = AsyncHmm::new(cfg);
        let r = sim.simulate(&trace);
        assert_eq!(r.per_launch.len(), 2);
        assert_eq!(r.busy_time(), 2 * 10);
        assert_eq!(r.total_time, 2 * (10 + 500));
    }

    #[test]
    fn windows_tile_the_simulated_clock() {
        let launch = LaunchTrace::from_blocks(vec![vec![g(4, 1)], vec![sh(4, 2)]]);
        let trace = RunTrace {
            launches: vec![launch.clone(), launch],
        };
        let sim = AsyncHmm::new(cfg(10, 1).barrier_overhead(500));
        let r = sim.simulate(&trace);
        let ws = r.windows(500);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].start, 0);
        assert_eq!(ws[0].end, r.per_launch[0].time);
        assert_eq!(ws[1].start, ws[0].end + 500);
        assert_eq!(ws[1].end - ws[1].start, r.per_launch[1].time);
        assert_eq!(ws[1].end + 500, r.total_time);
        assert_eq!(ws[0].global_stages, 1);
        assert_eq!(ws[0].shared_stages, 2);
        assert_eq!(ws[0].blocks, 2);
    }

    #[test]
    fn zero_stage_ops_cost_nothing() {
        let launch = LaunchTrace::from_blocks(vec![vec![g(0, 0), g(4, 1)]]);
        let sim = AsyncHmm::new(cfg(7, 1));
        assert_eq!(sim.simulate_launch(&launch).time, 7);
    }
}
