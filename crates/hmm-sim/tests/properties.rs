//! Property tests for the discrete-event machine.

use gpu_exec::{LaunchTrace, RunTrace, TraceOp};
use hmm_model::{AccessKind, MachineConfig, MemSpace};
use hmm_sim::AsyncHmm;
use proptest::prelude::*;

fn op(space: MemSpace, stages: u32) -> TraceOp {
    TraceOp {
        space,
        kind: AccessKind::Read,
        ops: 4,
        stages,
    }
}

fn arb_launch() -> impl Strategy<Value = LaunchTrace> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                prop_oneof![Just(MemSpace::Shared), Just(MemSpace::Global)],
                1u32..5,
            )
                .prop_map(|(s, st)| op(s, st)),
            0..8,
        ),
        1..10,
    )
    .prop_map(LaunchTrace::from_blocks)
}

proptest! {
    #[test]
    fn time_bounded_below_by_stage_counts(launch in arb_launch(), l in 1u64..64, d in 1usize..8) {
        let sim = AsyncHmm::new(MachineConfig::with_width(4).latency(l).num_dmms(d));
        let t = sim.simulate_launch(&launch);
        // The single UMM must issue every global stage sequentially.
        if t.global_stages > 0 {
            prop_assert!(t.time >= t.global_stages + l - 1);
        }
        // Shared stages are spread over ≤ d DMMs.
        prop_assert!(t.time >= t.shared_stages / d as u64);
    }

    #[test]
    fn time_bounded_above_by_full_serialisation(launch in arb_launch(), l in 1u64..64) {
        let sim = AsyncHmm::new(MachineConfig::with_width(4).latency(l).num_dmms(2));
        let t = sim.simulate_launch(&launch);
        let ops: u64 = launch
            .blocks
            .iter()
            .flatten()
            .map(|o| o.stages as u64)
            .sum();
        prop_assert!(t.time <= ops.max(1) * (l + 4));
    }

    #[test]
    fn more_latency_never_speeds_things_up(launch in arb_launch(), l in 1u64..64, dl in 1u64..64) {
        let a = AsyncHmm::new(MachineConfig::with_width(4).latency(l).num_dmms(2))
            .simulate_launch(&launch);
        let b = AsyncHmm::new(MachineConfig::with_width(4).latency(l + dl).num_dmms(2))
            .simulate_launch(&launch);
        prop_assert!(b.time >= a.time);
    }

    #[test]
    fn more_dmms_never_slow_shared_work(launch in arb_launch(), d in 1usize..6) {
        let a = AsyncHmm::new(MachineConfig::with_width(4).num_dmms(d)).simulate_launch(&launch);
        let b = AsyncHmm::new(MachineConfig::with_width(4).num_dmms(d + 1)).simulate_launch(&launch);
        // Not strictly monotone per-launch (block→DMM assignment shifts),
        // but stage totals must be identical and time within 2× of each
        // other for these small traces.
        prop_assert_eq!(a.shared_stages, b.shared_stages);
        prop_assert_eq!(a.global_stages, b.global_stages);
        prop_assert!(b.time <= 2 * a.time.max(1));
    }

    #[test]
    fn total_time_is_sum_of_windows(launches in proptest::collection::vec(arb_launch(), 0..5)) {
        let cfg = MachineConfig::with_width(4).latency(8).barrier_overhead(100);
        let sim = AsyncHmm::new(cfg);
        let trace = RunTrace { launches };
        let r = sim.simulate(&trace);
        let per: u64 = r.per_launch.iter().map(|t| t.time + 100).sum();
        prop_assert_eq!(r.total_time, per);
        prop_assert_eq!(r.per_launch.len(), trace.launches.len());
    }

    #[test]
    fn splitting_a_launch_never_helps(blocks in proptest::collection::vec(
        proptest::collection::vec((1u32..4).prop_map(|st| op(MemSpace::Global, st)), 1..5),
        2..8,
    )) {
        // Running the same blocks as one launch is at least as fast as two
        // barrier-separated halves (barriers only ever add time).
        let cfg = MachineConfig::with_width(4).latency(16).barrier_overhead(50);
        let sim = AsyncHmm::new(cfg);
        let mid = blocks.len() / 2;
        let fused = RunTrace { launches: vec![LaunchTrace::from_blocks(blocks.clone())] };
        let split = RunTrace {
            launches: vec![
                LaunchTrace::from_blocks(blocks[..mid].to_vec()),
                LaunchTrace::from_blocks(blocks[mid..].to_vec()),
            ],
        };
        let tf = sim.simulate(&fused).total_time;
        let ts = sim.simulate(&split).total_time;
        prop_assert!(tf <= ts);
    }
}
