//! The counter/gauge registry: typed handles over atomic cells.
//!
//! Handles ([`Counter`], [`Gauge`]) are obtained once and updated with a
//! single atomic add — the registry's map lock is only taken at
//! registration and snapshot time, never on the hot path.
//!
//! Counters carry two scopes: a **cumulative** total (never reset — the
//! Prometheus counter contract) and a **per-launch** scope that an executor
//! zeroes at the start of each unit of work ([`Registry::reset_scope`]), so
//! "what did *this* launch cost" is answerable without diffing snapshots.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared metric registry. Cloning is cheap (one `Arc`); all clones see
/// the same metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
}

#[derive(Default)]
struct CounterCell {
    total: AtomicU64,
    scope: AtomicU64,
}

#[derive(Default)]
struct GaugeCell {
    /// `f64` bits; gauges are set, not accumulated, so a plain store works.
    bits: AtomicU64,
}

/// A monotonically increasing counter. Cheap to clone; updates are one
/// relaxed atomic add per scope.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

/// A gauge: a value that is *set* rather than accumulated (latency
/// percentiles, queue depth, ratios).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

/// One counter's values at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name, possibly with a `{label="value"}` suffix.
    pub name: String,
    /// Cumulative value since registration.
    pub total: u64,
    /// Value accumulated since the last [`Registry::reset_scope`].
    pub scoped: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name, possibly with a `{label="value"}` suffix.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// A point-in-time view of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
}

impl Snapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<&CounterSample> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSample> {
        self.gauges.iter().find(|g| g.name == name)
    }
}

impl Counter {
    /// Add `n` to both the cumulative total and the per-launch scope.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.total.fetch_add(n, Ordering::Relaxed);
        self.cell.scope.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Cumulative value since registration.
    pub fn total(&self) -> u64 {
        self.cell.total.load(Ordering::Relaxed)
    }

    /// Value accumulated since the last [`Registry::reset_scope`].
    pub fn scoped(&self) -> u64 {
        self.cell.scope.load(Ordering::Relaxed)
    }
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Last value set (0.0 initially).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.bits.load(Ordering::Relaxed))
    }
}

/// Valid metric names: Prometheus identifier characters, with an optional
/// literal `{label="value",…}` suffix baked into the name.
fn check_name(name: &str) {
    let base = name.split('{').next().unwrap_or(name);
    assert!(
        !base.is_empty()
            && base
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}"
    );
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`. The name may carry a literal
    /// label suffix, e.g. `requests_total{reason="deadline"}`.
    ///
    /// Panics if `name` is already registered as a gauge.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell::default())))
        {
            Metric::Counter(c) => {
                check_name(name);
                Counter {
                    cell: Arc::clone(c),
                }
            }
            Metric::Gauge(_) => panic!("metric {name:?} is already registered as a gauge"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell::default())))
        {
            Metric::Gauge(g) => {
                check_name(name);
                Gauge {
                    cell: Arc::clone(g),
                }
            }
            Metric::Counter(_) => panic!("metric {name:?} is already registered as a counter"),
        }
    }

    /// Zero every counter's per-launch scope (cumulative totals are
    /// untouched). Executors call this at the start of each launch.
    pub fn reset_scope(&self) {
        let m = self.inner.metrics.lock().expect("registry lock");
        for metric in m.values() {
            if let Metric::Counter(c) = metric {
                c.scope.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.inner.metrics.lock().expect("registry lock");
        let mut snap = Snapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: name.clone(),
                    total: c.total.load(Ordering::Relaxed),
                    scoped: c.scope.load(Ordering::Relaxed),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: name.clone(),
                    value: f64::from_bits(g.bits.load(Ordering::Relaxed)),
                }),
            }
        }
        snap
    }

    /// Prometheus-style text exposition: one `# TYPE` line per metric family
    /// (the name up to any `{` suffix) followed by its samples' cumulative
    /// values, in name order.
    pub fn expose_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut last_family = String::new();
        let type_line = |out: &mut String, name: &str, kind: &str, last: &mut String| {
            let family = name.split('{').next().unwrap_or(name);
            if family != last {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                *last = family.to_string();
            }
        };
        for c in &snap.counters {
            type_line(&mut out, &c.name, "counter", &mut last_family);
            let _ = writeln!(out, "{} {}", c.name, c.total);
        }
        for g in &snap.gauges {
            type_line(&mut out, &g.name, "gauge", &mut last_family);
            let _ = writeln!(out, "{} {}", g.name, g.value);
        }
        out
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_snapshot() {
        let r = Registry::new();
        let s = r.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert_eq!(r.expose_text(), "");
    }

    #[test]
    fn single_sample_snapshot() {
        let r = Registry::new();
        let c = r.counter("ops_total");
        c.inc();
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.counter("ops_total").unwrap().total, 1);
        assert_eq!(s.counter("ops_total").unwrap().scoped, 1);
        assert!(s.counter("missing").is_none());
    }

    #[test]
    fn clones_share_cells_and_registry() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.clone().counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.total(), 5);
        assert_eq!(r.snapshot().counter("x").unwrap().total, 5);
    }

    #[test]
    fn scope_resets_but_total_accumulates() {
        let r = Registry::new();
        let c = r.counter("launch_ops");
        c.add(10);
        r.reset_scope();
        c.add(4);
        assert_eq!(c.total(), 14);
        assert_eq!(c.scoped(), 4);
        let s = r.snapshot();
        assert_eq!(s.counter("launch_ops").unwrap().scoped, 4);
    }

    #[test]
    fn gauges_set_and_read() {
        let r = Registry::new();
        let g = r.gauge("p99_ms");
        assert_eq!(g.get(), 0.0);
        g.set(12.5);
        assert_eq!(g.get(), 12.5);
        assert_eq!(r.snapshot().gauge("p99_ms").unwrap().value, 12.5);
    }

    #[test]
    fn exposition_groups_label_suffixed_families() {
        let r = Registry::new();
        r.counter("rejected_total{reason=\"deadline\"}").add(2);
        r.counter("rejected_total{reason=\"queue_full\"}").add(1);
        r.gauge("width_mean").set(3.5);
        let text = r.expose_text();
        // One TYPE line for the family, both samples under it, BTreeMap order.
        assert_eq!(text.matches("# TYPE rejected_total counter").count(), 1);
        assert!(text.contains("rejected_total{reason=\"deadline\"} 2\n"));
        assert!(text.contains("rejected_total{reason=\"queue_full\"} 1\n"));
        assert!(text.contains("# TYPE width_mean gauge\nwidth_mean 3.5\n"));
    }

    #[test]
    #[should_panic(expected = "already registered as a gauge")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        let _g = r.gauge("same");
        let _c = r.counter("same");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        let r = Registry::new();
        let _c = r.counter("has space");
    }

    #[test]
    fn counters_are_thread_safe() {
        let r = Registry::new();
        let c = r.counter("hot");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.total(), 4000);
    }
}
