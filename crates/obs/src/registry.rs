//! The counter/gauge registry: typed handles over atomic cells.
//!
//! Handles ([`Counter`], [`Gauge`]) are obtained once and updated with a
//! single atomic add — the registry's map lock is only taken at
//! registration and snapshot time, never on the hot path.
//!
//! Counters carry two scopes: a **cumulative** total (never reset — the
//! Prometheus counter contract) and a **per-launch** scope that an executor
//! zeroes at the start of each unit of work ([`Registry::reset_scope`]), so
//! "what did *this* launch cost" is answerable without diffing snapshots.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{BucketLayout, Histogram, HistogramCell, HistogramSample};

/// A shared metric registry. Cloning is cheap (one `Arc`); all clones see
/// the same metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct CounterCell {
    total: AtomicU64,
    scope: AtomicU64,
}

#[derive(Default)]
struct GaugeCell {
    /// `f64` bits; gauges are set, not accumulated, so a plain store works.
    bits: AtomicU64,
}

/// A monotonically increasing counter. Cheap to clone; updates are one
/// relaxed atomic add per scope.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

/// A gauge: a value that is *set* rather than accumulated (latency
/// percentiles, queue depth, ratios).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

/// One counter's values at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name, possibly with a `{label="value"}` suffix.
    pub name: String,
    /// Cumulative value since registration.
    pub total: u64,
    /// Value accumulated since the last [`Registry::reset_scope`].
    pub scoped: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name, possibly with a `{label="value"}` suffix.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// A point-in-time view of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<&CounterSample> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSample> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl Counter {
    /// Add `n` to both the cumulative total and the per-launch scope.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.total.fetch_add(n, Ordering::Relaxed);
        self.cell.scope.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Cumulative value since registration.
    pub fn total(&self) -> u64 {
        self.cell.total.load(Ordering::Relaxed)
    }

    /// Value accumulated since the last [`Registry::reset_scope`].
    pub fn scoped(&self) -> u64 {
        self.cell.scope.load(Ordering::Relaxed)
    }
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Last value set (0.0 initially).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.bits.load(Ordering::Relaxed))
    }
}

/// Valid metric names: Prometheus identifier characters, with an optional
/// literal `{label="value",…}` suffix baked into the name.
fn check_name(name: &str) {
    let base = name.split('{').next().unwrap_or(name);
    assert!(
        !base.is_empty()
            && base
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}"
    );
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`. The name may carry a literal
    /// label suffix, e.g. `requests_total{reason="deadline"}`.
    ///
    /// Panics if `name` is already registered as another kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell::default())))
        {
            Metric::Counter(c) => {
                check_name(name);
                Counter {
                    cell: Arc::clone(c),
                }
            }
            other => panic!(
                "metric {name:?} is already registered as a {}",
                other.kind()
            ),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// Panics if `name` is already registered as another kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell::default())))
        {
            Metric::Gauge(g) => {
                check_name(name);
                Gauge {
                    cell: Arc::clone(g),
                }
            }
            other => panic!(
                "metric {name:?} is already registered as a {}",
                other.kind()
            ),
        }
    }

    /// Get or register the histogram `name` with the default latency
    /// layout ([`BucketLayout::default_latency_seconds`]).
    ///
    /// Panics if `name` is already registered as another kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &BucketLayout::default_latency_seconds())
    }

    /// Get or register the histogram `name` with an explicit bucket layout.
    ///
    /// Panics if `name` is already registered as another kind, or as a
    /// histogram with a *different* layout (merging and quantiles require
    /// identical bounds).
    pub fn histogram_with(&self, name: &str, layout: &BucketLayout) -> Histogram {
        let mut m = self.inner.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::new(layout))))
        {
            Metric::Histogram(h) => {
                check_name(name);
                assert!(
                    h.same_layout(layout),
                    "histogram {name:?} is already registered with a different bucket layout"
                );
                Histogram {
                    cell: Arc::clone(h),
                }
            }
            other => panic!(
                "metric {name:?} is already registered as a {}",
                other.kind()
            ),
        }
    }

    /// Build a metric name with a properly escaped label suffix:
    /// `Registry::labeled("rejected_total", &[("reason", "a\"b")])` yields
    /// `rejected_total{reason="a\"b"}`. Use this instead of formatting the
    /// suffix by hand when label values are not known-clean literals.
    pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
        let mut out = String::from(base);
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(v, &mut out);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Zero every counter's per-launch scope (cumulative totals are
    /// untouched). Executors call this at the start of each launch.
    pub fn reset_scope(&self) {
        let m = self.inner.metrics.lock().expect("registry lock");
        for metric in m.values() {
            if let Metric::Counter(c) = metric {
                c.scope.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.inner.metrics.lock().expect("registry lock");
        let mut snap = Snapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: name.clone(),
                    total: c.total.load(Ordering::Relaxed),
                    scoped: c.scope.load(Ordering::Relaxed),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: name.clone(),
                    value: f64::from_bits(g.bits.load(Ordering::Relaxed)),
                }),
                Metric::Histogram(h) => snap.histograms.push(h.sample(name)),
            }
        }
        snap
    }

    /// Prometheus-style text exposition. Each metric family (the name up to
    /// any `{` suffix) gets one `# TYPE` line — tracked **per kind**, so a
    /// gauge family following a counter family of the same name still gets
    /// its line — followed by its samples in name order. Label values are
    /// re-escaped (`\` → `\\`, `"` → `\"`, newline → `\n`) so the output
    /// survives `promtool check metrics`-style validation. Histograms emit
    /// the standard cumulative `_bucket{le="…"}` series plus `_sum` and
    /// `_count`.
    pub fn expose_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let type_line = |out: &mut String, name: &str, kind: &str, last: &mut String| {
            let family = name.split('{').next().unwrap_or(name);
            if family != last {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                *last = family.to_string();
            }
        };
        let mut last = String::new();
        for c in &snap.counters {
            type_line(&mut out, &c.name, "counter", &mut last);
            let _ = writeln!(out, "{} {}", render_name(&c.name), c.total);
        }
        let mut last = String::new();
        for g in &snap.gauges {
            type_line(&mut out, &g.name, "gauge", &mut last);
            let _ = writeln!(out, "{} {}", render_name(&g.name), g.value);
        }
        let mut last = String::new();
        for h in &snap.histograms {
            type_line(&mut out, &h.name, "histogram", &mut last);
            let rendered = render_name(&h.name);
            let (base, labels) = match rendered.split_once('{') {
                Some((b, rest)) => (b, rest.trim_end_matches('}')),
                None => (rendered.as_str(), ""),
            };
            for (i, (le, cum)) in h.cumulative().into_iter().enumerate() {
                let le = fmt_le(le);
                // OpenMetrics exemplar suffix: the most recent request id
                // and observed value that landed in this bucket, linking a
                // scraped `_bucket` line to a traceable request.
                let exemplar = match h.exemplars.get(i).copied().flatten() {
                    Some((id, v)) => format!(" # {{request_id=\"{id}\"}} {v}"),
                    None => String::new(),
                };
                if labels.is_empty() {
                    let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cum}{exemplar}");
                } else {
                    let _ = writeln!(out, "{base}_bucket{{{labels},le=\"{le}\"}} {cum}{exemplar}");
                }
            }
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let _ = writeln!(out, "{base}_sum{suffix} {}", h.sum);
            let _ = writeln!(out, "{base}_count{suffix} {}", h.count);
        }
        out
    }
}

fn fmt_le(b: f64) -> String {
    if b.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{b}")
    }
}

fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Re-render a registered metric name with label values escaped for the
/// Prometheus text format. Names without a label suffix — and names whose
/// suffix does not parse as `key="value"` pairs — pass through unchanged
/// (registration accepted them, so exposition must not drop them).
fn render_name(raw: &str) -> String {
    let Some(brace) = raw.find('{') else {
        return raw.to_string();
    };
    if !raw.ends_with('}') {
        return raw.to_string();
    }
    let base = &raw[..brace];
    let body = &raw[brace + 1..raw.len() - 1];
    match parse_labels(body) {
        Some(labels) => {
            let pairs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            Registry::labeled(base, &pairs)
        }
        None => raw.to_string(),
    }
}

/// Parse a `key="value",key="value"` label body, decoding any existing
/// `\\`/`\"`/`\n` escapes so re-rendering is idempotent. Returns `None`
/// on malformed input.
fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = rest[..eq].trim().to_string();
        let mut value = String::new();
        let mut end = None;
        let mut chars = rest[eq + 2..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return None,
                },
                '"' => {
                    end = Some(eq + 2 + i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        out.push((key, value));
        rest = &rest[end?..];
        if !rest.is_empty() {
            rest = rest.strip_prefix(',')?;
        }
    }
    Some(out)
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_snapshot() {
        let r = Registry::new();
        let s = r.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert_eq!(r.expose_text(), "");
    }

    #[test]
    fn single_sample_snapshot() {
        let r = Registry::new();
        let c = r.counter("ops_total");
        c.inc();
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.counter("ops_total").unwrap().total, 1);
        assert_eq!(s.counter("ops_total").unwrap().scoped, 1);
        assert!(s.counter("missing").is_none());
    }

    #[test]
    fn clones_share_cells_and_registry() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.clone().counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.total(), 5);
        assert_eq!(r.snapshot().counter("x").unwrap().total, 5);
    }

    #[test]
    fn scope_resets_but_total_accumulates() {
        let r = Registry::new();
        let c = r.counter("launch_ops");
        c.add(10);
        r.reset_scope();
        c.add(4);
        assert_eq!(c.total(), 14);
        assert_eq!(c.scoped(), 4);
        let s = r.snapshot();
        assert_eq!(s.counter("launch_ops").unwrap().scoped, 4);
    }

    #[test]
    fn gauges_set_and_read() {
        let r = Registry::new();
        let g = r.gauge("p99_ms");
        assert_eq!(g.get(), 0.0);
        g.set(12.5);
        assert_eq!(g.get(), 12.5);
        assert_eq!(r.snapshot().gauge("p99_ms").unwrap().value, 12.5);
    }

    #[test]
    fn exposition_groups_label_suffixed_families() {
        let r = Registry::new();
        r.counter("rejected_total{reason=\"deadline\"}").add(2);
        r.counter("rejected_total{reason=\"queue_full\"}").add(1);
        r.gauge("width_mean").set(3.5);
        let text = r.expose_text();
        // One TYPE line for the family, both samples under it, BTreeMap order.
        assert_eq!(text.matches("# TYPE rejected_total counter").count(), 1);
        assert!(text.contains("rejected_total{reason=\"deadline\"} 2\n"));
        assert!(text.contains("rejected_total{reason=\"queue_full\"} 1\n"));
        assert!(text.contains("# TYPE width_mean gauge\nwidth_mean 3.5\n"));
    }

    #[test]
    #[should_panic(expected = "already registered as a gauge")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        let _g = r.gauge("same");
        let _c = r.counter("same");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        let r = Registry::new();
        let _c = r.counter("has space");
    }

    #[test]
    fn histogram_exposition_has_bucket_sum_count() {
        let r = Registry::new();
        let h = r.histogram_with("req_seconds", &BucketLayout::log(1.0, 2.0, 3));
        h.observe(0.5);
        h.observe(3.0);
        h.observe(100.0);
        let text = r.expose_text();
        assert!(text.contains("# TYPE req_seconds histogram"));
        assert!(text.contains("req_seconds_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("req_seconds_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("req_seconds_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("req_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("req_seconds_sum 103.5\n"));
        assert!(text.contains("req_seconds_count 3\n"));
    }

    #[test]
    fn labeled_histogram_merges_le_into_suffix() {
        let r = Registry::new();
        let h = r.histogram_with(
            "stage_seconds{stage=\"queue\"}",
            &BucketLayout::log(1.0, 2.0, 2),
        );
        h.observe(1.5);
        let text = r.expose_text();
        assert!(text.contains("stage_seconds_bucket{stage=\"queue\",le=\"2\"} 1\n"));
        assert!(text.contains("stage_seconds_sum{stage=\"queue\"} 1.5\n"));
        assert!(text.contains("stage_seconds_count{stage=\"queue\"} 1\n"));
        assert_eq!(text.matches("# TYPE stage_seconds histogram").count(), 1);
    }

    #[test]
    fn exemplars_render_in_openmetrics_syntax() {
        let r = Registry::new();
        let h = r.histogram_with("req_seconds", &BucketLayout::log(1.0, 2.0, 3));
        h.observe(0.5); // no exemplar on this bucket
        h.observe_with_exemplar(1.5, 42);
        let text = r.expose_text();
        assert!(
            text.contains("req_seconds_bucket{le=\"2\"} 2 # {request_id=\"42\"} 1.5\n"),
            "got: {text}"
        );
        // Buckets without an exemplar stay plain Prometheus lines.
        assert!(text.contains("req_seconds_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(
            text.contains("req_seconds_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "different bucket layout")]
    fn histogram_layout_conflicts_panic() {
        let r = Registry::new();
        let _a = r.histogram_with("h", &BucketLayout::log(1.0, 2.0, 4));
        let _b = r.histogram_with("h", &BucketLayout::log(1.0, 2.0, 5));
    }

    #[test]
    fn label_values_are_escaped_on_exposition() {
        let r = Registry::new();
        let name = Registry::labeled("weird_total", &[("path", "a\"b\\c")]);
        assert_eq!(name, "weird_total{path=\"a\\\"b\\\\c\"}");
        r.counter(&name).add(7);
        let text = r.expose_text();
        // Escapes survive a round trip through registration + exposition
        // (idempotent: not double-escaped).
        assert!(
            text.contains("weird_total{path=\"a\\\"b\\\\c\"} 7\n"),
            "got: {text}"
        );
    }

    #[test]
    fn type_lines_emitted_per_kind_even_for_shared_family_names() {
        let r = Registry::new();
        // Same family name in two kinds (user error, but exposition must
        // still announce both kinds rather than silently suppressing one).
        r.counter("depth{side=\"in\"}").add(1);
        r.gauge("depth_now").set(2.0);
        let text = r.expose_text();
        assert!(text.contains("# TYPE depth counter"));
        assert!(text.contains("# TYPE depth_now gauge"));
    }

    #[test]
    fn counters_are_thread_safe() {
        let r = Registry::new();
        let c = r.counter("hot");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.total(), 4000);
    }
}
