//! Live model-conformance observatory.
//!
//! The paper's cost model `C/w + S + Λ(B+1)` is only as good as its
//! calibration: the machine parameters `w` (width) and `Λ` (window
//! overhead) are constants of a *particular* machine, and the per-word
//! bandwidth `τ` (seconds per model time unit) that converts model cost to
//! wall clock drifts with thermal state, contention and sick hardware. This
//! module makes conformance a first-class, always-on observable: a
//! [`Conformance`] tracker ingests one [`LaunchSample`] per kernel launch —
//! the launch's exact counters (`C` coalesced words, `S` stride words, the
//! recorded pipeline stages) plus its measured wall time — and maintains
//! three live results:
//!
//! * an **online least-squares estimator** over the stream. Each launch's
//!   model time is `u = stages + Λ` (one launch is one barrier window).
//!   Since the recorder charges one pipeline stage per coalesced
//!   transaction and the model charges exactly one unit per stride stage,
//!   the regression `u − S = a·C + c` over exponentially forgotten sums
//!   recovers `w = 1/a` and `Λ = c` — with a *genuine* residual, because
//!   partial-width transactions and sub-warp strides break the closed
//!   form's full-transaction assumption. The stride coefficient is not
//!   fitted: it is 1 by definition (a stride stage *is* the time unit);
//!   the machine's free parameters are `w`, `Λ` and `τ`.
//! * **per-cell rolling residual statistics**, where a *cell* is an
//!   (algorithm × shape-bucket) label ([`cell_label`]) optionally suffixed
//!   `@s<shard>` for fleet devices, so shard-relative drift localizes a
//!   sick device.
//! * an **EWMA/CUSUM change-point detector** on `τ = wall / u` per cell: a
//!   baseline `τ̄` is frozen over the first [`baseline_samples`] launches
//!   (units-weighted, so tiny launches do not skew it), then each sample
//!   adds `min(1, u/ū) · clamp(τ/τ̄ − 1 − slack, −1, rise_cap)` to a
//!   one-sided CUSUM score; crossing [`drift_threshold`] latches a
//!   structured [`DriftAlert`] (one per cell, ever). A second,
//!   *shard-relative* channel compares a sharded cell's baseline `τ̄`
//!   against the median of its sibling shards' baselines and alerts when
//!   it exceeds `1 + shard_relative_band` times the median — catching a
//!   device that was sick from its very first launch, which its own
//!   baseline can never reveal.
//!
//! [`baseline_samples`]: ConformanceConfig::baseline_samples
//! [`drift_threshold`]: ConformanceConfig::drift_threshold
//!
//! The tracker is cheap (one mutex-guarded accumulation per *launch* — and
//! launches are milliseconds), clone-shared (`Arc` inside), and optionally
//! attaches to a [`Registry`] under a caller-chosen prefix, exposing
//! `<prefix>model_residual_*` histograms and live fitted-parameter gauges.
//! [`Conformance::report_json`] renders the whole state as a
//! schema-versioned JSON report (see [`REPORT_SCHEMA`]) served by
//! `sat-service` at `/debug/conformance`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::chrome;
use crate::histogram::{BucketLayout, Histogram};
use crate::registry::{Counter, Gauge, Registry};

/// Schema identifier stamped into every conformance report.
pub const REPORT_SCHEMA: &str = "sat-hmm/conformance/v1";

/// Tuning knobs for a [`Conformance`] tracker. Start from
/// [`ConformanceConfig::for_machine`] and override selectively.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Configured machine width `w` (words per coalesced transaction).
    pub width: u64,
    /// Configured window overhead `Λ` (latency + barrier overhead, in time
    /// units) charged once per launch.
    pub window_overhead: u64,
    /// Per-sample exponential forgetting factor on the estimator's sums
    /// (1.0 = never forget; the default keeps an effective window of ~1000
    /// launches so a re-parameterized machine is re-learned).
    pub forgetting: f64,
    /// Relative ridge term added to the normal equations' diagonal, for
    /// numerical safety on poorly conditioned streams.
    pub ridge: f64,
    /// Samples required before the fit may report `converged`.
    pub min_samples: u64,
    /// Documented convergence tolerance: fitted `w` and `Λ` are considered
    /// conforming within this relative band of the configured machine
    /// (CI gates assert it through [`FitReport::matches`]).
    pub fit_tolerance: f64,
    /// Per-cell launches over which the drift baseline `τ̄` is frozen.
    pub baseline_samples: u64,
    /// Relative slack before a slow sample contributes to the CUSUM score:
    /// `τ` must exceed `(1 + slack) · τ̄`. Absorbs host jitter.
    pub drift_slack: f64,
    /// Cap on one sample's positive CUSUM contribution, so a single
    /// scheduler hiccup cannot trip the detector alone.
    pub drift_rise_cap: f64,
    /// CUSUM score at which a [`DriftAlert`] is raised (and latched) for
    /// the cell.
    pub drift_threshold: f64,
    /// Shard-relative channel: a sharded cell alerts when its baseline
    /// `τ̄` exceeds `(1 + band) ×` the median of its sibling shards'.
    pub shard_relative_band: f64,
}

impl ConformanceConfig {
    /// Defaults for a machine with the given width and window overhead.
    pub fn for_machine(width: u64, window_overhead: u64) -> Self {
        ConformanceConfig {
            width,
            window_overhead,
            forgetting: 0.999,
            ridge: 1e-9,
            min_samples: 24,
            fit_tolerance: 0.1,
            baseline_samples: 16,
            drift_slack: 1.0,
            drift_rise_cap: 2.0,
            drift_threshold: 6.0,
            shard_relative_band: 1.0,
        }
    }
}

/// One launch's contribution to the conformance stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchSample {
    /// The (algorithm × shape-bucket) cell label, e.g. `1r1w/64x64` (see
    /// [`cell_label`]), optionally suffixed `@s<shard>` on fleet devices.
    pub cell: String,
    /// Coalesced global operations `C` (words) of the launch.
    pub coalesced_ops: u64,
    /// Stride global operations `S` (words) of the launch.
    pub stride_ops: u64,
    /// Exact UMM pipeline stages the launch recorded.
    pub global_stages: u64,
    /// Measured wall clock of the launch, in seconds.
    pub wall_seconds: f64,
}

/// A latched drift alert: the cell's measured `τ` diverged from its
/// baseline (channel `cusum`) or from its sibling shards (channel
/// `shard_relative`). At most one alert is ever raised per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlert {
    /// The offending cell.
    pub cell: String,
    /// `"cusum"` (onset drift against the cell's own baseline) or
    /// `"shard_relative"` (chronic drift against sibling shards).
    pub channel: &'static str,
    /// The detector score at alert time (CUSUM score, or the shard-relative
    /// ratio).
    pub score: f64,
    /// The reference `τ̄` in seconds per unit (own baseline, or the sibling
    /// median).
    pub baseline_tau: f64,
    /// The `τ` that tripped the detector, in seconds per unit.
    pub recent_tau: f64,
    /// `recent_tau / baseline_tau`.
    pub ratio: f64,
    /// Cell samples ingested when the alert fired.
    pub samples: u64,
}

/// The online estimator's current answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Launch samples ingested (before forgetting).
    pub samples: u64,
    /// Whether the fit is statistically usable: enough samples, a
    /// well-conditioned system, positive parameters and a small relative
    /// residual. Gates read this before comparing against the configured
    /// machine.
    pub converged: bool,
    /// Fitted machine width `w` (0 when unconverged and unidentifiable).
    pub width: f64,
    /// Fitted window overhead `Λ`, in time units.
    pub window_overhead: f64,
    /// Root-mean-square regression residual, relative to the mean model
    /// time per launch.
    pub residual_rms: f64,
}

impl FitReport {
    /// Whether the fit converged *and* lands within `tol` (relative) of the
    /// configured machine's `width` and `window_overhead`.
    pub fn matches(&self, width: u64, window_overhead: u64, tol: f64) -> bool {
        self.converged
            && (self.width - width as f64).abs() <= tol * width as f64
            && (self.window_overhead - window_overhead as f64).abs()
                <= tol * (window_overhead as f64).max(1.0)
    }
}

/// One cell's rolling state, for programmatic report consumers.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The cell label.
    pub cell: String,
    /// Samples ingested for this cell.
    pub samples: u64,
    /// Frozen baseline `τ̄` in seconds per unit (0 until the baseline
    /// window completes).
    pub baseline_tau: f64,
    /// Most recent `τ` in seconds per unit.
    pub last_tau: f64,
    /// EWMA of `τ` since the baseline completed.
    pub ewma_tau: f64,
    /// Current CUSUM score.
    pub cusum: f64,
    /// Whether a [`DriftAlert`] has latched for this cell.
    pub drifted: bool,
    /// Mean absolute counter-model residual, relative to the closed-form
    /// prediction.
    pub mean_abs_residual: f64,
}

/// The canonical (algorithm × shape-bucket) cell label: dimensions round up
/// to powers of two, so nearby shapes share a cell and its baseline.
pub fn cell_label(algorithm: &str, rows: usize, cols: usize) -> String {
    format!(
        "{algorithm}/{}x{}",
        rows.max(1).next_power_of_two(),
        cols.max(1).next_power_of_two()
    )
}

#[derive(Default)]
struct FitSums {
    samples: u64,
    /// Weighted sums for the regression `y = a·C + c` with
    /// `y = stages + Λ − S`: count, ΣC, ΣC², Σy, ΣCy, Σy².
    sn: f64,
    sc: f64,
    sc2: f64,
    sy: f64,
    scy: f64,
    syy: f64,
}

#[derive(Default)]
struct CellState {
    samples: u64,
    base_wall: f64,
    base_units: f64,
    cusum: f64,
    last_tau: f64,
    ewma_tau: f64,
    drifted: bool,
    resid_sum: f64,
}

impl CellState {
    fn baseline_complete(&self, cfg: &ConformanceConfig) -> bool {
        self.samples >= cfg.baseline_samples
    }

    fn baseline_tau(&self) -> f64 {
        if self.base_units > 0.0 {
            self.base_wall / self.base_units
        } else {
            0.0
        }
    }
}

#[derive(Default)]
struct State {
    fit: FitSums,
    wall_total: f64,
    units_total: f64,
    cells: BTreeMap<String, CellState>,
    alerts: Vec<DriftAlert>,
    /// How many of `alerts` have been drained by [`Conformance::take_new_alerts`].
    flight_cursor: usize,
}

/// Registry handles, registered once at attach time.
struct Metrics {
    samples_total: Counter,
    drift_alerts_total: Counter,
    fitted_width: Gauge,
    fitted_window_overhead: Gauge,
    fit_converged: Gauge,
    tau_ns: Gauge,
    residual_relative: Histogram,
    residual_tau_ratio: Histogram,
}

struct Inner {
    cfg: ConformanceConfig,
    metrics: Option<Metrics>,
    state: Mutex<State>,
}

/// The live conformance tracker; see the [module docs](self). Cloning is
/// cheap (one `Arc`) and all clones share one stream.
#[derive(Clone)]
pub struct Conformance {
    inner: Arc<Inner>,
}

impl fmt::Debug for Conformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock().expect("conformance lock");
        f.debug_struct("Conformance")
            .field("samples", &st.fit.samples)
            .field("cells", &st.cells.len())
            .field("alerts", &st.alerts.len())
            .finish()
    }
}

impl Conformance {
    /// A tracker with no registry attachment.
    pub fn new(cfg: ConformanceConfig) -> Self {
        Conformance {
            inner: Arc::new(Inner {
                cfg,
                metrics: None,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// A tracker that additionally maintains `<prefix>model_*` metrics in
    /// `registry`: `model_residual_relative` / `model_residual_tau_ratio`
    /// histograms, live `model_fitted_width` / `model_fitted_window_overhead`
    /// / `model_fit_converged` / `model_tau_ns` gauges, and
    /// `model_samples_total` / `model_drift_alerts_total` counters.
    pub fn with_registry(cfg: ConformanceConfig, registry: &Registry, prefix: &str) -> Self {
        let metrics = Metrics {
            samples_total: registry.counter(&format!("{prefix}model_samples_total")),
            drift_alerts_total: registry.counter(&format!("{prefix}model_drift_alerts_total")),
            fitted_width: registry.gauge(&format!("{prefix}model_fitted_width")),
            fitted_window_overhead: registry
                .gauge(&format!("{prefix}model_fitted_window_overhead")),
            fit_converged: registry.gauge(&format!("{prefix}model_fit_converged")),
            tau_ns: registry.gauge(&format!("{prefix}model_tau_ns")),
            residual_relative: registry.histogram_with(
                &format!("{prefix}model_residual_relative"),
                &BucketLayout::log(1e-4, 2.0, 20),
            ),
            residual_tau_ratio: registry.histogram_with(
                &format!("{prefix}model_residual_tau_ratio"),
                &BucketLayout::log(0.125, 2.0, 12),
            ),
        };
        Conformance {
            inner: Arc::new(Inner {
                cfg,
                metrics: Some(metrics),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &ConformanceConfig {
        &self.inner.cfg
    }

    /// Ingest one launch. This is the only hot(ish) path: one short
    /// mutex-guarded accumulation plus a handful of atomic metric updates.
    pub fn ingest(&self, sample: LaunchSample) {
        let cfg = &self.inner.cfg;
        let c = sample.coalesced_ops as f64;
        let s = sample.stride_ops as f64;
        let lam = cfg.window_overhead as f64;
        let units = sample.global_stages as f64 + lam;
        if units <= 0.0 {
            return;
        }
        let wall = if sample.wall_seconds.is_finite() {
            sample.wall_seconds.max(0.0)
        } else {
            0.0
        };
        let y = units - s;
        let pred = c / (cfg.width as f64).max(1.0) + s + lam;
        let rel = if pred > 0.0 {
            (units - pred) / pred
        } else {
            0.0
        };
        let tau = wall / units;

        let mut alert: Option<DriftAlert> = None;
        let mut tau_ratio: Option<f64> = None;
        {
            let mut st = self.inner.state.lock().expect("conformance lock");
            let f = cfg.forgetting;
            let fit = &mut st.fit;
            fit.sn = fit.sn * f + 1.0;
            fit.sc = fit.sc * f + c;
            fit.sc2 = fit.sc2 * f + c * c;
            fit.sy = fit.sy * f + y;
            fit.scy = fit.scy * f + c * y;
            fit.syy = fit.syy * f + y * y;
            fit.samples += 1;
            st.wall_total += wall;
            st.units_total += units;

            {
                let cell = st.cells.entry(sample.cell.clone()).or_default();
                cell.samples += 1;
                cell.last_tau = tau;
                cell.resid_sum += rel.abs();
                if cell.samples <= cfg.baseline_samples {
                    cell.base_wall += wall;
                    cell.base_units += units;
                    if cell.samples == cfg.baseline_samples {
                        cell.ewma_tau = cell.baseline_tau();
                    }
                } else {
                    let tau_base = cell.baseline_tau();
                    let mean_units = cell.base_units / cfg.baseline_samples as f64;
                    let weight = if mean_units > 0.0 {
                        (units / mean_units).min(1.0)
                    } else {
                        1.0
                    };
                    let ratio = if tau_base > 0.0 { tau / tau_base } else { 1.0 };
                    tau_ratio = Some(ratio);
                    cell.ewma_tau = 0.8 * cell.ewma_tau + 0.2 * tau;
                    let inc =
                        weight * (ratio - 1.0 - cfg.drift_slack).clamp(-1.0, cfg.drift_rise_cap);
                    cell.cusum = (cell.cusum + inc).max(0.0);
                    if !cell.drifted && cell.cusum >= cfg.drift_threshold {
                        cell.drifted = true;
                        alert = Some(DriftAlert {
                            cell: sample.cell.clone(),
                            channel: "cusum",
                            score: cell.cusum,
                            baseline_tau: tau_base,
                            recent_tau: tau,
                            ratio,
                            samples: cell.samples,
                        });
                    }
                }
            }

            // Shard-relative channel: once a sharded cell's baseline is
            // frozen, compare it against the median of its siblings'.
            if alert.is_none() {
                if let Some((base_name, _)) = sample.cell.rsplit_once("@s") {
                    let own = &st.cells[&sample.cell];
                    if own.baseline_complete(cfg) && !own.drifted {
                        let own_tau = own.baseline_tau();
                        let mut siblings: Vec<f64> = st
                            .cells
                            .iter()
                            .filter(|(name, state)| {
                                name.as_str() != sample.cell
                                    && state.baseline_complete(cfg)
                                    && name.rsplit_once("@s").map(|(b, _)| b) == Some(base_name)
                            })
                            .map(|(_, state)| state.baseline_tau())
                            .collect();
                        if !siblings.is_empty() {
                            siblings.sort_by(f64::total_cmp);
                            let median = siblings[siblings.len() / 2];
                            let ratio = if median > 0.0 { own_tau / median } else { 1.0 };
                            if ratio > 1.0 + cfg.shard_relative_band {
                                alert = Some(DriftAlert {
                                    cell: sample.cell.clone(),
                                    channel: "shard_relative",
                                    score: ratio,
                                    baseline_tau: median,
                                    recent_tau: own_tau,
                                    ratio,
                                    samples: own.samples,
                                });
                            }
                        }
                    }
                }
                if let Some(a) = &alert {
                    st.cells.get_mut(&a.cell).expect("cell exists").drifted = true;
                }
            }

            if let Some(a) = &alert {
                st.alerts.push(a.clone());
            }
        }

        if let Some(m) = &self.inner.metrics {
            m.samples_total.inc();
            m.residual_relative.observe(rel.abs());
            if let Some(r) = tau_ratio {
                m.residual_tau_ratio.observe(r);
            }
            if alert.is_some() {
                m.drift_alerts_total.inc();
            }
            let fit = self.fit();
            m.fitted_width.set(fit.width);
            m.fitted_window_overhead.set(fit.window_overhead);
            m.fit_converged.set(if fit.converged { 1.0 } else { 0.0 });
            m.tau_ns.set(self.tau_seconds_per_unit() * 1e9);
        }
    }

    /// Solve the normal equations for the current fit.
    pub fn fit(&self) -> FitReport {
        let cfg = &self.inner.cfg;
        let st = self.inner.state.lock().expect("conformance lock");
        let fs = &st.fit;
        let mut rep = FitReport {
            samples: fs.samples,
            converged: false,
            width: 0.0,
            window_overhead: 0.0,
            residual_rms: 0.0,
        };
        if fs.samples == 0 || fs.sn <= 0.0 {
            return rep;
        }
        let a11 = fs.sc2 + cfg.ridge * fs.sc2.max(1.0);
        let a22 = fs.sn + cfg.ridge * fs.sn.max(1.0);
        let det = a11 * a22 - fs.sc * fs.sc;
        let scale = a11 * a22;
        // Degenerate stream (e.g. every launch with identical C): width and
        // Λ are not separable; report unconverged rather than noise. The
        // ridge floors det/scale near 2·ridge on such streams, so the
        // threshold sits well above that.
        if det <= 0.0 || scale <= 0.0 || det / scale < 1e-6 {
            return rep;
        }
        let a = (a22 * fs.scy - fs.sc * fs.sy) / det;
        let c = (a11 * fs.sy - fs.sc * fs.scy) / det;
        let sse = (fs.syy - 2.0 * (a * fs.scy + c * fs.sy)
            + a * a * fs.sc2
            + 2.0 * a * c * fs.sc
            + c * c * fs.sn)
            .max(0.0);
        let mean_y = fs.sy / fs.sn;
        let rms = (sse / fs.sn).sqrt() / mean_y.abs().max(f64::MIN_POSITIVE);
        rep.residual_rms = rms;
        if a > 0.0 && a.is_finite() && c.is_finite() {
            rep.width = 1.0 / a;
            rep.window_overhead = c;
            rep.converged = fs.samples >= cfg.min_samples && c > 0.0 && rms <= 0.25;
        }
        rep
    }

    /// Measured per-word bandwidth: mean seconds per model time unit across
    /// the whole stream (0 before the first sample).
    pub fn tau_seconds_per_unit(&self) -> f64 {
        let st = self.inner.state.lock().expect("conformance lock");
        if st.units_total > 0.0 {
            st.wall_total / st.units_total
        } else {
            0.0
        }
    }

    /// Launch samples ingested so far.
    pub fn sample_count(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("conformance lock")
            .fit
            .samples
    }

    /// All latched alerts, in raise order.
    pub fn alerts(&self) -> Vec<DriftAlert> {
        self.inner
            .state
            .lock()
            .expect("conformance lock")
            .alerts
            .clone()
    }

    /// Number of latched alerts.
    pub fn alert_count(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("conformance lock")
            .alerts
            .len()
    }

    /// Drain alerts raised since the previous drain (for flight-recorder
    /// emission: each alert is reported exactly once).
    pub fn take_new_alerts(&self) -> Vec<DriftAlert> {
        let mut st = self.inner.state.lock().expect("conformance lock");
        let out = st.alerts[st.flight_cursor..].to_vec();
        st.flight_cursor = st.alerts.len();
        out
    }

    /// Per-cell rolling state, sorted by cell label.
    pub fn cells(&self) -> Vec<CellReport> {
        let cfg = &self.inner.cfg;
        let st = self.inner.state.lock().expect("conformance lock");
        st.cells
            .iter()
            .map(|(name, cell)| CellReport {
                cell: name.clone(),
                samples: cell.samples,
                baseline_tau: if cell.baseline_complete(cfg) {
                    cell.baseline_tau()
                } else {
                    0.0
                },
                last_tau: cell.last_tau,
                ewma_tau: cell.ewma_tau,
                cusum: cell.cusum,
                drifted: cell.drifted,
                mean_abs_residual: if cell.samples > 0 {
                    cell.resid_sum / cell.samples as f64
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// The full conformance report as JSON (see [`REPORT_SCHEMA`]):
    /// configured machine, fitted parameters, drift policy, per-cell
    /// residual/τ state and every latched alert.
    pub fn report_json(&self) -> String {
        let cfg = &self.inner.cfg;
        let fit = self.fit();
        let tau_ns = self.tau_seconds_per_unit() * 1e9;
        let cells = self.cells();
        let alerts = self.alerts();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":");
        chrome::escape_into(&mut out, REPORT_SCHEMA);
        out.push_str(&format!(
            ",\"machine\":{{\"width\":{},\"window_overhead\":{}}}",
            cfg.width, cfg.window_overhead
        ));
        out.push_str(&format!(
            ",\"fit\":{{\"samples\":{},\"converged\":{},\"width\":{},\
             \"window_overhead\":{},\"residual_rms\":{},\"tolerance\":{}}}",
            fit.samples,
            fit.converged,
            finite(fit.width),
            finite(fit.window_overhead),
            finite(fit.residual_rms),
            finite(cfg.fit_tolerance),
        ));
        out.push_str(&format!(",\"tau_ns\":{}", finite(tau_ns)));
        out.push_str(&format!(
            ",\"drift\":{{\"alerts\":{},\"baseline_samples\":{},\"slack\":{},\
             \"threshold\":{},\"shard_relative_band\":{}}}",
            alerts.len(),
            cfg.baseline_samples,
            finite(cfg.drift_slack),
            finite(cfg.drift_threshold),
            finite(cfg.shard_relative_band),
        ));
        out.push_str(",\"cells\":[");
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"cell\":");
            chrome::escape_into(&mut out, &c.cell);
            out.push_str(&format!(
                ",\"samples\":{},\"baseline_tau_ns\":{},\"last_tau_ns\":{},\
                 \"ewma_tau_ns\":{},\"cusum\":{},\"drifted\":{},\
                 \"mean_abs_residual\":{}}}",
                c.samples,
                finite(c.baseline_tau * 1e9),
                finite(c.last_tau * 1e9),
                finite(c.ewma_tau * 1e9),
                finite(c.cusum),
                c.drifted,
                finite(c.mean_abs_residual),
            ));
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"cell\":");
            chrome::escape_into(&mut out, &a.cell);
            out.push_str(",\"channel\":");
            chrome::escape_into(&mut out, a.channel);
            out.push_str(&format!(
                ",\"score\":{},\"baseline_tau_ns\":{},\"recent_tau_ns\":{},\
                 \"ratio\":{},\"samples\":{}}}",
                finite(a.score),
                finite(a.baseline_tau * 1e9),
                finite(a.recent_tau * 1e9),
                finite(a.ratio),
                a.samples,
            ));
        }
        out.push_str("]}");
        out
    }
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn cfg() -> ConformanceConfig {
        ConformanceConfig::for_machine(32, 40)
    }

    /// A synthetic launch whose counters satisfy the closed form exactly
    /// and whose wall clock is `tau` seconds per unit.
    fn exact_sample(cell: &str, c: u64, s: u64, tau: f64, cfg: &ConformanceConfig) -> LaunchSample {
        let stages = c / cfg.width + s;
        let units = stages + cfg.window_overhead;
        LaunchSample {
            cell: cell.to_string(),
            coalesced_ops: c,
            stride_ops: s,
            global_stages: stages,
            wall_seconds: tau * units as f64,
        }
    }

    #[test]
    fn estimator_recovers_machine_parameters_from_exact_stream() {
        let cfg = cfg();
        let t = Conformance::new(cfg.clone());
        for i in 0..200u64 {
            // Vary C and S independently so width and Λ are identifiable.
            let c = (i % 17 + 1) * cfg.width * 4;
            let s = (i % 5) * 3;
            t.ingest(exact_sample("1r1w/64x64", c, s, 2e-9, &cfg));
        }
        let fit = t.fit();
        assert!(fit.converged, "{fit:?}");
        assert!((fit.width - 32.0).abs() < 0.05, "{fit:?}");
        assert!((fit.window_overhead - 40.0).abs() < 0.5, "{fit:?}");
        assert!(fit.residual_rms < 1e-6, "{fit:?}");
        assert!(fit.matches(32, 40, 0.01), "{fit:?}");
        assert!(!fit.matches(16, 40, 0.01), "tolerance must bind");
        let tau = t.tau_seconds_per_unit();
        assert!((tau - 2e-9).abs() / 2e-9 < 1e-9, "tau = {tau}");
        assert!(t.alerts().is_empty(), "exact stream must not drift");
    }

    #[test]
    fn constant_counter_stream_is_reported_unconverged() {
        // With every launch identical, width and Λ cannot be separated;
        // the fit must say so instead of hallucinating parameters.
        let cfg = cfg();
        let t = Conformance::new(cfg.clone());
        for _ in 0..100 {
            t.ingest(exact_sample("flat/32x32", 32 * 64, 0, 2e-9, &cfg));
        }
        assert!(!t.fit().converged);
    }

    #[test]
    fn single_hiccup_does_not_alert_but_sustained_slowdown_does_once() {
        let mut cfg = cfg();
        cfg.baseline_samples = 8;
        let t = Conformance::new(cfg.clone());
        let tau = 5e-9;
        for i in 0..20u64 {
            let c = (i % 7 + 1) * cfg.width * 2;
            t.ingest(exact_sample("1r1w/64x64", c, i % 3, tau, &cfg));
        }
        // One 10× scheduler hiccup: capped contribution, no alert.
        t.ingest(exact_sample("1r1w/64x64", 32 * 6, 1, tau * 10.0, &cfg));
        assert_eq!(t.alert_count(), 0, "single hiccup must not alert");
        // Recovery drains the score.
        for i in 0..5u64 {
            t.ingest(exact_sample("1r1w/64x64", (i % 7 + 1) * 64, 0, tau, &cfg));
        }
        // Sustained 4× slowdown: alert fires, exactly once, and latches.
        for i in 0..12u64 {
            t.ingest(exact_sample(
                "1r1w/64x64",
                (i % 7 + 1) * 64,
                2,
                tau * 4.0,
                &cfg,
            ));
        }
        let alerts = t.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].cell, "1r1w/64x64");
        assert_eq!(alerts[0].channel, "cusum");
        assert!(alerts[0].ratio > 2.0, "{:?}", alerts[0]);
        // The drain-once API yields it exactly once.
        assert_eq!(t.take_new_alerts().len(), 1);
        assert!(t.take_new_alerts().is_empty());
        // The cell is marked drifted in the report.
        let cell = &t.cells()[0];
        assert!(cell.drifted);
        assert!(cell.cusum >= cfg.drift_threshold);
    }

    #[test]
    fn stationary_noise_never_alerts() {
        let mut cfg = cfg();
        cfg.baseline_samples = 8;
        let t = Conformance::new(cfg.clone());
        // Deterministic ±25% jitter around τ: inside the slack band.
        for i in 0..300u64 {
            let jitter = 1.0 + 0.25 * (((i * 2654435761) % 200) as f64 / 100.0 - 1.0);
            let c = (i % 9 + 1) * cfg.width * 2;
            t.ingest(exact_sample("1r1w/128x128", c, i % 4, 3e-9 * jitter, &cfg));
        }
        assert_eq!(t.alert_count(), 0);
    }

    #[test]
    fn chronically_slow_shard_is_caught_by_the_relative_channel() {
        let mut cfg = cfg();
        cfg.baseline_samples = 6;
        let t = Conformance::new(cfg.clone());
        // Shards 0..2 healthy; shard 3 slow from its very first launch, so
        // its own baseline can never reveal the drift.
        for i in 0..8u64 {
            let c = (i % 5 + 1) * cfg.width * 2;
            for shard in 0..4u64 {
                let tau = if shard == 3 { 12e-9 } else { 3e-9 };
                t.ingest(exact_sample(
                    &format!("1r1w/64x64@s{shard}"),
                    c,
                    i % 3,
                    tau,
                    &cfg,
                ));
            }
        }
        let alerts = t.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].cell, "1r1w/64x64@s3");
        assert_eq!(alerts[0].channel, "shard_relative");
        assert!(alerts[0].ratio > 3.0, "{:?}", alerts[0]);
    }

    #[test]
    fn report_json_parses_and_carries_the_contract_fields() {
        let cfg = cfg();
        let t = Conformance::new(cfg.clone());
        for i in 0..40u64 {
            let c = (i % 11 + 1) * cfg.width * 2;
            t.ingest(exact_sample("2r1w/64x64", c, i % 4, 2e-9, &cfg));
        }
        let text = t.report_json();
        let v = JsonValue::parse(&text).expect("report is valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(REPORT_SCHEMA)
        );
        let machine = v.get("machine").expect("machine");
        assert_eq!(machine.get("width").unwrap().as_f64(), Some(32.0));
        let fit = v.get("fit").expect("fit");
        for key in [
            "samples",
            "width",
            "window_overhead",
            "residual_rms",
            "tolerance",
        ] {
            assert!(fit.get(key).unwrap().as_f64().is_some(), "fit.{key}");
        }
        let cells = v.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 1);
        for key in [
            "samples",
            "baseline_tau_ns",
            "last_tau_ns",
            "ewma_tau_ns",
            "cusum",
            "mean_abs_residual",
        ] {
            assert!(cells[0].get(key).unwrap().as_f64().is_some(), "cell.{key}");
        }
        assert_eq!(cells[0].get("cell").unwrap().as_str(), Some("2r1w/64x64"));
        assert!(v.get("alerts").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn registry_attachment_exposes_prefixed_metrics() {
        let reg = Registry::new();
        let cfg = cfg();
        let t = Conformance::with_registry(cfg.clone(), &reg, "sat_service_");
        for i in 0..40u64 {
            let c = (i % 11 + 1) * cfg.width * 2;
            t.ingest(exact_sample("1r1w/64x64", c, i % 4, 2e-9, &cfg));
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("sat_service_model_samples_total")
                .unwrap()
                .total,
            40
        );
        assert_eq!(
            snap.counter("sat_service_model_drift_alerts_total")
                .unwrap()
                .total,
            0
        );
        let w = snap.gauge("sat_service_model_fitted_width").unwrap().value;
        assert!((w - 32.0).abs() < 0.5, "fitted width gauge = {w}");
        assert_eq!(
            snap.gauge("sat_service_model_fit_converged").unwrap().value,
            1.0
        );
        assert!(snap.gauge("sat_service_model_tau_ns").unwrap().value > 0.0);
        let h = snap
            .histogram("sat_service_model_residual_relative")
            .unwrap();
        assert_eq!(h.count, 40);
        let text = reg.expose_text();
        assert!(text.contains("# TYPE sat_service_model_residual_relative histogram"));
        assert!(text.contains("sat_service_model_fitted_window_overhead"));
    }

    #[test]
    fn cell_labels_bucket_shapes_to_powers_of_two() {
        assert_eq!(cell_label("1r1w", 64, 64), "1r1w/64x64");
        assert_eq!(cell_label("1r1w", 65, 100), "1r1w/128x128");
        assert_eq!(cell_label("hybrid", 0, 1), "hybrid/1x1");
    }
}
