//! # obs — workspace-wide observability core
//!
//! The paper's whole argument is accounting: the global memory access cost
//! `C/w + S + L·(B+1)` per algorithm (Table I) and measured wall-clock per
//! configuration (Table II). This crate gives every layer of the workspace a
//! shared vocabulary for that accounting:
//!
//! * a **counter/gauge/histogram [`Registry`]** — lock-cheap atomic cells
//!   behind typed handles, with *cumulative* and *per-launch* scopes,
//!   log-bucketed mergeable [`Histogram`]s with bucket-derived quantiles,
//!   and Prometheus-style text exposition ([`Registry::expose_text`],
//!   including the `_bucket`/`_sum`/`_count` histogram series);
//! * a **per-phase cost attribution profiler** ([`profile`]) — counter
//!   deltas and spans rendered as a `C/w + S + L·(B+1)` ledger per phase,
//!   as a table and as Perfetto counter tracks (modeled vs measured);
//! * a **structured span API** ([`Obs`]) — begin/end events with parent ids
//!   and thread/block attribution, on **two clocks**: the wall clock
//!   (`pid 1`) and the simulated HMM clock (`pid 2`), so a real execution
//!   and its `hmm-sim` replay overlay in one timeline;
//! * a **Chrome trace-event serializer** ([`Obs::trace_json`], the
//!   [`chrome`] module) whose output loads directly in Perfetto or
//!   `chrome://tracing` — including *flow events* that chain one request's
//!   admit → batch → launch → complete across processes — plus a [`json`]
//!   parser/validator used by tests and CI gates (the vendored `serde_json`
//!   shim only serializes);
//! * a **flight recorder** ([`flight`]) — a fixed-capacity lock-free ring
//!   of structured events ([`Obs::flight_event`]) that on a trigger dumps a
//!   schema-versioned post-mortem bundle (recent events, registry snapshot,
//!   last launch's trace slice, the triggering request's flow), checked by
//!   [`flight::validate`] the way traces are checked by
//!   [`chrome::validate`];
//! * a **model-conformance observatory** ([`conformance`]) — an online
//!   least-squares estimator recovering the effective machine parameters
//!   (w, Λ, per-word bandwidth) from the live launch stream, per-cell
//!   rolling residuals, and an EWMA/CUSUM drift detector that raises
//!   structured [`DriftAlert`]s when modeled-vs-measured divergence
//!   exceeds a configured band.
//!
//! ## Disabled means free
//!
//! [`Obs::disabled`] yields a handle whose inner state is `None`: every span
//! or instant call reduces to one branch on an `Option` and returns. No
//! clock is read, nothing allocates, no lock is touched. Code can therefore
//! thread an `Obs` unconditionally and let construction decide; the
//! `disabled_path_is_cheap` test holds this to a budget.
//!
//! ```
//! use obs::{ArgValue, Obs, Track};
//!
//! let obs = Obs::new();
//! let reg = obs.registry().unwrap();
//! let ops = reg.counter("gpu_coalesced_ops");
//! {
//!     let mut span = obs.span(Track::wall(0), "launch");
//!     ops.add(128);
//!     span.arg("grid", ArgValue::from(4u64));
//! }
//! let trace = obs.trace_json();
//! obs::chrome::validate(&trace).expect("valid Chrome trace JSON");
//! assert!(reg.expose_text().contains("gpu_coalesced_ops 128"));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod conformance;
pub mod flight;
mod histogram;
pub mod json;
pub mod profile;
mod registry;
mod span;

pub use conformance::{Conformance, ConformanceConfig, DriftAlert, FitReport, LaunchSample};
pub use flight::{FlightEvent, FlightKind};
pub use histogram::{BucketLayout, Histogram, HistogramSample, MAX_BUCKETS};
pub use registry::{Counter, CounterSample, Gauge, GaugeSample, Registry, Snapshot};
pub use span::{ArgValue, FlowPhase, Obs, SpanGuard, SpanId, Track};
