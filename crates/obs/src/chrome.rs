//! Chrome trace-event serialization and validation.
//!
//! The [trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! is the JSON Perfetto and `chrome://tracing` load: an object whose
//! `traceEvents` array holds one object per event, with `ph` (phase),
//! `ts` (timestamp, µs), `pid`/`tid` and `name`. We emit complete events
//! (`ph: "X"`, with `dur`), instant events (`ph: "i"`), counter samples
//! (`ph: "C"`, whose args are the series values Perfetto draws as
//! value-over-time tracks) and process-name metadata (`ph: "M"`) naming
//! the two clocks.

use std::fmt::Write as _;

use crate::json::JsonValue;
pub(crate) use crate::span::Event;
use crate::span::{ArgValue, EventKind, FlowPhase, Track};

/// Tallies returned by [`validate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// All events, including metadata.
    pub events: usize,
    /// Complete (`"X"`) events.
    pub complete: usize,
    /// Instant (`"i"`) events.
    pub instants: usize,
    /// Counter (`"C"`) events.
    pub counters: usize,
    /// Metadata (`"M"`) events.
    pub metadata: usize,
    /// Flow points (`"s"`, `"t"`, `"f"`).
    pub flows: usize,
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn num(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn write_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(u) => {
            let _ = write!(out, "{u}");
        }
        ArgValue::F64(f) => {
            let _ = write!(out, "{}", num(*f));
        }
        ArgValue::Str(s) => escape_into(out, s),
    }
}

fn write_args(out: &mut String, ev: &Event) {
    out.push_str(",\"args\":{");
    let _ = write!(out, "\"id\":{}", ev.id);
    if let Some(p) = ev.parent {
        let _ = write!(out, ",\"parent\":{p}");
    }
    for (k, v) in &ev.args {
        out.push(',');
        escape_into(out, k);
        out.push(':');
        write_arg_value(out, v);
    }
    out.push('}');
}

/// Counter events carry *only* the series values: an injected `id` key
/// would render as a bogus series in the Perfetto counter track.
fn write_counter_args(out: &mut String, ev: &Event) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, k);
        out.push(':');
        write_arg_value(out, v);
    }
    out.push('}');
}

fn write_event(out: &mut String, ev: &Event) {
    out.push_str("{\"name\":");
    escape_into(out, &ev.name);
    let _ = write!(
        out,
        ",\"pid\":{},\"tid\":{},\"ts\":{}",
        ev.track.pid,
        ev.track.tid,
        num(ev.ts)
    );
    match ev.kind {
        EventKind::Complete { dur } => {
            let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", num(dur));
            write_args(out, ev);
        }
        EventKind::Instant => {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            write_args(out, ev);
        }
        EventKind::Counter => {
            out.push_str(",\"ph\":\"C\"");
            write_counter_args(out, ev);
        }
        EventKind::Flow(phase) => {
            // For flow points `ev.id` is the flow id (the request id):
            // Perfetto binds the arrow chain by this top-level `id`, and
            // `bp:"e"` anchors each point to its *enclosing* slice rather
            // than the next slice on the thread.
            let ph = match phase {
                FlowPhase::Start => "s",
                FlowPhase::Step => "t",
                FlowPhase::End => "f",
            };
            let _ = write!(
                out,
                ",\"ph\":\"{ph}\",\"cat\":\"request\",\"id\":{},\"bp\":\"e\"",
                ev.id
            );
            write_counter_args(out, ev);
        }
    }
    out.push('}');
}

/// Serialize `events` as a bare JSON array (no metadata, no `traceEvents`
/// wrapper) — the shape [`crate::flight`] embeds inside post-mortem
/// bundles, still accepted by [`validate`].
pub(crate) fn serialize_slice(events: &[Event]) -> String {
    let mut out = String::with_capacity(2 + events.len() * 96);
    out.push('[');
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    out.push(']');
    out
}

/// Serialize `events` (plus clock-naming metadata) as a Chrome trace JSON
/// object: `{"traceEvents":[…]}`.
pub(crate) fn serialize(events: &[Event]) -> String {
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, (pid, label)) in [
        (Track::WALL_PID, "wall clock"),
        (Track::SIM_PID, "simulated HMM clock (1 unit = 1us)"),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"ts\":0,\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
    }
    for ev in events {
        out.push(',');
        write_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

/// Check that `text` is valid Chrome trace-event JSON: it parses, events
/// are found under a top-level array or a `traceEvents` key, and every
/// event carries the required `name`, `ph`, `ts`, `pid`, `tid` (complete
/// events additionally `dur`; flow points additionally `id`). Returns
/// per-phase tallies.
pub fn validate(text: &str) -> Result<TraceStats, String> {
    let v = JsonValue::parse(text)?;
    let events = match &v {
        JsonValue::Array(a) => a,
        JsonValue::Object(_) => v
            .get("traceEvents")
            .ok_or("top-level object lacks \"traceEvents\"")?
            .as_array()
            .ok_or("\"traceEvents\" is not an array")?,
        _ => return Err("top level is neither an array nor an object".to_string()),
    };
    validate_events(events)
}

/// The per-event validation core, over an already parsed event array.
/// [`crate::flight::validate`] reuses it on the trace slices a post-mortem
/// bundle embeds.
pub(crate) fn validate_events(events: &[JsonValue]) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| format!("event {i} lacks required key {key:?}"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" is not a string"))?
            .to_string();
        field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"name\" is not a string"))?;
        for key in ["ts", "pid", "tid"] {
            field(key)?
                .as_f64()
                .ok_or_else(|| format!("event {i}: {key:?} is not a number"))?;
        }
        stats.events += 1;
        match ph.as_str() {
            "X" => {
                field("dur")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: \"dur\" is not a number"))?;
                stats.complete += 1;
            }
            "i" | "I" => stats.instants += 1,
            "C" => {
                field("args")?;
                stats.counters += 1;
            }
            "M" => stats.metadata += 1,
            "s" | "t" | "f" => {
                field("id")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: flow \"id\" is not a number"))?;
                stats.flows += 1;
            }
            _ => {}
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Obs, SpanId};

    #[test]
    fn empty_trace_is_valid_and_names_both_clocks() {
        let json = serialize(&[]);
        let stats = validate(&json).unwrap();
        assert_eq!(stats.metadata, 2);
        assert_eq!(stats.complete, 0);
        assert!(json.contains("wall clock"));
        assert!(json.contains("simulated HMM clock"));
    }

    #[test]
    fn serialized_events_round_trip_through_the_validator() {
        let events = vec![
            Event {
                name: "launch \"x\"\n".into(), // escaping exercise
                track: Track::wall(0),
                id: 1,
                parent: None,
                ts: 0.5,
                kind: EventKind::Complete { dur: 10.0 },
                args: vec![
                    ("grid", ArgValue::U64(64)),
                    ("ratio", ArgValue::F64(0.25)),
                    ("algo", ArgValue::Str("1R1W".to_string())),
                ],
            },
            Event {
                name: "admit".into(),
                track: Track::wall(3),
                id: 2,
                parent: Some(1),
                ts: 1.0,
                kind: EventKind::Instant,
                args: Vec::new(),
            },
        ];
        let json = serialize(&events);
        let stats = validate(&json).unwrap();
        assert_eq!(stats.events, 4); // 2 metadata + 2 events
        assert_eq!(stats.complete, 1);
        assert_eq!(stats.instants, 1);
        let v = JsonValue::parse(&json).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs[2].get("name").unwrap().as_str(), Some("launch \"x\"\n"));
        assert_eq!(
            evs[2].get("args").unwrap().get("algo").unwrap().as_str(),
            Some("1R1W")
        );
        assert_eq!(
            evs[3].get("args").unwrap().get("parent").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn non_finite_values_degrade_to_zero_not_invalid_json() {
        let events = vec![Event {
            name: "bad".into(),
            track: Track::wall(0),
            id: 1,
            parent: None,
            ts: f64::NAN,
            kind: EventKind::Complete { dur: f64::INFINITY },
            args: vec![("x", ArgValue::F64(f64::NEG_INFINITY))],
        }];
        let json = serialize(&events);
        validate(&json).unwrap();
    }

    #[test]
    fn validator_rejects_missing_required_keys() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"other\":1}").is_err());
        let missing_ts = "[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"dur\":1}]";
        let err = validate(missing_ts).unwrap_err();
        assert!(err.contains("ts"), "{err}");
        let missing_dur = "[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0}]";
        assert!(validate(missing_dur).is_err());
        // A bare array of well-formed events is accepted.
        let ok = "[{\"name\":\"x\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":0}]";
        assert_eq!(validate(ok).unwrap().instants, 1);
    }

    #[test]
    fn flow_points_require_an_id() {
        let missing = "[{\"name\":\"request\",\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":0}]";
        let err = validate(missing).unwrap_err();
        assert!(err.contains("id"), "{err}");
        let ok = "[{\"name\":\"request\",\"ph\":\"f\",\"pid\":1,\"tid\":0,\"ts\":0,\"id\":9}]";
        assert_eq!(validate(ok).unwrap().flows, 1);
    }

    #[test]
    fn obs_output_is_schema_valid() {
        let obs = Obs::new();
        {
            let _s = obs.span(Track::wall(0), "outer");
        }
        obs.sim_span(0, "w0", 0, 9, Some(SpanId(1)), Vec::new());
        obs.instant(Track::wall(1), "mark", vec![("n", ArgValue::U64(3))]);
        let stats = validate(&obs.trace_json()).unwrap();
        assert_eq!(stats.complete, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.metadata, 2);
    }

    #[test]
    fn counter_events_carry_only_series_values() {
        let obs = Obs::new();
        obs.counter_event(
            Track::wall(0),
            "cost",
            12.0,
            &[("modeled", 5.0), ("measured", 7.5)],
        );
        let json = obs.trace_json();
        let stats = validate(&json).unwrap();
        assert_eq!(stats.counters, 1);
        let v = JsonValue::parse(&json).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        let c = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .unwrap();
        let args = c.get("args").unwrap();
        assert_eq!(args.get("modeled").unwrap().as_f64(), Some(5.0));
        assert_eq!(args.get("measured").unwrap().as_f64(), Some(7.5));
        // No injected span-bookkeeping key: it would render as a series.
        assert!(args.get("id").is_none());
    }
}
