//! Log-bucketed histograms: mergeable, atomic on the hot path.
//!
//! A [`Histogram`] is a fixed set of exponentially growing buckets plus a
//! running sum, count and max. `observe` is lock-free: one binary search
//! over the (immutable) bucket bounds and three relaxed atomic updates.
//! Snapshots ([`HistogramSample`]) carry per-bucket counts and can be
//! merged across registries or estimated for quantiles — the estimate is
//! exact to within one bucket boundary, which is what log spacing buys:
//! constant *relative* error instead of constant absolute error.
//!
//! Exposition follows the Prometheus histogram contract: cumulative
//! `_bucket{le="…"}` series ending in `le="+Inf"`, plus `_sum` and
//! `_count` (see [`crate::Registry::expose_text`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper limit on bucket count — enough for 2^64 dynamic range at growth
/// factor 2, while keeping snapshots and exposition small.
pub const MAX_BUCKETS: usize = 64;

/// The bucket layout of a histogram: a geometric series of upper bounds.
///
/// Bucket `i` counts observations `v` with `bounds[i-1] < v <= bounds[i]`
/// (the first bucket has implicit lower bound 0, values are clamped
/// non-negative). One extra overflow bucket (`le="+Inf"`) catches values
/// above the last finite bound.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketLayout {
    start: f64,
    growth: f64,
    count: usize,
}

impl BucketLayout {
    /// Log-spaced bounds `start, start·growth, start·growth², …` with
    /// `count` finite buckets.
    ///
    /// Panics unless `start > 0`, `growth > 1` and `1 <= count <= 64`.
    pub fn log(start: f64, growth: f64, count: usize) -> Self {
        assert!(
            start > 0.0 && start.is_finite(),
            "bucket start must be positive and finite, got {start}"
        );
        assert!(
            growth > 1.0 && growth.is_finite(),
            "bucket growth must be > 1, got {growth}"
        );
        assert!(
            (1..=MAX_BUCKETS).contains(&count),
            "bucket count must be in 1..={MAX_BUCKETS}, got {count}"
        );
        Self {
            start,
            growth,
            count,
        }
    }

    /// The default layout for latencies in seconds: 1 µs to ~34 s in
    /// ×2 steps (36 finite buckets), so every estimate is within a factor
    /// of two of the true value across nine decades.
    pub fn default_latency_seconds() -> Self {
        Self::log(1e-6, 2.0, 36)
    }

    /// The finite upper bounds, ascending.
    pub fn bounds(&self) -> Vec<f64> {
        (0..self.count)
            .map(|i| self.start * self.growth.powi(i as i32))
            .collect()
    }
}

impl Default for BucketLayout {
    fn default() -> Self {
        Self::default_latency_seconds()
    }
}

/// Shared histogram state. Bounds are immutable after construction; every
/// mutation is a relaxed atomic, so `observe` never blocks.
pub(crate) struct HistogramCell {
    /// Finite upper bounds, ascending. `buckets.len() == bounds.len() + 1`;
    /// the final bucket is the `+Inf` overflow.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Per-bucket OpenMetrics exemplar: the most recent request id (+1, so
    /// 0 means "none yet") and observed value landing in the bucket.
    /// Most-recent-wins; a racing pair may mix one observation's id with
    /// another's value *from the same bucket*, which still names a real
    /// traceable request whose latency fell in that bucket.
    exemplars: Vec<ExemplarCell>,
    count: AtomicU64,
    /// Sum of observations, as `f64` bits updated by CAS loop.
    sum_bits: AtomicU64,
    /// Max observation, as `f64` bits. Non-negative IEEE-754 doubles order
    /// the same as their bit patterns, so `fetch_max` on the bits works.
    max_bits: AtomicU64,
}

#[derive(Default)]
struct ExemplarCell {
    id_plus_1: AtomicU64,
    value_bits: AtomicU64,
}

impl HistogramCell {
    pub(crate) fn new(layout: &BucketLayout) -> Self {
        let bounds = layout.bounds();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..bounds.len() + 1)
            .map(|_| ExemplarCell::default())
            .collect();
        Self {
            bounds,
            buckets,
            exemplars,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    pub(crate) fn same_layout(&self, layout: &BucketLayout) -> bool {
        self.bounds == layout.bounds()
    }

    fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let v = v.max(0.0);
        // First bound >= v, i.e. the tightest `le` bucket; values above the
        // last finite bound land in the +Inf overflow bucket.
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    fn observe_with_exemplar(&self, v: f64, request: u64) {
        if v.is_nan() {
            return;
        }
        self.observe(v);
        let idx = self.bounds.partition_point(|&b| b < v.max(0.0));
        let cell = &self.exemplars[idx];
        // Value first, id last with release so a reader that acquires the
        // id sees a value recorded no earlier than that id's observation.
        cell.value_bits
            .store(v.max(0.0).to_bits(), Ordering::Relaxed);
        cell.id_plus_1.store(request + 1, Ordering::Release);
    }

    pub(crate) fn sample(&self, name: &str) -> HistogramSample {
        HistogramSample {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            exemplars: self
                .exemplars
                .iter()
                .map(|c| {
                    let id = c.id_plus_1.load(Ordering::Acquire);
                    if id == 0 {
                        None
                    } else {
                        Some((id - 1, f64::from_bits(c.value_bits.load(Ordering::Relaxed))))
                    }
                })
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A histogram handle. Cheap to clone; `observe` is lock-free.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one observation. Negative values clamp to 0; NaN is dropped.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.cell.observe(v);
    }

    /// Record a duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Record one observation and stamp the landing bucket's OpenMetrics
    /// exemplar with `request` (most recent wins), so a scraped `_bucket`
    /// line links back to a traceable request id.
    #[inline]
    pub fn observe_with_exemplar(&self, v: f64, request: u64) {
        self.cell.observe_with_exemplar(v, request);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum_bits.load(Ordering::Relaxed))
    }
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric name, possibly with a `{label="value"}` suffix.
    pub name: String,
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts.len() == bounds.len()+1`,
    /// the last entry being the `+Inf` overflow bucket.
    pub counts: Vec<u64>,
    /// Per-bucket exemplar: the most recent `(request_id, observed_value)`
    /// recorded via [`Histogram::observe_with_exemplar`], `None` for
    /// buckets that never saw an exemplar-stamped observation. Parallel to
    /// [`Self::counts`].
    pub exemplars: Vec<Option<(u64, f64)>>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSample {
    /// Cumulative `(upper_bound, count_le)` pairs, ending with the `+Inf`
    /// bucket (`f64::INFINITY`) whose count equals [`Self::count`]. This is
    /// the Prometheus `_bucket` series.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            let le = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((le, cum));
        }
        out
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0 <= q <= 1`) from bucket counts by
    /// linear interpolation within the target bucket. The estimate lies in
    /// the same bucket as the true sample quantile, so the error is bounded
    /// by one bucket width (a constant *ratio* for log-spaced layouts).
    ///
    /// Returns 0 when empty. Quantiles landing in the `+Inf` overflow
    /// bucket report the max observation.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank target, 1-based: the smallest rank covering q.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                cum += c;
                continue;
            }
            if cum + c >= rank {
                if i >= self.bounds.len() {
                    // Overflow bucket: no finite upper bound; the max is the
                    // tightest statement we can make.
                    return self.max;
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let into = (rank - cum) as f64 / c as f64;
                return lo + (hi - lo) * into;
            }
            cum += c;
        }
        self.max
    }

    /// Fraction of observations `<= threshold`, rounded **up** to the next
    /// bucket boundary (conservative: may overcount, never undercounts).
    /// Used for SLO attainment estimates. A zero-count sample has no
    /// observations at or below any threshold, so it returns 0 (not NaN);
    /// callers wanting vacuous-attainment semantics must special-case
    /// emptiness themselves (see the service layer's burn stats).
    pub fn fraction_le(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = self.bounds.partition_point(|&b| b < threshold);
        let le: u64 = self.counts.iter().take(idx + 1).sum();
        le as f64 / self.count as f64
    }

    /// Merge another sample into this one (sums per-bucket counts, totals
    /// and takes the max). Panics if the bucket layouts differ — merging is
    /// only meaningful for identical bounds.
    pub fn merge(&mut self, other: &HistogramSample) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.exemplars.iter_mut().zip(&other.exemplars) {
            // Most-recent-wins is unknowable across samples; prefer the
            // merged-in side when it has one, else keep ours.
            if b.is_some() {
                *a = *b;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(layout: BucketLayout) -> (Histogram, String) {
        (
            Histogram {
                cell: Arc::new(HistogramCell::new(&layout)),
            },
            "h".to_string(),
        )
    }

    #[test]
    fn bounds_are_geometric() {
        let b = BucketLayout::log(1.0, 2.0, 4).bounds();
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn observe_buckets_by_le() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 3)); // bounds 1,2,4
        for v in [0.5, 1.0, 1.5, 4.0, 100.0] {
            h.observe(v);
        }
        let s = h.cell.sample(&name);
        // 0.5,1.0 -> le=1; 1.5 -> le=2; 4.0 -> le=4; 100.0 -> +Inf.
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 107.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.cumulative().last().unwrap(), &(f64::INFINITY, 5));
    }

    #[test]
    fn negative_clamps_nan_drops() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 3));
        h.observe(-5.0);
        h.observe(f64::NAN);
        let s = h.cell.sample(&name);
        assert_eq!(s.count, 1);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 4)); // 1,2,4,8
        for _ in 0..100 {
            h.observe(3.0); // all in (2,4]
        }
        let s = h.cell.sample(&name);
        let p50 = s.quantile(0.5);
        assert!(p50 > 2.0 && p50 <= 4.0, "p50={p50} outside (2,4]");
        assert_eq!(s.quantile(0.0), s.quantile(1.0 / 100.0));
    }

    #[test]
    fn quantile_overflow_reports_max() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 2)); // 1,2
        h.observe(50.0);
        h.observe(60.0);
        let s = h.cell.sample(&name);
        assert_eq!(s.quantile(0.99), 60.0);
    }

    #[test]
    fn merge_sums_counts_and_rejects_mismatch() {
        let (a, name) = hist(BucketLayout::log(1.0, 2.0, 3));
        let (b, _) = hist(BucketLayout::log(1.0, 2.0, 3));
        a.observe(1.0);
        b.observe(3.0);
        b.observe(100.0);
        let mut sa = a.cell.sample(&name);
        let sb = b.cell.sample(&name);
        sa.merge(&sb);
        assert_eq!(sa.count, 3);
        assert_eq!(sa.max, 100.0);
        assert_eq!(sa.sum, 104.0);
        let (c, _) = hist(BucketLayout::log(1.0, 3.0, 3));
        let sc = c.cell.sample(&name);
        let err = std::panic::catch_unwind(move || {
            let mut sa = sa;
            sa.merge(&sc);
        });
        assert!(err.is_err());
    }

    #[test]
    fn exemplars_stamp_the_landing_bucket() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 3)); // bounds 1,2,4
        h.observe(0.5); // plain observe leaves no exemplar
        h.observe_with_exemplar(1.5, 41);
        h.observe_with_exemplar(1.7, 42); // same bucket: most recent wins
        h.observe_with_exemplar(100.0, 7); // +Inf overflow bucket
        let s = h.cell.sample(&name);
        assert_eq!(s.exemplars.len(), s.counts.len());
        assert_eq!(s.exemplars[0], None);
        assert_eq!(s.exemplars[1], Some((42, 1.7)));
        assert_eq!(s.exemplars[3], Some((7, 100.0)));
        // Merge prefers the merged-in exemplar when present.
        let (other, _) = hist(BucketLayout::log(1.0, 2.0, 3));
        other.observe_with_exemplar(1.1, 99);
        let mut merged = s.clone();
        merged.merge(&other.cell.sample(&name));
        assert_eq!(merged.exemplars[1], Some((99, 1.1)));
        assert_eq!(merged.exemplars[3], Some((7, 100.0)));
    }

    #[test]
    fn fraction_le_is_conservative() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 3)); // 1,2,4
        for v in [0.5, 1.5, 3.0, 9.0] {
            h.observe(v);
        }
        let s = h.cell.sample(&name);
        // Threshold 1.6 rounds up to bucket le=2: counts 0.5,1.5 => 2/4.
        assert_eq!(s.fraction_le(1.6), 0.5);
        // Threshold above all finite bounds counts everything.
        assert_eq!(s.fraction_le(100.0), 1.0);
    }

    #[test]
    fn fraction_le_on_zero_count_is_zero_not_nan() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 3));
        let s = h.cell.sample(&name);
        for threshold in [0.0, 1.0, f64::INFINITY] {
            let f = s.fraction_le(threshold);
            assert_eq!(f, 0.0, "empty fraction_le({threshold}) = {f}");
            assert!(!f.is_nan());
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let (h, name) = hist(BucketLayout::log(1.0, 2.0, 3));
        h.observe_with_exemplar(1.5, 11);
        h.observe(3.0);
        let before = h.cell.sample(&name);
        let (empty, _) = hist(BucketLayout::log(1.0, 2.0, 3));
        let mut merged = before.clone();
        merged.merge(&empty.cell.sample(&name));
        assert_eq!(merged.counts, before.counts);
        assert_eq!(merged.count, before.count);
        assert_eq!(merged.sum, before.sum);
        assert_eq!(merged.max, before.max);
        assert_eq!(merged.exemplars, before.exemplars);
        assert_eq!(merged.quantile(0.5), before.quantile(0.5));
        // And merging *into* an empty one reproduces the populated side.
        let mut other_way = empty.cell.sample(&name);
        other_way.merge(&before);
        assert_eq!(other_way.counts, before.counts);
        assert_eq!(other_way.count, before.count);
        assert_eq!(other_way.sum, before.sum);
        assert_eq!(other_way.exemplars, before.exemplars);
    }

    #[test]
    fn single_bucket_layout_keeps_its_invariants() {
        // The smallest legal layout: one finite bound plus the overflow
        // bucket.
        let (h, name) = hist(BucketLayout::log(2.0, 2.0, 1));
        let empty = h.cell.sample(&name);
        assert_eq!(empty.bounds, vec![2.0]);
        assert_eq!(empty.fraction_le(2.0), 0.0, "empty single-bucket");
        assert_eq!(empty.quantile(0.5), 0.0);
        h.observe(1.0); // in-bucket
        h.observe(100.0); // overflow
        let s = h.cell.sample(&name);
        assert_eq!(s.counts, vec![1, 1]);
        assert_eq!(s.fraction_le(2.0), 0.5);
        assert_eq!(s.fraction_le(1000.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0, "overflow quantile is the max");
        assert_eq!(s.cumulative().last().unwrap(), &(f64::INFINITY, 2));
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let (h, name) = hist(BucketLayout::default_latency_seconds());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(1e-6 * (t * 1000 + i) as f64);
                    }
                });
            }
        });
        let s = h.cell.sample(&name);
        assert_eq!(s.count, 4000);
        assert_eq!(s.counts.iter().sum::<u64>(), 4000);
        let exact_sum: f64 = (0..4000).map(|i| 1e-6 * i as f64).sum();
        assert!((s.sum - exact_sum).abs() < 1e-9, "sum drifted: {}", s.sum);
    }
}
