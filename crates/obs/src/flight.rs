//! The black-box flight recorder and post-mortem bundles.
//!
//! A [`FlightRecorder`] is a fixed-capacity ring of small structured
//! events — admissions, rejections, batch formation, launch begin/end,
//! injected faults, breaker transitions, verification failures, handoff
//! stalls, SLO burn — recorded from every layer through
//! [`crate::Obs::flight_event`]. Recording is lock-free and allocation-free
//! (one atomic ticket plus six atomic word stores), so it is safe on hot
//! paths and inside panic handling; once the ring is full, new events
//! overwrite the oldest.
//!
//! On a trigger (breaker open, verification failure, a panic via
//! [`install_panic_hook`], or an SLO-burn threshold) [`dump`] writes a
//! schema-versioned post-mortem bundle: the surviving ring events, a metric
//! registry snapshot, the last launch's trace slice and the triggering
//! request's flow — everything needed to reconstruct "what was the system
//! doing just before it went wrong" without a live debugger. [`validate`]
//! checks a bundle structurally the way [`crate::chrome::validate`] checks
//! a trace.
//!
//! ## Ring without locks, without `unsafe`
//!
//! Each slot is seven atomic words: a validity tag plus six payload words.
//! A writer claims a ticket (`head.fetch_add`), clears the slot's tag,
//! writes the payload, then publishes `ticket + 1` as the tag with release
//! ordering. A reader knows which ticket *should* occupy each slot (the
//! ring is a pure function of `head`), reads the tag before and after the
//! payload, and keeps the slot only when both reads equal the expected
//! tag — a per-slot seqlock where the sequence number doubles as the lap
//! count, so a slot mid-overwrite or from a stale lap is simply skipped
//! rather than returned torn.

use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::chrome;
use crate::json::JsonValue;
use crate::span::{ArgValue, Event, EventKind, Obs};

/// Schema identifier stamped into (and required from) every bundle.
/// v2 added the fleet kinds `device_lost` and `shard_failover`; v3 added
/// `drift_alert` (model-conformance drift, see [`crate::conformance`]).
pub const SCHEMA: &str = "sat-hmm/flight/v3";

/// Default ring capacity: enough for the last few hundred requests' worth
/// of lifecycle events while keeping the recorder under 64 KiB.
pub const DEFAULT_CAPACITY: usize = 1024;

/// What a flight-recorder event records. The `a`/`b` payload words are
/// kind-specific (a launch index, a breaker-state code, a stage count…) and
/// are carried into the bundle verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum FlightKind {
    /// A request was admitted (`request` = its id).
    Admit = 1,
    /// A request was rejected (`a` = reason code, see the service layer).
    Reject = 2,
    /// A batch was formed (`request` = first request id, `a` = width).
    BatchFormed = 3,
    /// A device launch began (`a` = launch index, `b` = grid).
    LaunchBegin = 4,
    /// A device launch ended (`a` = launch index, `b` = 1 if it failed).
    LaunchEnd = 5,
    /// A fault was injected (`a` = launch index, `b` = fault class code).
    FaultInjected = 6,
    /// The circuit breaker changed state (`a` = new-state code).
    BreakerTransition = 7,
    /// A result failed verification (`request` = first affected id).
    VerifyFailure = 8,
    /// A persistent-block handoff stalled into the fallback path
    /// (`a` = stage, `b` = block).
    HandoffStall = 9,
    /// SLO error-budget burn crossed the configured threshold
    /// (`a` = burn ratio in parts-per-million).
    SloBurn = 10,
    /// A fleet shard's device was declared lost — its breaker opened and it
    /// stopped taking band work (`a` = shard index, `b` = device fault
    /// epoch at the time of loss).
    DeviceLost = 11,
    /// Band work owned by a failed shard was resharded onto survivors
    /// (`request` = first affected request id, `a` = failed shard index,
    /// `b` = number of bands moved).
    ShardFailover = 12,
    /// The model-conformance observatory latched a drift alert
    /// (`a` = measured/baseline τ ratio in parts-per-million, `b` = cell
    /// samples at alert time; the offending cell's label is in
    /// `/debug/conformance`).
    DriftAlert = 13,
}

impl FlightKind {
    /// Stable lower-snake name, used in bundles and `/debug/flight` JSON.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Admit => "admit",
            FlightKind::Reject => "reject",
            FlightKind::BatchFormed => "batch_formed",
            FlightKind::LaunchBegin => "launch_begin",
            FlightKind::LaunchEnd => "launch_end",
            FlightKind::FaultInjected => "fault_injected",
            FlightKind::BreakerTransition => "breaker_transition",
            FlightKind::VerifyFailure => "verify_failure",
            FlightKind::HandoffStall => "handoff_stall",
            FlightKind::SloBurn => "slo_burn",
            FlightKind::DeviceLost => "device_lost",
            FlightKind::ShardFailover => "shard_failover",
            FlightKind::DriftAlert => "drift_alert",
        }
    }

    fn from_code(code: u64) -> Option<FlightKind> {
        Some(match code {
            1 => FlightKind::Admit,
            2 => FlightKind::Reject,
            3 => FlightKind::BatchFormed,
            4 => FlightKind::LaunchBegin,
            5 => FlightKind::LaunchEnd,
            6 => FlightKind::FaultInjected,
            7 => FlightKind::BreakerTransition,
            8 => FlightKind::VerifyFailure,
            9 => FlightKind::HandoffStall,
            10 => FlightKind::SloBurn,
            11 => FlightKind::DeviceLost,
            12 => FlightKind::ShardFailover,
            13 => FlightKind::DriftAlert,
            _ => return None,
        })
    }

    fn known_names() -> &'static [&'static str] {
        &[
            "admit",
            "reject",
            "batch_formed",
            "launch_begin",
            "launch_end",
            "fault_injected",
            "breaker_transition",
            "verify_failure",
            "handoff_stall",
            "slo_burn",
            "device_lost",
            "shard_failover",
            "drift_alert",
        ]
    }
}

/// One event read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Global sequence number (the writer's ticket) — strictly increasing
    /// across the whole recorder lifetime, so gaps reveal overwritten
    /// history.
    pub seq: u64,
    /// Wall-clock microseconds since the owning [`Obs`] was created.
    pub ts_us: f64,
    /// What happened.
    pub kind: FlightKind,
    /// The request id this event belongs to (0 when not request-scoped).
    pub request: u64,
    /// Kind-specific payload word.
    pub a: u64,
    /// Kind-specific payload word.
    pub b: u64,
}

/// A slot: validity tag + payload words. The tag holds `ticket + 1` when
/// the slot's contents are complete (0 = empty or mid-write).
struct Slot {
    tag: AtomicU64,
    /// `[ts_us bits, kind code, request, a, b]`.
    payload: [AtomicU64; 5],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            tag: AtomicU64::new(0),
            payload: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// The fixed-capacity lock-free ring. Owned by an enabled [`Obs`]; not
/// exposed directly — record through [`Obs::flight_event`], read through
/// [`Obs::flight_recent`].
pub(crate) struct FlightRecorder {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    pub(crate) fn record(&self, ts_us: f64, kind: FlightKind, request: u64, a: u64, b: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Clear the tag *before* touching the payload. The acquire half of
        // the swap keeps the payload stores below from being hoisted above
        // the invalidation, so a reader can never pair fresh payload with
        // the previous lap's valid tag.
        slot.tag.swap(0, Ordering::AcqRel);
        slot.payload[0].store(ts_us.to_bits(), Ordering::Relaxed);
        slot.payload[1].store(kind as u64, Ordering::Relaxed);
        slot.payload[2].store(request, Ordering::Relaxed);
        slot.payload[3].store(a, Ordering::Relaxed);
        slot.payload[4].store(b, Ordering::Relaxed);
        // Publish: the release store orders every payload store before the
        // tag becomes visible. `+ 1` keeps ticket 0 distinguishable from
        // the empty tag.
        slot.tag.store(ticket + 1, Ordering::Release);
    }

    /// Snapshot the surviving events, oldest first. Slots being overwritten
    /// while we read are skipped (their tag no longer matches the expected
    /// ticket), so the result is always a set of *complete* events.
    pub(crate) fn recent(&self) -> Vec<FlightEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket % cap) as usize];
            if slot.tag.load(Ordering::Acquire) != ticket + 1 {
                continue;
            }
            let ts = f64::from_bits(slot.payload[0].load(Ordering::Relaxed));
            let kind_code = slot.payload[1].load(Ordering::Relaxed);
            let request = slot.payload[2].load(Ordering::Relaxed);
            let a = slot.payload[3].load(Ordering::Relaxed);
            let b = slot.payload[4].load(Ordering::Relaxed);
            // Seqlock re-check: the acquire fence keeps the payload loads
            // above from sinking below the second tag read. An unchanged
            // tag proves no writer touched the slot in between.
            fence(Ordering::Acquire);
            if slot.tag.load(Ordering::Relaxed) != ticket + 1 {
                continue;
            }
            let Some(kind) = FlightKind::from_code(kind_code) else {
                continue;
            };
            out.push(FlightEvent {
                seq: ticket,
                ts_us: ts,
                kind,
                request,
                a,
                b,
            });
        }
        out
    }
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Render flight events as a JSON array (the `/debug/flight` endpoint body
/// and the bundle's `events` field).
pub fn events_json(events: &[FlightEvent]) -> String {
    let mut out = String::with_capacity(2 + events.len() * 96);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_us\":{},\"kind\":\"{}\",\"request\":{},\"a\":{},\"b\":{}}}",
            e.seq,
            finite(e.ts_us),
            e.kind.name(),
            e.request,
            e.a,
            e.b
        ));
    }
    out.push(']');
    out
}

/// Why a bundle was dumped.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Machine-readable reason: `breaker_open`, `verify_failure`, `panic`
    /// or `slo_burn`.
    pub reason: String,
    /// The triggering request's id (0 when the trigger is not
    /// request-scoped, e.g. a panic).
    pub request: u64,
    /// Free-form human detail.
    pub detail: String,
}

fn registry_json(obs: &Obs) -> String {
    let mut out = String::from("{\"counters\":[");
    if let Some(reg) = obs.registry() {
        let snap = reg.snapshot();
        for (i, c) in snap.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            chrome::escape_into(&mut out, &c.name);
            out.push_str(&format!(",\"total\":{}}}", c.total));
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in snap.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            chrome::escape_into(&mut out, &g.name);
            out.push_str(&format!(",\"value\":{}}}", finite(g.value)));
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in snap.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            chrome::escape_into(&mut out, &h.name);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"max\":{}}}",
                h.count,
                finite(h.sum),
                finite(h.max)
            ));
        }
        out.push_str("]}");
    } else {
        out.push_str("],\"gauges\":[],\"histograms\":[]}");
    }
    out
}

/// The last `launch` span plus everything parented (transitively) under
/// it. Flow points are excluded up front: their `id` is a *request* id
/// from a different namespace than span ids, so letting them into the
/// ancestor fixpoint could alias a span.
fn last_launch_slice(events: &[Event]) -> Vec<Event> {
    let spans: Vec<&Event> = events
        .iter()
        .filter(|e| !matches!(e.kind, EventKind::Flow(_)))
        .collect();
    let launch = spans
        .iter()
        .rev()
        .find(|e| e.name == "launch" && matches!(e.kind, EventKind::Complete { .. }));
    let Some(launch) = launch else {
        return Vec::new();
    };
    let mut keep: std::collections::HashSet<u64> = std::collections::HashSet::new();
    keep.insert(launch.id);
    // Parent links always point at earlier-allocated ids but events may be
    // recorded out of order (guards drop after their children); iterate to
    // a fixpoint over the whole list.
    loop {
        let before = keep.len();
        for e in &spans {
            if let Some(p) = e.parent {
                if keep.contains(&p) {
                    keep.insert(e.id);
                }
            }
        }
        if keep.len() == before {
            break;
        }
    }
    spans
        .into_iter()
        .filter(|e| keep.contains(&e.id))
        .cloned()
        .collect()
}

/// Every trace event belonging to `request`: its flow points (flow id =
/// request id) and any span/instant carrying a `request` arg equal to it.
fn request_flow_slice(events: &[Event], request: u64) -> Vec<Event> {
    if request == 0 {
        return Vec::new();
    }
    events
        .iter()
        .filter(|e| match e.kind {
            EventKind::Flow(_) => e.id == request,
            _ => e
                .args
                .iter()
                .any(|(k, v)| *k == "request" && *v == ArgValue::U64(request)),
        })
        .cloned()
        .collect()
}

/// Compose a post-mortem bundle for `obs` as a JSON string (see [`SCHEMA`]
/// for the layout contract enforced by [`validate`]).
pub fn bundle(obs: &Obs, trigger: &Trigger) -> String {
    let events = obs.flight_recent();
    let (trace_slice, request_flow) = obs
        .with_events(|evs| {
            (
                chrome::serialize_slice(&last_launch_slice(evs)),
                chrome::serialize_slice(&request_flow_slice(evs, trigger.request)),
            )
        })
        .unwrap_or_else(|| ("[]".to_string(), "[]".to_string()));
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":");
    chrome::escape_into(&mut out, SCHEMA);
    out.push_str(",\"trigger\":{\"reason\":");
    chrome::escape_into(&mut out, &trigger.reason);
    out.push_str(&format!(",\"request\":{},\"detail\":", trigger.request));
    chrome::escape_into(&mut out, &trigger.detail);
    out.push_str("},\"events\":");
    out.push_str(&events_json(&events));
    out.push_str(",\"registry\":");
    out.push_str(&registry_json(obs));
    out.push_str(",\"trace_slice\":");
    out.push_str(&trace_slice);
    out.push_str(",\"request_flow\":");
    out.push_str(&request_flow);
    out.push('}');
    out
}

/// Process-wide dump counter: keeps bundle filenames unique without a
/// clock (and readable in creation order).
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Compose and write a post-mortem bundle to
/// `dir/postmortem-<prefix>-<seq>-<reason>.json`, creating `dir` if
/// needed. Returns the written path.
pub fn dump(obs: &Obs, dir: &Path, prefix: &str, trigger: &Trigger) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "postmortem-{}-{seq:03}-{}.json",
        sanitize(prefix),
        sanitize(&trigger.reason)
    ));
    std::fs::write(&path, bundle(obs, trigger))?;
    Ok(path)
}

/// Install a panic hook that dumps a post-mortem bundle (reason `panic`)
/// before delegating to the previous hook. The handle is cloned into the
/// hook; the hook stays installed for the life of the process (or until
/// `std::panic::take_hook`).
pub fn install_panic_hook(obs: Obs, dir: PathBuf, prefix: String) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let trigger = Trigger {
            reason: "panic".to_string(),
            request: 0,
            detail: info.to_string(),
        };
        let _ = dump(&obs, &dir, &prefix, &trigger);
        previous(info);
    }));
}

/// Tallies returned by [`validate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Flight-recorder events in the bundle.
    pub events: usize,
    /// Trace events in the last-launch slice.
    pub trace_slice: usize,
    /// Trace events in the triggering request's flow.
    pub request_flow: usize,
}

fn req_num(v: &JsonValue, ctx: &str, key: &str) -> Result<f64, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx} lacks required key {key:?}"))?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: {key:?} is not a number"))
}

fn req_str<'a>(v: &'a JsonValue, ctx: &str, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx} lacks required key {key:?}"))?
        .as_str()
        .ok_or_else(|| format!("{ctx}: {key:?} is not a string"))
}

fn req_array<'a>(v: &'a JsonValue, ctx: &str, key: &str) -> Result<&'a [JsonValue], String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx} lacks required key {key:?}"))?
        .as_array()
        .ok_or_else(|| format!("{ctx}: {key:?} is not an array"))
}

/// Check that `text` is a well-formed post-mortem bundle: correct schema
/// tag, a trigger with reason/request/detail, structurally sound flight
/// events with known kinds and non-decreasing sequence numbers, a registry
/// snapshot, and embedded trace slices that pass the Chrome trace-event
/// checks. A request-scoped trigger must come with a non-empty
/// `request_flow` — the bundle's whole point is linking the trigger to its
/// request's event chain.
pub fn validate(text: &str) -> Result<FlightStats, String> {
    let v = JsonValue::parse(text)?;
    let schema = req_str(&v, "bundle", "schema")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?} is not {SCHEMA:?}"));
    }
    let trigger = v.get("trigger").ok_or("bundle lacks \"trigger\"")?;
    req_str(trigger, "trigger", "reason")?;
    req_str(trigger, "trigger", "detail")?;
    let trig_request = req_num(trigger, "trigger", "request")?;

    let events = req_array(&v, "bundle", "events")?;
    let mut last_seq = -1.0f64;
    for (i, e) in events.iter().enumerate() {
        let ctx = format!("event {i}");
        let seq = req_num(e, &ctx, "seq")?;
        if seq <= last_seq {
            return Err(format!("event {i}: seq {seq} not increasing"));
        }
        last_seq = seq;
        req_num(e, &ctx, "ts_us")?;
        for key in ["request", "a", "b"] {
            req_num(e, &ctx, key)?;
        }
        let kind = req_str(e, &ctx, "kind")?;
        if !FlightKind::known_names().contains(&kind) {
            return Err(format!("event {i}: unknown kind {kind:?}"));
        }
    }

    let registry = v.get("registry").ok_or("bundle lacks \"registry\"")?;
    for key in ["counters", "gauges", "histograms"] {
        req_array(registry, "registry", key)?;
    }

    let trace_slice = req_array(&v, "bundle", "trace_slice")?;
    let slice_stats =
        chrome::validate_events(trace_slice).map_err(|e| format!("trace_slice invalid: {e}"))?;
    let request_flow = req_array(&v, "bundle", "request_flow")?;
    let flow_stats =
        chrome::validate_events(request_flow).map_err(|e| format!("request_flow invalid: {e}"))?;
    if trig_request > 0.0 && request_flow.is_empty() {
        return Err(format!(
            "trigger names request {trig_request} but request_flow is empty"
        ));
    }
    Ok(FlightStats {
        events: events.len(),
        trace_slice: slice_stats.events,
        request_flow: flow_stats.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{FlowPhase, Track};

    #[test]
    fn ring_survives_wrap_and_keeps_order() {
        let r = FlightRecorder::new(8);
        for i in 0..20u64 {
            r.record(i as f64, FlightKind::Admit, i, i * 2, i * 3);
        }
        let events = r.recent();
        assert_eq!(events.len(), 8, "exactly one ring of survivors");
        // Oldest overwritten: the survivors are tickets 12..20 in order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        for e in &events {
            assert_eq!(e.request, e.seq);
            assert_eq!(e.a, e.seq * 2);
            assert_eq!(e.b, e.seq * 3);
        }
    }

    #[test]
    fn concurrent_writers_never_tear() {
        // Each write's payload is a function of one value; any torn read
        // mixes two writes and breaks the relation. A small ring forces
        // constant wrapping.
        let r = FlightRecorder::new(16);
        let stop_flag = AtomicU64::new(0);
        std::thread::scope(|s| {
            let reader = &r;
            let stop = &stop_flag;
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..5000u64 {
                        let v = t * 5000 + i;
                        r.record(v as f64, FlightKind::LaunchEnd, v, v ^ 0xdead, !v);
                    }
                });
            }
            s.spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    for e in reader.recent() {
                        assert_eq!(e.a, e.request ^ 0xdead, "torn slot: {e:?}");
                        assert_eq!(e.b, !e.request, "torn slot: {e:?}");
                        assert_eq!(e.ts_us, e.request as f64, "torn slot: {e:?}");
                    }
                }
            });
            // Let the reader overlap the writers for a while, then stop it
            // (the scope joins everything on exit).
            std::thread::sleep(std::time::Duration::from_millis(20));
            stop.store(1, Ordering::Relaxed);
        });
        let final_events = r.recent();
        assert_eq!(final_events.len(), 16);
        for e in &final_events {
            assert_eq!(e.a, e.request ^ 0xdead);
        }
    }

    #[test]
    fn bundle_round_trips_through_validate() {
        let obs = Obs::new();
        let reg = obs.registry().unwrap();
        reg.counter("gpu_launches").add(3);
        reg.gauge("queue_depth").set(2.0);
        // A launch span with a child block span, and request-scoped events.
        let t0 = std::time::Instant::now();
        let launch = obs.wall_span_at(
            Track::wall(0),
            "launch",
            t0,
            t0 + std::time::Duration::from_micros(50),
            None,
            vec![("launch", 0u64.into())],
        );
        obs.wall_span_at(
            Track::wall(1),
            "block",
            t0,
            t0 + std::time::Duration::from_micros(10),
            launch,
            Vec::new(),
        );
        obs.instant(Track::wall(2), "admit", vec![("request", ArgValue::U64(7))]);
        obs.flow_at(Track::wall(2), "request", FlowPhase::Start, 7, 1.0);
        obs.flight_event(FlightKind::Admit, 7, 0, 0);
        obs.flight_event(FlightKind::BreakerTransition, 7, 1, 0);

        let trigger = Trigger {
            reason: "breaker_open".to_string(),
            request: 7,
            detail: "3 consecutive launch failures".to_string(),
        };
        let text = bundle(&obs, &trigger);
        let stats = validate(&text).unwrap_or_else(|e| panic!("invalid bundle: {e}\n{text}"));
        assert_eq!(stats.events, 2);
        assert_eq!(stats.trace_slice, 2, "launch + child block");
        assert_eq!(stats.request_flow, 2, "admit instant + flow point");
    }

    #[test]
    fn fleet_kinds_round_trip_through_bundle() {
        // The v2/v3 kinds must survive record → bundle → validate with
        // their payload words intact, and every enum code must invert
        // through from_code/name.
        for code in 1..=13u64 {
            let kind = FlightKind::from_code(code).expect("codes 1..=13 are assigned");
            assert_eq!(kind as u64, code);
            assert!(FlightKind::known_names().contains(&kind.name()));
        }
        assert_eq!(FlightKind::from_code(14), None);

        let obs = Obs::new();
        obs.instant(Track::wall(0), "admit", vec![("request", ArgValue::U64(9))]);
        obs.flight_event(FlightKind::DeviceLost, 9, 2, 41);
        obs.flight_event(FlightKind::ShardFailover, 9, 2, 3);
        let trigger = Trigger {
            reason: "shard_failover".to_string(),
            request: 9,
            detail: "shard 2 lost; 3 bands resharded".to_string(),
        };
        let text = bundle(&obs, &trigger);
        assert!(text.contains("\"device_lost\""), "{text}");
        assert!(text.contains("\"shard_failover\""), "{text}");
        assert!(text.contains("sat-hmm/flight/v3"), "{text}");
        let stats = validate(&text).unwrap_or_else(|e| panic!("invalid bundle: {e}\n{text}"));
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn ring_wrap_preserves_v3_drift_alert_events() {
        // A DriftAlert recorded before a flood of lifecycle events must
        // survive as long as it is within the last ring-capacity tickets,
        // and its payload words (τ ratio ppm, cell samples) must round-trip
        // through the bundle.
        let r = FlightRecorder::new(8);
        for i in 0..3u64 {
            r.record(i as f64, FlightKind::Admit, i + 1, 0, 0); // overwritten
        }
        for i in 0..6u64 {
            r.record((i + 3) as f64, FlightKind::LaunchEnd, i + 4, i, 0);
        }
        r.record(9.0, FlightKind::DriftAlert, 0, 4_200_000, 37);
        r.record(10.0, FlightKind::SloBurn, 9, 1_500_000, 0);
        let events = r.recent();
        assert_eq!(events.len(), 8, "exactly one ring of survivors");
        assert!(
            events.iter().all(|e| e.kind != FlightKind::Admit),
            "oldest events must be overwritten: {events:?}"
        );
        let drift = events
            .iter()
            .find(|e| e.kind == FlightKind::DriftAlert)
            .expect("drift alert survives the wrap");
        assert_eq!(drift.a, 4_200_000);
        assert_eq!(drift.b, 37);

        let obs = Obs::new();
        obs.flight_event(FlightKind::DriftAlert, 0, 4_200_000, 37);
        let text = bundle(
            &obs,
            &Trigger {
                reason: "drift".to_string(),
                request: 0,
                detail: "sustained model drift".to_string(),
            },
        );
        assert!(text.contains("\"drift_alert\""), "{text}");
        let stats = validate(&text).unwrap_or_else(|e| panic!("invalid bundle: {e}\n{text}"));
        assert_eq!(stats.events, 1);
    }

    #[test]
    fn validate_rejects_structural_breakage() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"schema\":\"wrong\"}").is_err());
        let no_flow = format!(
            "{{\"schema\":\"{SCHEMA}\",\
             \"trigger\":{{\"reason\":\"breaker_open\",\"request\":5,\"detail\":\"\"}},\
             \"events\":[],\"registry\":{{\"counters\":[],\"gauges\":[],\"histograms\":[]}},\
             \"trace_slice\":[],\"request_flow\":[]}}"
        );
        let err = validate(&no_flow).unwrap_err();
        assert!(err.contains("request_flow"), "{err}");
        let bad_kind = format!(
            "{{\"schema\":\"{SCHEMA}\",\
             \"trigger\":{{\"reason\":\"panic\",\"request\":0,\"detail\":\"\"}},\
             \"events\":[{{\"seq\":0,\"ts_us\":1,\"kind\":\"nope\",\"request\":0,\"a\":0,\"b\":0}}],\
             \"registry\":{{\"counters\":[],\"gauges\":[],\"histograms\":[]}},\
             \"trace_slice\":[],\"request_flow\":[]}}"
        );
        assert!(validate(&bad_kind).unwrap_err().contains("unknown kind"));
    }

    #[test]
    fn dump_writes_a_validating_file() {
        let obs = Obs::new();
        obs.flight_event(FlightKind::VerifyFailure, 3, 0, 0);
        obs.instant(Track::wall(0), "admit", vec![("request", ArgValue::U64(3))]);
        let dir = std::env::temp_dir().join(format!("obs-flight-dump-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let trigger = Trigger {
            reason: "verify_failure".to_string(),
            request: 3,
            detail: "checksum mismatch".to_string(),
        };
        let path = dump(&obs, &dir, "test", &trigger).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(name.starts_with("postmortem-test-"), "{name}");
        assert!(name.ends_with("-verify_failure.json"), "{name}");
        let text = std::fs::read_to_string(&path).unwrap();
        validate(&text).unwrap_or_else(|e| panic!("invalid dumped bundle: {e}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_hook_dumps_before_delegating() {
        let obs = Obs::new();
        obs.flight_event(FlightKind::LaunchBegin, 0, 4, 16);
        let dir = std::env::temp_dir().join(format!("obs-panic-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        install_panic_hook(obs, dir.clone(), "hooked".to_string());
        let result = std::panic::catch_unwind(|| panic!("boom"));
        // Restore the default hook before asserting, so a failing assert
        // below does not re-enter the dump path.
        let _ = std::panic::take_hook();
        assert!(result.is_err());
        let mut bundles: Vec<_> = std::fs::read_dir(&dir)
            .expect("dump dir exists")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        bundles.sort();
        assert!(!bundles.is_empty(), "panic produced no bundle");
        let text = std::fs::read_to_string(&bundles[0]).unwrap();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(
            v.get("trigger").unwrap().get("reason").unwrap().as_str(),
            Some("panic")
        );
        validate(&text).unwrap_or_else(|e| panic!("invalid panic bundle: {e}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
