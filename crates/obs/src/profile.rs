//! Per-phase cost attribution: counter deltas + spans → a cost ledger.
//!
//! The paper prices an algorithm by its global-memory ledger,
//! `C/w + S + L·(B+1)` — coalesced ops `C`, stride ops `S`, barrier steps
//! `B`, width `w`, window overhead `L`. This module turns a run's recorded
//! counters and spans into that ledger *per phase*: each phase (an explicit
//! [`Profiler::phase`] closure, or one device launch when reconstructed
//! from a trace by [`attribution_from_trace`]) gets its coalesced/stride op
//! counts, barrier steps, modeled cost under a [`CostModel`], and measured
//! wall time. The report renders as a text table ([`PhaseReport::to_table`])
//! and as Chrome-trace counter tracks
//! ([`PhaseReport::export_counter_tracks`]) so Perfetto shows
//! modeled-vs-measured side by side with the spans.
//!
//! `obs` is dependency-free, so the model parameters arrive as plain
//! numbers; callers bridge from `hmm_model::MachineConfig` (width and
//! window overhead) and the formula here mirrors
//! `hmm_model::GlobalCost::cost` exactly.

use std::time::Instant;

use crate::span::EventKind;
use crate::{ArgValue, Obs, Registry, Track};

/// The gpu-exec registry counters a phase is attributed from.
const PHASE_COUNTERS: [&str; 4] = [
    "gpu_coalesced_ops",
    "gpu_stride_ops",
    "gpu_global_stages",
    "gpu_launches",
];

/// The paper's global-memory cost parameters: width `w` and per-window
/// overhead `L` (Λ). Mirrors `hmm_model::GlobalCost` — kept as plain
/// numbers because `obs` has no dependencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Memory width `w` (words per coalesced transaction).
    pub width: u64,
    /// Overhead `L` charged once per kernel window (`B+1` windows for `B`
    /// barrier steps).
    pub window_overhead: u64,
}

impl CostModel {
    /// Modeled cost of a phase: `C/w + S + L·windows`, where `windows` is
    /// the number of kernel windows the phase spans (`B+1` for `B` barrier
    /// steps — one window per launch).
    pub fn cost(&self, coalesced_ops: u64, stride_ops: u64, windows: u64) -> f64 {
        coalesced_ops as f64 / self.width as f64
            + stride_ops as f64
            + (self.window_overhead * windows) as f64
    }
}

/// One phase's ledger line.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase label.
    pub name: String,
    /// Device launches inside the phase.
    pub launches: u64,
    /// Coalesced global-memory operations (`C`).
    pub coalesced_ops: u64,
    /// Stride (uncoalesced) global-memory operations (`S`).
    pub stride_ops: u64,
    /// Global pipeline stages executed.
    pub global_stages: u64,
    /// Barrier steps *inside* the phase (`launches − 1`; boundaries between
    /// phases are counted once, in [`PhaseReport::total`]).
    pub barrier_steps: u64,
    /// Phase start, µs on the observer's wall clock.
    pub start_us: f64,
    /// Measured wall time, µs.
    pub wall_us: f64,
    /// `C/w + S + L·launches` under the report's [`CostModel`].
    pub modeled_cost: f64,
}

/// A per-phase cost attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// The model used for every row's `modeled_cost`.
    pub model: CostModel,
    /// One row per phase, in execution order.
    pub rows: Vec<PhaseRow>,
}

impl PhaseReport {
    /// Sum the rows into one ledger line named `total`. Barrier steps
    /// follow the paper's counting — boundaries *between* launches, so
    /// `total launches − 1` — and the modeled cost is recomputed from the
    /// summed counters (`C/w + S + L·(B+1)`), not summed per-row, so it
    /// equals `GlobalCost::cost` for the whole run.
    pub fn total(&self) -> PhaseRow {
        let launches: u64 = self.rows.iter().map(|r| r.launches).sum();
        let coalesced: u64 = self.rows.iter().map(|r| r.coalesced_ops).sum();
        let stride: u64 = self.rows.iter().map(|r| r.stride_ops).sum();
        let stages: u64 = self.rows.iter().map(|r| r.global_stages).sum();
        PhaseRow {
            name: "total".to_string(),
            launches,
            coalesced_ops: coalesced,
            stride_ops: stride,
            global_stages: stages,
            barrier_steps: launches.saturating_sub(1),
            start_us: if self.rows.is_empty() {
                0.0
            } else {
                self.rows
                    .iter()
                    .map(|r| r.start_us)
                    .fold(f64::INFINITY, f64::min)
            },
            wall_us: self.rows.iter().map(|r| r.wall_us).sum(),
            modeled_cost: self.model.cost(coalesced, stride, launches),
        }
    }

    /// Render the report (plus the total line) as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>10} {:>9} {:>12} {:>12}\n",
            "phase", "launches", "coalesced", "stride", "barriers", "modeled(u)", "wall(us)"
        ));
        let mut line = |r: &PhaseRow| {
            out.push_str(&format!(
                "{:<24} {:>8} {:>12} {:>10} {:>9} {:>12.1} {:>12.1}\n",
                r.name,
                r.launches,
                r.coalesced_ops,
                r.stride_ops,
                r.barrier_steps,
                r.modeled_cost,
                r.wall_us
            ));
        };
        for r in &self.rows {
            line(r);
        }
        line(&self.total());
        out
    }

    /// Emit the report as Chrome-trace counter tracks on the wall-clock
    /// process: one `"C"` event per phase carrying the modeled cost (model
    /// units) and measured wall time (µs) as two series, plus a closing
    /// zero sample, so Perfetto draws modeled-vs-measured step functions
    /// aligned with the phase spans.
    pub fn export_counter_tracks(&self, obs: &Obs) {
        let mut end = 0.0f64;
        for r in &self.rows {
            obs.counter_event(
                Track::wall(0),
                "phase cost",
                r.start_us,
                &[("modeled_units", r.modeled_cost), ("wall_us", r.wall_us)],
            );
            end = end.max(r.start_us + r.wall_us);
        }
        if !self.rows.is_empty() {
            obs.counter_event(
                Track::wall(0),
                "phase cost",
                end,
                &[("modeled_units", 0.0), ("wall_us", 0.0)],
            );
        }
    }
}

/// Attribute work to named phases by snapshotting the gpu-exec registry
/// counters around closures. Phases observe whatever ran inside them —
/// launches on any device sharing the observer's registry.
pub struct Profiler {
    obs: Obs,
    registry: Registry,
    model: CostModel,
    rows: Vec<PhaseRow>,
}

impl Profiler {
    /// A profiler over `obs`'s registry; `None` when the handle is
    /// disabled (profiling needs the counters).
    pub fn new(obs: &Obs, model: CostModel) -> Option<Profiler> {
        Some(Profiler {
            registry: obs.registry()?,
            obs: obs.clone(),
            model,
            rows: Vec::new(),
        })
    }

    fn totals(&self) -> [u64; PHASE_COUNTERS.len()] {
        let snap = self.registry.snapshot();
        PHASE_COUNTERS.map(|n| snap.counter(n).map(|c| c.total).unwrap_or(0))
    }

    /// Run `f` as the phase `name`: records a span and a ledger row from
    /// the counter deltas across the call.
    pub fn phase<T>(&mut self, name: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let name = name.into();
        let before = self.totals();
        let start = Instant::now();
        let out = {
            let _span = self.obs.span(Track::wall(0), name.clone());
            f()
        };
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        let after = self.totals();
        let d: Vec<u64> = before
            .iter()
            .zip(after)
            .map(|(b, a)| a.saturating_sub(*b))
            .collect();
        let (coalesced, stride, stages, launches) = (d[0], d[1], d[2], d[3]);
        self.rows.push(PhaseRow {
            name,
            launches,
            coalesced_ops: coalesced,
            stride_ops: stride,
            global_stages: stages,
            barrier_steps: launches.saturating_sub(1),
            start_us: self.obs.wall_us_of(start).unwrap_or(0.0),
            wall_us,
            modeled_cost: self.model.cost(coalesced, stride, launches),
        });
        out
    }

    /// Finish and return the report.
    pub fn finish(self) -> PhaseReport {
        PhaseReport {
            model: self.model,
            rows: self.rows,
        }
    }
}

fn u64_arg(args: &[(&'static str, ArgValue)], key: &str) -> Option<u64> {
    args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| {
        if let ArgValue::U64(u) = v {
            Some(*u)
        } else {
            None
        }
    })
}

/// Reconstruct a per-launch attribution report from the `"launch"` spans a
/// `gpu_exec::Device` records (their args carry each launch's counter
/// deltas). One row per launch in timestamp order; the report's
/// [`PhaseReport::total`] therefore matches the device's cumulative
/// counters, with `barrier_steps = launches − 1` exactly as
/// `GlobalCost::exact_counts` counts them.
pub fn attribution_from_trace(obs: &Obs, model: CostModel) -> PhaseReport {
    let mut rows: Vec<PhaseRow> = obs
        .with_events(|events| {
            events
                .iter()
                .filter(|e| e.name == "launch" && e.track.pid == Track::WALL_PID)
                .filter_map(|e| {
                    let EventKind::Complete { dur } = e.kind else {
                        return None;
                    };
                    let coalesced = u64_arg(&e.args, "coalesced_ops")?;
                    let stride = u64_arg(&e.args, "stride_ops").unwrap_or(0);
                    let stages = u64_arg(&e.args, "global_stages").unwrap_or(0);
                    let label = match u64_arg(&e.args, "launch") {
                        Some(k) => format!("launch {k}"),
                        None => "launch".to_string(),
                    };
                    Some(PhaseRow {
                        name: label,
                        launches: 1,
                        coalesced_ops: coalesced,
                        stride_ops: stride,
                        global_stages: stages,
                        barrier_steps: 0,
                        start_us: e.ts,
                        wall_us: dur,
                        modeled_cost: model.cost(coalesced, stride, 1),
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    rows.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    PhaseReport { model, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_matches_the_paper_formula() {
        let m = CostModel {
            width: 32,
            window_overhead: 5,
        };
        // C/w + S + L·(B+1) with C=640, S=7, B=2 (3 windows).
        assert_eq!(m.cost(640, 7, 3), 640.0 / 32.0 + 7.0 + 15.0);
    }

    #[test]
    fn profiler_attributes_counter_deltas_to_phases() {
        let obs = Obs::new();
        let reg = obs.registry().unwrap();
        let coalesced = reg.counter("gpu_coalesced_ops");
        let launches = reg.counter("gpu_launches");
        let model = CostModel {
            width: 4,
            window_overhead: 2,
        };
        let mut prof = Profiler::new(&obs, model).unwrap();
        prof.phase("rows", || {
            coalesced.add(100);
            launches.inc();
        });
        prof.phase("cols", || {
            coalesced.add(40);
            launches.add(2);
        });
        let report = prof.finish();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].coalesced_ops, 100);
        assert_eq!(report.rows[0].launches, 1);
        assert_eq!(report.rows[0].barrier_steps, 0);
        assert_eq!(report.rows[0].modeled_cost, 100.0 / 4.0 + 2.0);
        assert_eq!(report.rows[1].barrier_steps, 1);
        let total = report.total();
        assert_eq!(total.coalesced_ops, 140);
        assert_eq!(total.launches, 3);
        assert_eq!(total.barrier_steps, 2);
        assert_eq!(total.modeled_cost, 140.0 / 4.0 + 2.0 * 3.0);
        let table = report.to_table();
        assert!(table.contains("rows"));
        assert!(table.contains("total"));
    }

    #[test]
    fn profiler_on_disabled_handle_is_none() {
        let model = CostModel {
            width: 4,
            window_overhead: 1,
        };
        assert!(Profiler::new(&Obs::disabled(), model).is_none());
    }

    #[test]
    fn attribution_reconstructs_launch_rows_from_spans() {
        let obs = Obs::new();
        let t0 = Instant::now();
        for k in 0..3u64 {
            obs.wall_span_at(
                Track::wall(0),
                "launch",
                t0,
                t0 + std::time::Duration::from_micros(10),
                None,
                vec![
                    ("launch", ArgValue::U64(k)),
                    ("grid", ArgValue::U64(8)),
                    ("coalesced_ops", ArgValue::U64(64)),
                    ("stride_ops", ArgValue::U64(k)),
                    ("global_stages", ArgValue::U64(2)),
                ],
            );
        }
        // A non-launch span must not contribute.
        obs.wall_span_at(Track::wall(0), "block", t0, t0, None, Vec::new());
        let model = CostModel {
            width: 8,
            window_overhead: 3,
        };
        let report = attribution_from_trace(&obs, model);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].name, "launch 0");
        let total = report.total();
        assert_eq!(total.coalesced_ops, 192);
        assert_eq!(total.stride_ops, 3);
        assert_eq!(total.barrier_steps, 2);
        assert_eq!(total.modeled_cost, 192.0 / 8.0 + 3.0 + 9.0);
    }

    #[test]
    fn counter_tracks_are_schema_valid() {
        let obs = Obs::new();
        let model = CostModel {
            width: 4,
            window_overhead: 1,
        };
        let report = PhaseReport {
            model,
            rows: vec![PhaseRow {
                name: "p".into(),
                launches: 1,
                coalesced_ops: 8,
                stride_ops: 0,
                global_stages: 1,
                barrier_steps: 0,
                start_us: 5.0,
                wall_us: 20.0,
                modeled_cost: 3.0,
            }],
        };
        report.export_counter_tracks(&obs);
        let stats = crate::chrome::validate(&obs.trace_json()).unwrap();
        assert_eq!(stats.counters, 2); // one per row + closing zero
    }
}
