//! Structured spans on two clocks.
//!
//! An [`Obs`] handle collects begin/end events with parent ids and
//! process/thread attribution and serializes them as Chrome trace-event
//! JSON ([`Obs::trace_json`]). Events live on one of two *processes* in the
//! trace: [`Track::WALL_PID`] is the wall clock (microseconds since the
//! handle was created) and [`Track::SIM_PID`] is the simulated HMM clock
//! (one time unit rendered as one microsecond), so a real execution and its
//! `hmm-sim` replay overlay in a single Perfetto window.
//!
//! A disabled handle ([`Obs::disabled`]) is a `None`: every call is one
//! branch and a return — no clock read, no allocation, no lock.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::chrome;
use crate::flight::{FlightEvent, FlightKind, FlightRecorder};
use crate::registry::Registry;

/// Where an event lives in the trace: Chrome's process/thread pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Track {
    /// Trace process id. Processes separate *clocks* here, not OS processes.
    pub pid: u32,
    /// Trace thread id — the lane inside the clock (device stream, block,
    /// request lane, simulator window row).
    pub tid: u32,
}

impl Track {
    /// The wall-clock process.
    pub const WALL_PID: u32 = 1;
    /// The simulated-clock process (HMM time units).
    pub const SIM_PID: u32 = 2;

    /// A wall-clock lane.
    pub fn wall(tid: u32) -> Track {
        Track {
            pid: Self::WALL_PID,
            tid,
        }
    }

    /// A simulated-clock lane.
    pub fn sim(tid: u32) -> Track {
        Track {
            pid: Self::SIM_PID,
            tid,
        }
    }
}

/// Identifier of a recorded span, used to parent later events to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A span/instant argument value (rendered into the event's `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Which point of a flow arrow an event marks (Chrome trace `ph` values
/// `"s"`, `"t"` and `"f"`). Events sharing a flow id form one arrow chain
/// in Perfetto; the chain's id is the request id here, so a request can be
/// followed across processes and threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// The arrow's origin (`ph: "s"`).
    Start,
    /// An intermediate hop (`ph: "t"`).
    Step,
    /// The arrow's terminus (`ph: "f"`).
    End,
}

/// How a recorded event renders in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EventKind {
    /// A complete span (`ph: "X"`) with a duration.
    Complete {
        /// Duration in the track's clock units.
        dur: f64,
    },
    /// An instant event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`): args are the series values.
    Counter,
    /// A flow point (`ph: "s"/"t"/"f"`). For flow events the [`Event::id`]
    /// field *is* the flow id (the request id), not a span-bookkeeping id —
    /// Perfetto binds arrows by that top-level `id`.
    Flow(FlowPhase),
}

/// One recorded trace event (crate-internal; serialized by [`chrome`]).
#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub name: Cow<'static, str>,
    pub track: Track,
    pub id: u64,
    pub parent: Option<u64>,
    /// Timestamp in the track's clock (µs on wall, time units on sim).
    pub ts: f64,
    pub kind: EventKind,
    pub args: Vec<(&'static str, ArgValue)>,
}

#[derive(Debug)]
struct ObsInner {
    registry: Registry,
    t0: Instant,
    next_id: AtomicU64,
    events: Mutex<Vec<Event>>,
    flight: FlightRecorder,
}

/// The observability handle: a cheaply clonable recorder of spans and home
/// of the metric [`Registry`], or a no-op shell when disabled.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// An enabled handle with a fresh registry.
    pub fn new() -> Obs {
        Self::with_registry(Registry::new())
    }

    /// An enabled handle recording into an existing registry (layers that
    /// share a registry expose one merged snapshot).
    pub fn with_registry(registry: Registry) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry,
                t0: Instant::now(),
                next_id: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
                flight: FlightRecorder::new(crate::flight::DEFAULT_CAPACITY),
            })),
        }
    }

    /// The no-op handle: every recording call is a single branch.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The handle's registry (`None` when disabled).
    pub fn registry(&self) -> Option<Registry> {
        self.inner.as_ref().map(|i| i.registry.clone())
    }

    fn wall_us(inner: &ObsInner, at: Instant) -> f64 {
        at.saturating_duration_since(inner.t0).as_secs_f64() * 1e6
    }

    fn push(inner: &ObsInner, ev: Event) {
        inner.events.lock().expect("obs event lock").push(ev);
    }

    fn alloc_id(inner: &ObsInner) -> u64 {
        inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Start a wall-clock span ending when the guard drops.
    pub fn span(&self, track: Track, name: impl Into<Cow<'static, str>>) -> SpanGuard {
        self.span_child(track, name, None)
    }

    /// Start a wall-clock span parented to `parent`.
    pub fn span_child(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        parent: Option<SpanId>,
    ) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => SpanGuard {
                inner: Some(Arc::clone(inner)),
                track,
                name: name.into(),
                id: Self::alloc_id(inner),
                parent,
                start: Instant::now(),
                args: Vec::new(),
            },
        }
    }

    /// Record an instant event at "now" on the wall clock.
    pub fn instant(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let ts = Self::wall_us(inner, Instant::now());
            Self::push(
                inner,
                Event {
                    name: name.into(),
                    track,
                    id: Self::alloc_id(inner),
                    parent: None,
                    ts,
                    kind: EventKind::Instant,
                    args,
                },
            );
        }
    }

    /// Record a counter sample (`ph: "C"`) at an explicit timestamp in the
    /// track's clock units (µs on wall, time units on sim). Counter events
    /// render as value-over-time tracks in Perfetto — one series per
    /// `(key, value)` pair — which is how modeled-vs-measured cost per
    /// phase is drawn next to the spans it annotates.
    pub fn counter_event(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        ts: f64,
        values: &[(&'static str, f64)],
    ) {
        if let Some(inner) = &self.inner {
            Self::push(
                inner,
                Event {
                    name: name.into(),
                    track,
                    id: Self::alloc_id(inner),
                    parent: None,
                    ts,
                    kind: EventKind::Counter,
                    args: values.iter().map(|&(k, v)| (k, ArgValue::F64(v))).collect(),
                },
            );
        }
    }

    /// Record a flow point at an explicit timestamp in the track's clock
    /// units (µs on wall, time units on sim). `flow` is the arrow chain's
    /// id — the request id, here — shared by every point of the chain.
    ///
    /// Flow points must land *inside* a slice on the same track for
    /// Perfetto to anchor the arrow to it, which is why the timestamp is
    /// explicit: layers that retro-emit spans place the flow point at the
    /// span's midpoint.
    pub fn flow_at(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        phase: FlowPhase,
        flow: u64,
        ts: f64,
    ) {
        if let Some(inner) = &self.inner {
            Self::push(
                inner,
                Event {
                    name: name.into(),
                    track,
                    id: flow,
                    parent: None,
                    ts,
                    kind: EventKind::Flow(phase),
                    args: Vec::new(),
                },
            );
        }
    }

    /// Record a flow point at a wall-clock instant ([`Self::flow_at`] with
    /// the instant translated to this handle's wall microseconds).
    pub fn flow_wall(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        phase: FlowPhase,
        flow: u64,
        at: Instant,
    ) {
        if let Some(inner) = &self.inner {
            let ts = Self::wall_us(inner, at);
            self.flow_at(track, name, phase, flow, ts);
        }
    }

    /// Record a structured event into the flight recorder (no-op when
    /// disabled): one lock-free ring write, no allocation.
    #[inline]
    pub fn flight_event(&self, kind: FlightKind, request: u64, a: u64, b: u64) {
        if let Some(inner) = &self.inner {
            let ts = Self::wall_us(inner, Instant::now());
            inner.flight.record(ts, kind, request, a, b);
        }
    }

    /// The flight recorder's surviving recent events, oldest first (empty
    /// when disabled).
    pub fn flight_recent(&self) -> Vec<FlightEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.flight.recent(),
        }
    }

    /// Run `f` over the recorded events (`None` when disabled). Used by
    /// [`crate::profile`] to reconstruct per-launch attribution from spans.
    pub(crate) fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|inner| f(&inner.events.lock().expect("obs event lock")))
    }

    /// Translate an `Instant` into this handle's wall-clock microseconds
    /// (`None` when disabled).
    pub(crate) fn wall_us_of(&self, at: Instant) -> Option<f64> {
        self.inner.as_ref().map(|inner| Self::wall_us(inner, at))
    }

    /// Record a completed wall-clock span from explicit instants (layers
    /// that already hold timestamps — e.g. a batcher attributing queue time
    /// per request — emit retroactively). Returns the span's id.
    pub fn wall_span_at(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        start: Instant,
        end: Instant,
        parent: Option<SpanId>,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let ts = Self::wall_us(inner, start);
        let dur = (Self::wall_us(inner, end) - ts).max(0.0);
        let id = Self::alloc_id(inner);
        Self::push(
            inner,
            Event {
                name: name.into(),
                track: Track {
                    pid: Track::WALL_PID,
                    tid: track.tid,
                },
                id,
                parent: parent.map(|p| p.0),
                ts,
                kind: EventKind::Complete { dur },
                args,
            },
        );
        Some(SpanId(id))
    }

    /// Record a span on the **simulated clock** covering
    /// `[start_units, end_units]` of HMM time. Returns the span's id.
    pub fn sim_span(
        &self,
        tid: u32,
        name: impl Into<Cow<'static, str>>,
        start_units: u64,
        end_units: u64,
        parent: Option<SpanId>,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let id = Self::alloc_id(inner);
        Self::push(
            inner,
            Event {
                name: name.into(),
                track: Track::sim(tid),
                id,
                parent: parent.map(|p| p.0),
                ts: start_units as f64,
                kind: EventKind::Complete {
                    dur: end_units.saturating_sub(start_units) as f64,
                },
                args,
            },
        );
        Some(SpanId(id))
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn event_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.events.lock().expect("obs event lock").len(),
        }
    }

    /// Serialize everything recorded so far as Chrome trace-event JSON
    /// (an object with a `traceEvents` array, loadable in Perfetto or
    /// `chrome://tracing`). A disabled handle yields an empty trace.
    pub fn trace_json(&self) -> String {
        match &self.inner {
            None => chrome::serialize(&[]),
            Some(inner) => chrome::serialize(&inner.events.lock().expect("obs event lock")),
        }
    }
}

/// Guard of an in-progress span; records the complete event on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<ObsInner>>,
    track: Track,
    name: Cow<'static, str>,
    id: u64,
    parent: Option<SpanId>,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    fn noop() -> SpanGuard {
        // A dummy timestamp: never read, but `Instant` has no cheap zero.
        // `Instant::now` here would defeat the no-op path, so noop guards
        // share one lazily initialised instant.
        static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        SpanGuard {
            inner: None,
            track: Track::wall(0),
            name: Cow::Borrowed(""),
            id: 0,
            parent: None,
            start: *EPOCH.get_or_init(Instant::now),
            args: Vec::new(),
        }
    }

    /// This span's id, for parenting children (`None` when disabled).
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|_| SpanId(self.id))
    }

    /// Attach an argument (no-op when disabled).
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        if self.inner.is_some() {
            self.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ts = Obs::wall_us(&inner, self.start);
            let dur = (Obs::wall_us(&inner, Instant::now()) - ts).max(0.0);
            Obs::push(
                &inner,
                Event {
                    name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                    track: self.track,
                    id: self.id,
                    parent: self.parent.map(|p| p.0),
                    ts,
                    kind: EventKind::Complete { dur },
                    args: std::mem::take(&mut self.args),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.registry().is_none());
        {
            let mut s = obs.span(Track::wall(0), "x");
            assert!(s.id().is_none());
            s.arg("k", ArgValue::U64(1));
        }
        obs.instant(Track::wall(0), "i", Vec::new());
        obs.flow_at(Track::wall(0), "request", FlowPhase::Start, 7, 1.0);
        obs.flight_event(FlightKind::Admit, 7, 0, 0);
        assert_eq!(obs.event_count(), 0);
        assert!(obs.flight_recent().is_empty());
        assert_eq!(obs.trace_json(), chrome::serialize(&[]));
    }

    #[test]
    fn flow_points_share_the_flow_id() {
        let obs = Obs::new();
        obs.flow_at(Track::wall(1), "request", FlowPhase::Start, 42, 5.0);
        obs.flow_at(Track::wall(2), "request", FlowPhase::Step, 42, 10.0);
        obs.flow_at(Track::wall(3), "request", FlowPhase::End, 42, 15.0);
        let json = obs.trace_json();
        let stats = chrome::validate(&json).unwrap();
        assert_eq!(stats.flows, 3);
        let v = crate::json::JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        for ph in ["s", "t", "f"] {
            let e = events
                .iter()
                .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .unwrap_or_else(|| panic!("no {ph} flow point"));
            assert_eq!(e.get("id").unwrap().as_f64(), Some(42.0));
            assert_eq!(e.get("name").unwrap().as_str(), Some("request"));
        }
    }

    #[test]
    fn spans_nest_via_parent_ids() {
        let obs = Obs::new();
        let parent_id;
        {
            let parent = obs.span(Track::wall(0), "outer");
            parent_id = parent.id().unwrap();
            let child = obs.span_child(Track::wall(0), "inner", parent.id());
            assert_ne!(child.id().unwrap(), parent_id);
            drop(child);
        }
        assert_eq!(obs.event_count(), 2);
        let json = obs.trace_json();
        let v = crate::json::JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("inner"))
            .unwrap();
        assert_eq!(
            inner.get("args").unwrap().get("parent").unwrap().as_f64(),
            Some(parent_id.0 as f64)
        );
    }

    #[test]
    fn sim_spans_land_on_the_sim_process() {
        let obs = Obs::new();
        let id = obs
            .sim_span(3, "window", 10, 25, None, vec![("blocks", 4u64.into())])
            .unwrap();
        assert!(id.0 > 0);
        let json = obs.trace_json();
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":15"));
    }

    #[test]
    fn retro_wall_spans_use_caller_timestamps() {
        let obs = Obs::new();
        let start = Instant::now();
        let end = start + std::time::Duration::from_millis(2);
        obs.wall_span_at(Track::wall(7), "queued", start, end, None, Vec::new())
            .unwrap();
        let json = obs.trace_json();
        let v = crate::json::JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let e = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("queued"))
            .unwrap();
        let dur = e.get("dur").unwrap().as_f64().unwrap();
        assert!((dur - 2000.0).abs() < 1.0, "dur={dur}µs");
    }

    #[test]
    fn timestamps_predating_the_handle_saturate_to_zero() {
        let start = Instant::now();
        let obs = Obs::new();
        let id = obs.wall_span_at(
            Track::wall(0),
            "early",
            start,
            Instant::now(),
            None,
            Vec::new(),
        );
        assert!(id.is_some());
        // ts clamps to 0 rather than panicking or going negative.
        let json = obs.trace_json();
        assert!(chrome::validate(&json).is_ok());
    }

    /// The issue's overhead budget: recording disabled must be a no-op fast
    /// path. One million disabled span open/close cycles must stay far from
    /// anything that reads a clock, locks, or allocates per call (budget is
    /// generous for debug builds; a real clock read alone would bust it).
    #[test]
    fn disabled_path_is_cheap() {
        let obs = Obs::disabled();
        let iters = 1_000_000u32;
        let t = Instant::now();
        for _ in 0..iters {
            let s = obs.span(Track::wall(0), "noop");
            drop(s);
        }
        let per_op = t.elapsed().as_nanos() as f64 / iters as f64;
        assert!(
            per_op < 1000.0,
            "disabled span path costs {per_op:.0} ns/op — no-op fast path regressed"
        );
        assert_eq!(obs.event_count(), 0);
        // Flight-recorder event recording shares the budget: disabled it is
        // the same single branch, with no clock read and no ring write.
        let t = Instant::now();
        for i in 0..iters {
            obs.flight_event(FlightKind::Admit, i as u64, 0, 0);
        }
        let per_op = t.elapsed().as_nanos() as f64 / iters as f64;
        assert!(
            per_op < 1000.0,
            "disabled flight path costs {per_op:.0} ns/op — no-op fast path regressed"
        );
        assert!(obs.flight_recent().is_empty());
    }
}
