//! A minimal JSON parser.
//!
//! The workspace's vendored `serde_json` shim only *serializes* (see
//! `vendor/README.md`); validating emitted traces therefore needs an
//! in-tree reader. This is a strict recursive-descent parser for the full
//! JSON grammar — objects, arrays, strings with escapes, numbers, literals
//! — sized for trace files, not for adversarial input (nesting depth is
//! bounded to keep recursion safe).

/// Maximum nesting depth accepted (arrays/objects); trace files are ~3 deep.
const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order (keys may repeat; lookups take the
    /// first occurrence).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling: a high surrogate must
                            // be followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#x} in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-3.5e2").unwrap(),
            JsonValue::Number(-350.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,{"b":"x"},[]],"c":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(a[2].as_array().unwrap().len(), 0);
        assert_eq!(v.get("c").unwrap().as_object().unwrap().len(), 0);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_surrogate_pairs_and_unicode() {
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".to_string())
        );
        assert_eq!(
            JsonValue::parse("\"héllo\"").unwrap(),
            JsonValue::String("héllo".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "tru",
            "1 2",
            "[1] garbage",
            "\"\\ud83d\"", // lone surrogate
            "\"\\q\"",
            "nan",
            "- 1",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn round_trips_vendored_serializer_output() {
        // The vendored serde_json can serialize; our parser must read it.
        let text = "{\"a\":1.5,\"b\":[true,null],\"c\":\"x\\\"y\"}";
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y"));
    }
}
