//! Concurrent registry stress: threads race *registration* (not just
//! increments) of counters, gauges and histograms on the same names. The
//! get-or-register path must hand every thread the same cell — one metric
//! per name in the snapshot, no lost counts.

use obs::{BucketLayout, Registry};

const THREADS: usize = 8;
const ITERS: u64 = 2_000;

#[test]
fn racing_registration_yields_one_cell_per_name_and_loses_nothing() {
    let r = Registry::new();
    let counter_names = ["stress_total", "stress_total{lane=\"a\"}"];
    let layout = BucketLayout::log(1e-3, 2.0, 16);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let r = r.clone();
            let layout = layout.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    // Re-resolve the handles every iteration so the
                    // registration path itself is contended.
                    for name in counter_names {
                        r.counter(name).inc();
                    }
                    r.gauge("stress_gauge").set((t as f64) + i as f64);
                    r.histogram_with("stress_seconds", &layout)
                        .observe(1e-3 * (1 + i % 7) as f64);
                }
            });
        }
    });
    let snap = r.snapshot();
    // Exactly one metric per registered name.
    assert_eq!(snap.counters.len(), counter_names.len());
    assert_eq!(snap.gauges.len(), 1);
    assert_eq!(snap.histograms.len(), 1);
    let expected = THREADS as u64 * ITERS;
    for name in counter_names {
        assert_eq!(
            snap.counter(name).unwrap().total,
            expected,
            "lost increments on {name}"
        );
    }
    let h = snap.histogram("stress_seconds").unwrap();
    assert_eq!(h.count, expected, "lost observations");
    assert_eq!(h.counts.iter().sum::<u64>(), expected);
    // The gauge holds *some* thread's final write, and it parses as one of
    // the written values.
    let g = snap.gauge("stress_gauge").unwrap().value;
    assert!(g >= 0.0 && g < THREADS as f64 + ITERS as f64);
}

#[test]
fn racing_handles_share_cells_across_clones() {
    let r = Registry::new();
    let handles: Vec<_> = (0..THREADS).map(|_| r.clone()).collect();
    std::thread::scope(|s| {
        for reg in &handles {
            s.spawn(|| {
                let c = reg.counter("shared_total");
                for _ in 0..ITERS {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(
        r.snapshot().counter("shared_total").unwrap().total,
        THREADS as u64 * ITERS
    );
}
