//! Property: bucket-derived quantiles are within one bucket boundary of
//! the exact sorted-sample quantiles. Exercised on the two distribution
//! shapes serving latencies actually take: log-normal-ish (one skewed
//! mode) and bimodal (fast path vs slow path).

use obs::{BucketLayout, Registry};
use proptest::prelude::*;

/// Nearest-rank quantile of a sorted sample (matches the estimator's rank
/// definition).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Index of the bucket (by `le` upper bound) a value falls into.
fn bucket_index(bounds: &[f64], v: f64) -> usize {
    bounds.partition_point(|&b| b < v)
}

fn assert_within_one_bucket(samples: &[f64]) {
    let r = Registry::new();
    let layout = BucketLayout::default_latency_seconds();
    let h = r.histogram_with("lat_seconds", &layout);
    for &v in samples {
        h.observe(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let snap = r.snapshot();
    let sample = snap.histogram("lat_seconds").unwrap();
    let bounds = layout.bounds();
    for q in [0.5, 0.95, 0.99] {
        let exact = exact_quantile(&sorted, q);
        let est = sample.quantile(q);
        let (bi_exact, bi_est) = (bucket_index(&bounds, exact), bucket_index(&bounds, est));
        prop_assert!(
            bi_est.abs_diff(bi_exact) <= 1,
            "p{q}: estimate {est} (bucket {bi_est}) vs exact {exact} (bucket {bi_exact})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Log-normal-ish inputs: exp of an approximately normal exponent
    /// (Irwin–Hall sum of uniforms), scaled into the layout's range.
    #[test]
    fn lognormal_quantiles_within_one_bucket(
        parts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 20..200)
    ) {
        let samples: Vec<f64> = parts
            .iter()
            .map(|(a, b, c)| {
                let z = (a + b + c - 1.5) * 2.0; // approx N(0, ~1.2), in [-3, 3]
                1e-3 * z.exp()
            })
            .collect();
        assert_within_one_bucket(&samples);
    }

    /// Bimodal inputs: a fast mode around 0.2 ms and a slow mode around
    /// 60 ms, mixed per element.
    #[test]
    fn bimodal_quantiles_within_one_bucket(
        samples in proptest::collection::vec(
            prop_oneof![1e-4f64..3e-4, 5e-2f64..9e-2],
            20..200,
        )
    ) {
        assert_within_one_bucket(&samples);
    }
}
