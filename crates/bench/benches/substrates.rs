//! Criterion benchmarks of the substrate layers: the block transpose
//! (Figure 7), the launch machinery, and the discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_exec::{Device, DeviceOptions, GlobalBuffer, TileLayout};
use hmm_model::MachineConfig;
use hmm_sim::AsyncHmm;
use sat_bench::workload;
use sat_core::transpose::transpose_with_layout;

fn device(stats: bool) -> Device {
    Device::new(
        DeviceOptions::new(MachineConfig::with_width(32))
            .workers(0)
            .record_stats(stats),
    )
}

fn bench_transpose(c: &mut Criterion) {
    let dev = device(false);
    let mut group = c.benchmark_group("transpose");
    for n in [512usize, 1024] {
        group.throughput(Throughput::Elements((n * n) as u64));
        let input = workload(n);
        for layout in [TileLayout::Diagonal, TileLayout::RowMajor] {
            group.bench_with_input(
                BenchmarkId::new(format!("{layout:?}"), n),
                &input,
                |b, input| {
                    let src = GlobalBuffer::from_vec(input.as_slice().to_vec());
                    let dst = GlobalBuffer::filled(0.0f64, n * n);
                    b.iter(|| transpose_with_layout(&dev, &src, &dst, n, n, layout));
                },
            );
        }
    }
    group.finish();
}

fn bench_launch_overhead(c: &mut Criterion) {
    // Fixed cost of one kernel launch with an empty body — the analogue of
    // the CUDA kernel-call overhead that dominates the wavefront algorithms.
    let mut group = c.benchmark_group("launch");
    for workers in [0usize, 2] {
        let dev = Device::new(
            DeviceOptions::new(MachineConfig::with_width(32))
                .workers(workers)
                .record_stats(false),
        );
        group.bench_function(format!("empty_kernel_w{workers}"), |b| {
            b.iter(|| dev.launch(1, |_ctx| {}));
        });
        group.bench_function(format!("grid1000_w{workers}"), |b| {
            b.iter(|| dev.launch(1000, |_ctx| {}));
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    // Replay cost of the discrete-event machine per traced transaction.
    let n = 512;
    let dev = Device::new(
        DeviceOptions::new(MachineConfig::with_width(32))
            .workers(0)
            .record_trace(true),
    );
    let input = workload(n);
    let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
    let s = GlobalBuffer::filled(0.0f64, n * n);
    sat_core::par::sat_1r1w(&dev, &buf, &s, n, n);
    let trace = dev.take_trace();
    let sim = AsyncHmm::new(*dev.config());
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(trace.total_ops() as u64));
    group.bench_function("replay_1r1w_512", |b| {
        b.iter(|| sim.simulate(&trace));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transpose, bench_launch_overhead, bench_simulator
}
criterion_main!(benches);
