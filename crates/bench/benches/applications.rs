//! Criterion benchmarks of the image-processing applications: the SAT turns
//! `O(r²)`-per-pixel filtering into `O(1)`-per-pixel, so the box filter's
//! time must be radius-independent while direct convolution grows with `r²`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_model::MachineConfig;
use sat_bench::workload;
use sat_core::scan::inclusive_scan;
use sat_core::{Matrix, SumTable};
use sat_image::boxfilter::{box_filter, clamped_window};
use sat_image::gaussian::gaussian_blur;
use sat_image::ncc::ncc_best_match;
use sat_image::threshold::adaptive_threshold;
use sat_image::variance::local_variance;

/// Direct (non-SAT) box filter for comparison.
fn direct_box(img: &Matrix<f64>, r: usize) -> Matrix<f64> {
    let (rows, cols) = (img.rows(), img.cols());
    Matrix::from_fn(rows, cols, |i, j| {
        let rect = clamped_window(rows, cols, i, j, r);
        let mut acc = 0.0;
        for u in rect.r0..=rect.r1 {
            for v in rect.c0..=rect.c1 {
                acc += img.get(u, v);
            }
        }
        acc
    })
}

fn bench_box_filter(c: &mut Criterion) {
    let n = 512;
    let img = workload(n);
    let table = SumTable::build(&img);
    let mut group = c.benchmark_group("box_filter");
    group.throughput(Throughput::Elements((n * n) as u64));
    for r in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("sat", r), &r, |b, &r| {
            b.iter(|| box_filter(&table, r));
        });
        // Direct convolution only for small radii (it is the point).
        if r <= 4 {
            group.bench_with_input(BenchmarkId::new("direct", r), &r, |b, &r| {
                b.iter(|| direct_box(&img, r));
            });
        }
    }
    group.finish();
}

fn bench_threshold_and_variance(c: &mut Criterion) {
    let n = 512;
    let img = workload(n);
    let mut group = c.benchmark_group("applications");
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("adaptive_threshold", |b| {
        b.iter(|| adaptive_threshold(&img, 8, 0.15));
    });
    group.bench_function("local_variance", |b| {
        b.iter(|| local_variance(&img, 4));
    });
    group.bench_function("gaussian_blur_sigma4", |b| {
        b.iter(|| gaussian_blur(&img, 4.0, 3));
    });
    group.finish();
}

fn bench_ncc_and_scan(c: &mut Criterion) {
    let img = workload(256);
    let template = Matrix::from_fn(16, 16, |i, j| ((i * 5 + j * 3) % 97) as f64);
    let mut group = c.benchmark_group("matching");
    group.bench_function("ncc_256_t16", |b| {
        b.iter(|| ncc_best_match(&img, &template));
    });
    group.finish();

    let dev = Device::new(
        DeviceOptions::new(MachineConfig::with_width(32))
            .workers(0)
            .record_stats(false),
    );
    let len = 1 << 20;
    let data: Vec<f64> = (0..len).map(|i| (i % 97) as f64).collect();
    let input = GlobalBuffer::from_vec(data);
    let output = GlobalBuffer::filled(0.0f64, len);
    let mut group = c.benchmark_group("scan");
    group.throughput(Throughput::Elements(len as u64));
    group.bench_function("inclusive_1M", |b| {
        b.iter(|| inclusive_scan(&dev, &input, &output, len));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_box_filter, bench_threshold_and_variance, bench_ncc_and_scan
}
criterion_main!(benches);
