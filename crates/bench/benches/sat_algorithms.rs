//! Criterion wall-clock benchmarks of every SAT algorithm on the virtual
//! GPU (host time of this library's executor — the per-size *rankings* on
//! the machine model are produced by the `table2` binary; these benches
//! track the implementation's real cost and catch regressions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_bench::workload;
use sat_core::par;

fn device() -> Device {
    // Stats off: measure the algorithms, not the accounting.
    Device::new(
        DeviceOptions::new(MachineConfig::with_width(32))
            .workers(0)
            .record_stats(false),
    )
}

fn bench_algorithms(c: &mut Criterion) {
    let dev = device();
    let mut group = c.benchmark_group("sat");
    for n in [256usize, 512, 1024] {
        group.throughput(Throughput::Elements((n * n) as u64));
        let input = workload(n);
        for alg in SatAlgorithm::ALL {
            // 4R1W is quadratic in launches; bench only the smallest size.
            if alg == SatAlgorithm::FourR1W && n > 256 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &input, |b, input| {
                b.iter(|| match alg {
                    SatAlgorithm::TwoR2W => {
                        let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
                        par::sat_2r2w(&dev, &buf, n, n);
                        buf
                    }
                    SatAlgorithm::FourR4W => {
                        let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
                        let tmp = GlobalBuffer::filled(0.0f64, n * n);
                        par::sat_4r4w(&dev, &buf, &tmp, n, n);
                        buf
                    }
                    SatAlgorithm::FourR1W => {
                        let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
                        par::sat_4r1w(&dev, &buf, n, n);
                        buf
                    }
                    SatAlgorithm::TwoR1W => {
                        let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
                        let s = GlobalBuffer::filled(0.0f64, n * n);
                        par::sat_2r1w(&dev, &buf, &s, n, n);
                        s
                    }
                    SatAlgorithm::OneR1W => {
                        let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
                        let s = GlobalBuffer::filled(0.0f64, n * n);
                        par::sat_1r1w(&dev, &buf, &s, n, n);
                        s
                    }
                    SatAlgorithm::HybridR1W => {
                        let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
                        let s = GlobalBuffer::filled(0.0f64, n * n);
                        par::sat_hybrid(&dev, &buf, &s, n, n, 0.5);
                        s
                    }
                });
            });
        }
    }
    group.finish();
}

fn bench_stats_overhead(c: &mut Criterion) {
    // How much the transaction accounting costs (Table I instrumentation).
    let n = 512;
    let input = workload(n);
    let mut group = c.benchmark_group("stats_overhead");
    for (name, stats) in [("off", false), ("on", true)] {
        let dev = Device::new(
            DeviceOptions::new(MachineConfig::with_width(32))
                .workers(0)
                .record_stats(stats),
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let buf = GlobalBuffer::from_vec(input.as_slice().to_vec());
                let s = GlobalBuffer::filled(0.0f64, n * n);
                par::sat_1r1w(&dev, &buf, &s, n, n);
                s
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms, bench_stats_overhead
}
criterion_main!(benches);
