//! Criterion benchmarks of the sequential CPU baselines (Table II's bottom
//! rows): 2R2W(CPU) — two raster prefix passes — versus 4R1W(CPU) — one
//! Formula-(1) pass. The paper found 4R1W(CPU) faster thanks to access
//! locality; these benches verify the same relation holds in this
//! implementation on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sat_bench::workload;
use sat_core::seq;

fn bench_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_sat");
    for n in [512usize, 1024, 2048] {
        group.throughput(Throughput::Elements((n * n) as u64));
        let input = workload(n);
        group.bench_with_input(BenchmarkId::new("2R2W(CPU)", n), &input, |b, input| {
            b.iter(|| {
                let mut a = input.clone();
                seq::sat_2r2w_cpu(&mut a);
                a
            });
        });
        group.bench_with_input(BenchmarkId::new("4R1W(CPU)", n), &input, |b, input| {
            b.iter(|| {
                let mut a = input.clone();
                seq::sat_4r1w_cpu(&mut a);
                a
            });
        });
    }
    group.finish();
}

fn bench_prefix_passes(c: &mut Criterion) {
    let n = 2048;
    let input = workload(n);
    let mut group = c.benchmark_group("prefix_pass");
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("column_raster", |b| {
        b.iter(|| {
            let mut a = input.clone();
            seq::column_prefix_inplace(&mut a);
            a
        });
    });
    group.bench_function("row", |b| {
        b.iter(|| {
            let mut a = input.clone();
            seq::row_prefix_inplace(&mut a);
            a
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cpu, bench_prefix_passes
}
criterion_main!(benches);
