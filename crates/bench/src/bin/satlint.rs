//! `satlint` — run the hmm-lint analyzer over every paper algorithm.
//!
//! Executes all six SAT kernels (2R2W, 4R4W, 4R1W, 2R1W, 1R1W, hybrid) on a
//! tracing device across a grid of machine configurations, holds each run
//! to its Table I contract, and prints a compiler-style report. Exits
//! nonzero when any kernel violates its contract, so the suite can serve as
//! a regression gate.
//!
//! ```text
//! cargo run --release -p sat-bench --bin satlint -- [--n 256] [--json PATH]
//! ```

use std::process::ExitCode;

use gpu_exec::{Device, DeviceOptions};
use hmm_lint::{analyze_run, KernelContract, RunAnalysis};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_bench::{flag_value, maybe_write_json, run_real};
use serde::{Deserialize, Serialize};

/// One analyzed (config, algorithm, size) cell, for `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SatlintRecord {
    config: String,
    width: usize,
    latency: u64,
    n: usize,
    algorithm: String,
    clean: bool,
    analysis: RunAnalysis,
}

/// The machine grid: the paper's width, a narrower machine, and a
/// low-latency one — enough to exercise width-dependent budgets.
fn machine_grid() -> Vec<(String, MachineConfig)> {
    vec![
        (
            "w=32 L=100 d=15 (paper)".to_string(),
            MachineConfig::with_width(32),
        ),
        ("w=16 L=100 d=15".to_string(), MachineConfig::with_width(16)),
        (
            "w=16 L=8 d=4".to_string(),
            MachineConfig::with_width(16).latency(8).num_dmms(4),
        ),
    ]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = match flag_value(&args, "--n").map(|v| v.parse::<usize>()) {
        None => 256,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("satlint: --n takes an integer (matrix side)");
            return ExitCode::FAILURE;
        }
    };
    let verbose = args.iter().any(|a| a == "--verbose");
    // The raw block kernels (unlike `compute_sat`, which pads) require the
    // matrix side to be a multiple of the machine width.
    if let Some((label, cfg)) = machine_grid()
        .into_iter()
        .find(|(_, cfg)| n == 0 || n % cfg.width != 0)
    {
        eprintln!(
            "satlint: --n {n} is not a positive multiple of w = {} (machine {label}); \
             pick a multiple of 32",
            cfg.width
        );
        return ExitCode::FAILURE;
    }

    let mut records = Vec::new();
    let mut dirty = 0usize;
    println!(
        "satlint: {} algorithms × {} machines, n = {n}",
        SatAlgorithm::ALL.len(),
        machine_grid().len()
    );
    println!();
    for (label, cfg) in machine_grid() {
        println!("== machine {label} ==");
        let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
        for alg in SatAlgorithm::ALL {
            let r = match alg {
                SatAlgorithm::HybridR1W => GlobalCost::new(cfg).optimal_r(n),
                _ => 0.0,
            };
            let (counters, _) = run_real(&dev, alg, r, n);
            let trace = dev.take_trace();
            let contract = KernelContract::for_algorithm(alg, n, cfg);
            let analysis = analyze_run(&trace, &counters, &cfg, &contract);
            if !analysis.report.is_clean() {
                dirty += 1;
            }
            print!("{}", analysis.report.render());
            if verbose {
                for w in &analysis.windows {
                    println!(
                        "    window {}: t = [{}, {}], {} blocks, {} UMM + {} DMM stages",
                        w.index, w.start, w.end, w.blocks, w.global_stages, w.shared_stages
                    );
                }
            }
            records.push(SatlintRecord {
                config: label.clone(),
                width: cfg.width,
                latency: cfg.latency,
                n,
                algorithm: alg.name().to_string(),
                clean: analysis.report.is_clean(),
                analysis,
            });
        }
        println!();
    }
    maybe_write_json(&args, &records);
    if dirty == 0 {
        println!("satlint: all {} runs clean", records.len());
        ExitCode::SUCCESS
    } else {
        println!("satlint: {dirty} of {} runs have findings", records.len());
        ExitCode::FAILURE
    }
}
