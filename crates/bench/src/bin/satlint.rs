//! `satlint` — run the hmm-lint analyzer over every paper algorithm.
//!
//! Executes all six SAT kernels (2R2W, 4R4W, 4R1W, 2R1W, 1R1W, hybrid) on a
//! tracing device across a grid of machine configurations, holds each run
//! to its Table I contract, and prints a compiler-style report. Exits
//! nonzero when any kernel violates its contract, so the suite can serve as
//! a regression gate.
//!
//! ```text
//! cargo run --release -p sat-bench --bin satlint -- [--n 256] [--json PATH]
//! ```

use std::process::ExitCode;

use gpu_exec::{Device, DeviceOptions};
use hmm_lint::{analyze_run, KernelContract, RunAnalysis};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_bench::{maybe_write_json, parsed_flag, run_real, workload};
use sat_core::par::sat_1r1w_batch;
use sat_core::Matrix;
use serde::{Deserialize, Serialize};

/// One analyzed (config, algorithm, size) cell, for `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SatlintRecord {
    config: String,
    width: usize,
    latency: u64,
    n: usize,
    algorithm: String,
    clean: bool,
    analysis: RunAnalysis,
}

/// The machine grid: the paper's width, a narrower machine, and a
/// low-latency one — enough to exercise width-dependent budgets.
fn machine_grid() -> Vec<(String, MachineConfig)> {
    vec![
        (
            "w=32 L=100 d=15 (paper)".to_string(),
            MachineConfig::with_width(32),
        ),
        ("w=16 L=100 d=15".to_string(), MachineConfig::with_width(16)),
        (
            "w=16 L=8 d=4".to_string(),
            MachineConfig::with_width(16).latency(8).num_dmms(4),
        ),
    ]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = parsed_flag(&args, "--n", 256);
    let batch: usize = parsed_flag(&args, "--batch", 0);
    let verbose = args.iter().any(|a| a == "--verbose");
    // The raw block kernels (unlike `compute_sat`, which pads) require the
    // matrix side to be a multiple of the machine width.
    if let Some((label, cfg)) = machine_grid()
        .into_iter()
        .find(|(_, cfg)| n == 0 || n % cfg.width != 0)
    {
        eprintln!(
            "satlint: --n {n} is not a positive multiple of w = {} (machine {label}); \
             pick a multiple of 32",
            cfg.width
        );
        return ExitCode::FAILURE;
    }

    let mut records = Vec::new();
    let mut dirty = 0usize;
    println!(
        "satlint: {} algorithms × {} machines, n = {n}",
        SatAlgorithm::ALL.len(),
        machine_grid().len()
    );
    println!();
    for (label, cfg) in machine_grid() {
        println!("== machine {label} ==");
        let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
        for alg in SatAlgorithm::ALL {
            let r = match alg {
                SatAlgorithm::HybridR1W => GlobalCost::new(cfg).optimal_r(n),
                _ => 0.0,
            };
            let (counters, _) = run_real(&dev, alg, r, n);
            let trace = dev.take_trace();
            let contract = KernelContract::for_algorithm(alg, n, cfg);
            let analysis = analyze_run(&trace, &counters, &cfg, &contract);
            if !analysis.report.is_clean() {
                dirty += 1;
            }
            print!("{}", analysis.report.render());
            if verbose {
                for w in &analysis.windows {
                    println!(
                        "    window {}: t = [{}, {}], {} blocks, {} UMM + {} DMM stages",
                        w.index, w.start, w.end, w.blocks, w.global_stages, w.shared_stages
                    );
                }
            }
            records.push(SatlintRecord {
                config: label.clone(),
                width: cfg.width,
                latency: cfg.latency,
                n,
                algorithm: alg.name().to_string(),
                clean: analysis.report.is_clean(),
                analysis,
            });
        }
        println!();
    }
    // `--batch B`: additionally lint the fused batched 1R1W launch sequence
    // the serving layer issues (`sat-service` → `sat_1r1w_batch`), holding
    // it to the single-image 1R1W structural rules and stride budget — the
    // batch fuses stages across images, so it must stay exactly as
    // coalesced, conflict-free and race-free as one image's wavefront.
    if batch > 0 {
        for (label, cfg) in machine_grid() {
            println!("== machine {label}, batched 1R1W x{batch} ==");
            let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
            let images: Vec<Matrix<f64>> = (0..batch)
                .map(|k| workload(n).map(|v| v + k as f64))
                .collect();
            let ins: Vec<_> = images
                .iter()
                .map(|m| gpu_exec::GlobalBuffer::from_vec(m.as_slice().to_vec()))
                .collect();
            let outs: Vec<_> = (0..batch)
                .map(|_| gpu_exec::GlobalBuffer::filled(0.0f64, n * n))
                .collect();
            dev.reset_stats();
            sat_1r1w_batch(
                &dev,
                &ins.iter().collect::<Vec<_>>(),
                &outs.iter().collect::<Vec<_>>(),
                n,
                n,
            );
            let counters = dev.stats();
            let trace = dev.take_trace();
            // Structural rules plus 1R1W's stride budget; the Table I
            // C/S/B row is per-image, so counter divergence is skipped.
            let mut contract = KernelContract::for_algorithm(SatAlgorithm::OneR1W, n, cfg);
            contract.name = format!("1R1W-batch{batch}");
            contract.expected = None;
            let analysis = analyze_run(&trace, &counters, &cfg, &contract);
            if !analysis.report.is_clean() {
                dirty += 1;
            }
            print!("{}", analysis.report.render());
            records.push(SatlintRecord {
                config: label.clone(),
                width: cfg.width,
                latency: cfg.latency,
                n,
                algorithm: format!("1R1W-batch{batch}"),
                clean: analysis.report.is_clean(),
                analysis,
            });
            println!();
        }
    }
    maybe_write_json(&args, &records);
    if dirty == 0 {
        println!("satlint: all {} runs clean", records.len());
        ExitCode::SUCCESS
    } else {
        println!("satlint: {dirty} of {} runs have findings", records.len());
        ExitCode::FAILURE
    }
}
