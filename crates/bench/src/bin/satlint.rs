//! `satlint` — run the hmm-lint analyzer over every paper algorithm.
//!
//! Executes all six SAT kernels (2R2W, 4R4W, 4R1W, 2R1W, 1R1W, hybrid) on a
//! tracing device across a grid of machine configurations, holds each run
//! to its Table I contract, and prints a compiler-style report. Exits
//! nonzero when any kernel violates its contract, so the suite can serve as
//! a regression gate.
//!
//! ```text
//! cargo run --release -p sat-bench --bin satlint -- [--n 256] [--json PATH]
//!     [--races] [--schedules K] [--seed S] [--fixtures]
//! ```
//!
//! * `--races` — print a summary of the schedule-generalizing race rules
//!   (`schedule-race`, `handoff-before-ready`) after the suite; the rules
//!   themselves always run as part of the analysis.
//! * `--schedules K` — additionally re-run every cell under `K` distinct
//!   block schedules (forward, reverse, adversarial, shuffled) and diff the
//!   outputs bit-exactly; any divergence marks the cell dirty.
//! * `--seed S` — seed for the explored schedule permutations (default 42).
//! * `--fixtures` — instead of the paper suite, run the deliberately-broken
//!   fixtures (and their fixed twins) through the analyzer *and* the
//!   schedule explorer, and check the two agree on every variant. Exits
//!   nonzero **by design** (broken fixtures must be flagged): exit 1 means
//!   the self-test passed with findings, exit 2 means the detectors
//!   disagreed somewhere.

use std::process::ExitCode;

use gpu_exec::replay::replay_schedules;
use gpu_exec::{Device, DeviceOptions};
use hmm_lint::fixtures::{run_fixture, Fixture};
use hmm_lint::{analyze_run, KernelContract, Rule, RunAnalysis, SCHEMA_VERSION};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_bench::{
    maybe_write_json, parsed_flag, run_fingerprint, run_persistent, run_persistent_fingerprint,
    run_real, workload,
};
use sat_core::par::sat_1r1w_batch;
use sat_core::Matrix;
use serde::{Deserialize, Serialize};

/// One analyzed (config, algorithm, size) cell, for `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SatlintRecord {
    schema_version: u32,
    config: String,
    width: usize,
    latency: u64,
    n: usize,
    algorithm: String,
    clean: bool,
    /// Block schedules explored by replay (1 = the recorded run only).
    schedules: usize,
    /// Explored schedules whose output diverged from the reference run.
    divergent: usize,
    analysis: RunAnalysis,
}

/// The machine grid: the paper's width, a narrower machine, and a
/// low-latency one — enough to exercise width-dependent budgets.
fn machine_grid() -> Vec<(String, MachineConfig)> {
    vec![
        (
            "w=32 L=100 d=15 (paper)".to_string(),
            MachineConfig::with_width(32),
        ),
        ("w=16 L=100 d=15".to_string(), MachineConfig::with_width(16)),
        (
            "w=16 L=8 d=4".to_string(),
            MachineConfig::with_width(16).latency(8).num_dmms(4),
        ),
    ]
}

/// Race-family findings in one analysis, for the `--races` summary.
fn race_counts(analysis: &RunAnalysis) -> (usize, usize) {
    (
        analysis.report.count(Rule::ScheduleRace),
        analysis.report.count(Rule::HandoffBeforeReady),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = parsed_flag(&args, "--n", 256);
    let batch: usize = parsed_flag(&args, "--batch", 0);
    let schedules: usize = parsed_flag(&args, "--schedules", 0);
    let seed: u64 = parsed_flag(&args, "--seed", 42);
    let verbose = args.iter().any(|a| a == "--verbose");
    let races = args.iter().any(|a| a == "--races");

    if args.iter().any(|a| a == "--fixtures") {
        return run_fixture_suite(schedules.max(4), seed, &args);
    }

    // The raw block kernels (unlike `compute_sat`, which pads) require the
    // matrix side to be a multiple of the machine width.
    if let Some((label, cfg)) = machine_grid()
        .into_iter()
        .find(|(_, cfg)| n == 0 || n % cfg.width != 0)
    {
        eprintln!(
            "satlint: --n {n} is not a positive multiple of w = {} (machine {label}); \
             pick a multiple of 32",
            cfg.width
        );
        return ExitCode::FAILURE;
    }

    let mut records = Vec::new();
    let mut dirty = 0usize;
    let mut race_findings = (0usize, 0usize);
    println!(
        "satlint: {} algorithms × {} machines, n = {n}",
        SatAlgorithm::ALL.len(),
        machine_grid().len()
    );
    println!();
    for (label, cfg) in machine_grid() {
        println!("== machine {label} ==");
        let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
        for alg in SatAlgorithm::ALL {
            let r = match alg {
                SatAlgorithm::HybridR1W => GlobalCost::new(cfg).optimal_r(n),
                _ => 0.0,
            };
            let (counters, _) = run_real(&dev, alg, r, n);
            let trace = dev.take_trace();
            let contract = KernelContract::for_algorithm(alg, n, cfg);
            let analysis = analyze_run(&trace, &counters, &cfg, &contract);
            if !analysis.report.is_clean() {
                dirty += 1;
            }
            let (sr, hbr) = race_counts(&analysis);
            race_findings.0 += sr;
            race_findings.1 += hbr;
            print!("{}", analysis.report.render());
            if verbose {
                for w in &analysis.windows {
                    println!(
                        "    window {}: t = [{}, {}], {} blocks, {} UMM + {} DMM stages",
                        w.index, w.start, w.end, w.blocks, w.global_stages, w.shared_stages
                    );
                }
            }
            let mut explored = 1;
            let mut divergent = 0;
            if schedules > 0 {
                let replay = replay_schedules(schedules, seed, |order| {
                    let rdev = Device::new(DeviceOptions::new(cfg).workers(0).order(order));
                    run_fingerprint(&rdev, alg, r, n)
                });
                explored = replay.schedules();
                divergent = replay.divergent.len();
                if divergent > 0 {
                    dirty += 1;
                    println!(
                        "  replay: {divergent} of {explored} schedules diverge \
                         bit-exactly from the forward run"
                    );
                } else {
                    println!("  replay: {explored} schedules bit-exact");
                }
            }
            records.push(SatlintRecord {
                schema_version: SCHEMA_VERSION,
                config: label.clone(),
                width: cfg.width,
                latency: cfg.latency,
                n,
                algorithm: alg.name().to_string(),
                clean: analysis.report.is_clean() && divergent == 0,
                schedules: explored,
                divergent,
                analysis,
            });
        }
        println!();
    }
    // The persistent-block 1R1W cell: one launch, handoff flags instead of
    // launch barriers. Always analyzed (it is a first-class execution mode,
    // not an opt-in extra): held to `KernelContract::for_persistent_1r1w`
    // — identical data movement plus flag words, zero barrier steps — and,
    // under `--schedules`, replayed on a multi-worker device so reverse /
    // adversarial / shuffled resident interleavings actually happen.
    for (label, cfg) in machine_grid() {
        println!("== machine {label}, persistent-block 1R1W ==");
        let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
        let (counters, _) = run_persistent(&dev, n);
        let trace = dev.take_trace();
        let contract = KernelContract::for_persistent_1r1w(n, cfg);
        let analysis = analyze_run(&trace, &counters, &cfg, &contract);
        if !analysis.report.is_clean() {
            dirty += 1;
        }
        let (sr, hbr) = race_counts(&analysis);
        race_findings.0 += sr;
        race_findings.1 += hbr;
        print!("{}", analysis.report.render());
        let mut explored = 1;
        let mut divergent = 0;
        if schedules > 0 {
            let replay = replay_schedules(schedules, seed, |order| {
                let rdev = Device::new(DeviceOptions::new(cfg).workers(3).order(order));
                run_persistent_fingerprint(&rdev, n)
            });
            explored = replay.schedules();
            divergent = replay.divergent.len();
            if divergent > 0 {
                dirty += 1;
                println!(
                    "  replay: {divergent} of {explored} schedules diverge \
                     bit-exactly from the forward run"
                );
            } else {
                println!("  replay: {explored} schedules bit-exact");
            }
        }
        records.push(SatlintRecord {
            schema_version: SCHEMA_VERSION,
            config: label.clone(),
            width: cfg.width,
            latency: cfg.latency,
            n,
            algorithm: contract.name.clone(),
            clean: analysis.report.is_clean() && divergent == 0,
            schedules: explored,
            divergent,
            analysis,
        });
        println!();
    }
    // `--batch B`: additionally lint the fused batched 1R1W launch sequence
    // the serving layer issues (`sat-service` → `sat_1r1w_batch`), holding
    // it to the single-image 1R1W structural rules and stride budget — the
    // batch fuses stages across images, so it must stay exactly as
    // coalesced, conflict-free and race-free as one image's wavefront.
    if batch > 0 {
        for (label, cfg) in machine_grid() {
            println!("== machine {label}, batched 1R1W x{batch} ==");
            let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
            let images: Vec<Matrix<f64>> = (0..batch)
                .map(|k| workload(n).map(|v| v + k as f64))
                .collect();
            let ins: Vec<_> = images
                .iter()
                .map(|m| gpu_exec::GlobalBuffer::from_vec(m.as_slice().to_vec()))
                .collect();
            let outs: Vec<_> = (0..batch)
                .map(|_| gpu_exec::GlobalBuffer::filled(0.0f64, n * n))
                .collect();
            dev.reset_stats();
            sat_1r1w_batch(
                &dev,
                &ins.iter().collect::<Vec<_>>(),
                &outs.iter().collect::<Vec<_>>(),
                n,
                n,
            );
            let counters = dev.stats();
            let trace = dev.take_trace();
            // Structural rules plus 1R1W's stride budget; the Table I
            // C/S/B row is per-image, so counter divergence is skipped.
            let mut contract = KernelContract::for_algorithm(SatAlgorithm::OneR1W, n, cfg);
            contract.name = format!("1R1W-batch{batch}");
            contract.expected = None;
            let analysis = analyze_run(&trace, &counters, &cfg, &contract);
            if !analysis.report.is_clean() {
                dirty += 1;
            }
            let (sr, hbr) = race_counts(&analysis);
            race_findings.0 += sr;
            race_findings.1 += hbr;
            print!("{}", analysis.report.render());
            records.push(SatlintRecord {
                schema_version: SCHEMA_VERSION,
                config: label.clone(),
                width: cfg.width,
                latency: cfg.latency,
                n,
                algorithm: format!("1R1W-batch{batch}"),
                clean: analysis.report.is_clean(),
                schedules: 1,
                divergent: 0,
                analysis,
            });
            println!();
        }
    }
    maybe_write_json(&args, &records);
    if races {
        println!(
            "satlint: race analysis: {} schedule-race, {} handoff-before-ready \
             finding(s) across {} runs",
            race_findings.0,
            race_findings.1,
            records.len()
        );
    }
    if dirty == 0 {
        println!("satlint: all {} runs clean", records.len());
        ExitCode::SUCCESS
    } else {
        println!("satlint: {dirty} of {} runs have findings", records.len());
        ExitCode::FAILURE
    }
}

/// `--fixtures`: the analyzer↔explorer agreement self-test.
///
/// Every deliberately-broken fixture must be flagged by the static
/// happens-before analysis *and* diverge under adversarial replay; every
/// fixed twin must be clean under both. Exit 1 (findings present, detectors
/// agree — the expected outcome), exit 2 (the detectors disagree — a bug in
/// one of them), exit 0 is impossible unless the fixtures stop being broken.
fn run_fixture_suite(k: usize, seed: u64, args: &[String]) -> ExitCode {
    let cfg = MachineConfig::with_width(8);
    let mut records = Vec::new();
    let mut dirty = 0usize;
    let mut disagreements = 0usize;
    println!(
        "satlint: {} fixtures × broken/fixed, {} schedules each (seed {seed})",
        Fixture::ALL.len(),
        k
    );
    println!();
    for fixture in Fixture::ALL {
        for broken in [true, false] {
            let dev = Device::new(DeviceOptions::new(cfg).workers(0).record_trace(true));
            run_fixture(&dev, fixture, broken);
            let counters = dev.stats();
            let trace = dev.take_trace();
            let contract = fixture.contract(broken);
            let analysis = analyze_run(&trace, &counters, &cfg, &contract);
            let statically_dirty = !analysis.report.is_clean();
            let replay = replay_schedules(k, seed, |order| {
                let rdev = Device::new(DeviceOptions::new(cfg).workers(0).order(order));
                run_fixture(&rdev, fixture, broken)
            });
            let divergent = replay.divergent.len();
            print!("{}", analysis.report.render());
            println!(
                "  replay: {} schedules, {divergent} divergent",
                replay.schedules()
            );
            if statically_dirty != (divergent > 0) {
                disagreements += 1;
                eprintln!(
                    "satlint: DETECTOR DISAGREEMENT on {}: analyzer dirty={statically_dirty}, \
                     replay divergent={divergent}",
                    contract.name
                );
            }
            if statically_dirty {
                dirty += 1;
            }
            records.push(SatlintRecord {
                schema_version: SCHEMA_VERSION,
                config: "w=8 L=100 d=15 (fixture rig)".to_string(),
                width: cfg.width,
                latency: cfg.latency,
                n: 0,
                algorithm: contract.name.clone(),
                clean: !statically_dirty && divergent == 0,
                schedules: replay.schedules(),
                divergent,
                analysis,
            });
            println!();
        }
    }
    maybe_write_json(args, &records);
    if disagreements > 0 {
        println!(
            "satlint: {disagreements} disagreement(s) between analyzer and replay — \
             one of the detectors is broken"
        );
        return ExitCode::from(2);
    }
    println!(
        "satlint: analyzer and replay agree on all {} fixture runs \
         ({dirty} broken variants flagged, as designed)",
        records.len()
    );
    // Findings are the *expected* outcome here: a gate wiring `--fixtures`
    // must assert a nonzero exit.
    ExitCode::FAILURE
}
