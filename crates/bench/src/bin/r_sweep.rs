//! Sweep the hybrid ratio `r` (Figure 12 / the `(1+r²)R1W` and `r` rows of
//! Table II): for each size, evaluate the hybrid's cost over all admissible
//! ratios, report the minimiser, and (for small sizes) confirm with
//! measured executions.
//!
//! ```sh
//! cargo run --release -p sat-bench --bin r_sweep [-- --measure-n 1024] [--json r.jsonl]
//! ```

use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_bench::{
    bench_device, maybe_write_json, parsed_flag, run_real, size_label, table2_sizes, units_to_ms,
};
use serde::Serialize;

#[derive(Serialize)]
struct SweepRecord {
    n: usize,
    r: f64,
    cost_units: f64,
    measured: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let measure_n: usize = parsed_flag(&args, "--measure-n", 1024);
    let cfg = MachineConfig::gtx780ti();
    let gc = GlobalCost::new(cfg);
    let mut records = Vec::new();

    println!("HYBRID RATIO SWEEP — cost(r) per size (model), best r per size\n");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "n", "best r", "cost(0)=1R1W", "cost(best)", "cost(1)", "gain vs 1R1W"
    );
    for n in table2_sizes() {
        let r = gc.optimal_r(n);
        let c0 = gc.hybrid(n, 0.0);
        let cb = gc.hybrid(n, r);
        let c1 = gc.hybrid(n, 1.0);
        println!(
            "{:<6} {:>10.4} {:>12.0} {:>12.0} {:>12.0} {:>13.1}%",
            size_label(n),
            r,
            c0,
            cb,
            c1,
            100.0 * (c0 - cb) / c0
        );
        for rr in gc
            .admissible_ratios(n)
            .iter()
            .step_by((n / cfg.width / 16).max(1))
        {
            records.push(SweepRecord {
                n,
                r: *rr,
                cost_units: gc.hybrid(n, *rr),
                measured: false,
            });
        }
    }

    // Measured confirmation at one size: run the hybrid for every admissible
    // r and compare the measured-cost minimiser with the model's.
    let n = measure_n;
    let m = n / cfg.width;
    let dev = bench_device(cfg);
    println!("\nmeasured sweep at n = {n} (all {m} admissible ratios):");
    println!("{:>8} {:>14} {:>12}", "r", "cost (units)", "cost (ms)");
    let mut best = (f64::INFINITY, 0.0);
    for k in 0..=m {
        let r = k as f64 / m as f64;
        let (s, _) = run_real(&dev, SatAlgorithm::HybridR1W, r, n);
        let cost = s.global_cost(&cfg);
        if cost < best.0 {
            best = (cost, r);
        }
        if k % (m / 16).max(1) == 0 || k == m {
            println!("{:>8.4} {:>14.0} {:>12.3}", r, cost, units_to_ms(cost));
        }
        records.push(SweepRecord {
            n,
            r,
            cost_units: cost,
            measured: true,
        });
    }
    println!(
        "\nmeasured best r = {:.4} (cost {:.0}); model best r = {:.4}",
        best.1,
        best.0,
        gc.optimal_r(n)
    );
    maybe_write_json(&args, &records);
}
