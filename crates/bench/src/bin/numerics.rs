//! Floating-point accuracy of the SAT algorithms (an experiment the paper
//! does not run — its evaluation uses 64-bit matrices throughout — but one
//! that matters to adopters filtering `f32` images).
//!
//! ```sh
//! cargo run --release -p sat-bench --bin numerics [-- --n 1024]
//! ```
//!
//! All algorithms compute the same sums in different association orders.
//! The raster baselines accumulate `O(n)`-long carry chains; the block
//! algorithms sum `w × w` tiles first and combine partial sums — a
//! pairwise-flavoured order with provably smaller error growth. Measured
//! here as the maximum relative error of the `f32` SAT against an exact
//! `f64` reference.

use gpu_exec::{Device, DeviceOptions, GlobalBuffer};
use hmm_model::cost::SatAlgorithm;
use hmm_model::MachineConfig;
use sat_bench::parsed_flag;
use sat_core::{compute_sat, par, seq, Matrix};

/// Max |f32 − f64| over all entries, normalised by the largest |f64| SAT
/// value (entry-wise relative error is meaningless where sums cancel to
/// near zero).
fn max_rel_error(sat32: &Matrix<f32>, sat64: &Matrix<f64>) -> f64 {
    let scale = sat64
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1.0);
    let mut worst = 0.0f64;
    for (a, b) in sat32.as_slice().iter().zip(sat64.as_slice()) {
        worst = worst.max((*a as f64 - b).abs());
    }
    worst / scale
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = parsed_flag(&args, "--n", 1024);
    let dev = Device::new(DeviceOptions::new(MachineConfig::with_width(32)).record_stats(false));

    // An adversarial-ish workload: non-representable fractions with sign
    // structure, so every addition rounds and cancellation amplifies the
    // order differences (integer-valued inputs would stay exact below 2²⁴).
    let img32 = Matrix::from_fn(n, n, |i, j| {
        let v = ((i * 2654435761usize) ^ (j * 40503)) % 10_000;
        (v as f32) / 3.0 - 1666.6667
    });
    let img64 = img32.map(|v| v as f64);
    let reference = seq::sat_reference(&img64);

    println!("f32 SAT accuracy vs f64 reference, n = {n} (values in [−5000, 5000))\n");
    println!("{:<14} {:>16}", "algorithm", "max rel error");

    // Sequential baselines.
    {
        let mut a = img32.clone();
        seq::sat_2r2w_cpu(&mut a);
        println!(
            "{:<14} {:>16.3e}",
            "2R2W(CPU)",
            max_rel_error(&a, &reference)
        );
    }
    {
        let mut a = img32.clone();
        seq::sat_4r1w_cpu(&mut a);
        println!(
            "{:<14} {:>16.3e}",
            "4R1W(CPU)",
            max_rel_error(&a, &reference)
        );
    }
    // Device algorithms (block summation orders).
    for alg in [
        SatAlgorithm::TwoR2W,
        SatAlgorithm::FourR4W,
        SatAlgorithm::TwoR1W,
        SatAlgorithm::OneR1W,
        SatAlgorithm::HybridR1W,
    ] {
        let sat = compute_sat(&dev, alg, &img32);
        println!(
            "{:<14} {:>16.3e}",
            alg.name(),
            max_rel_error(&sat, &reference)
        );
    }
    // The log-step algorithm (pairwise association — the most accurate).
    {
        let buf = GlobalBuffer::from_vec(img32.as_slice().to_vec());
        let tmp = GlobalBuffer::filled(0.0f32, n * n);
        par::sat_kogge_stone(&dev, &buf, &tmp, n, n);
        let sat = Matrix::from_vec(n, n, buf.into_vec());
        println!(
            "{:<14} {:>16.3e}",
            "Kogge-Stone",
            max_rel_error(&sat, &reference)
        );
    }
    println!("\nThe block algorithms' tile-first summation behaves like pairwise");
    println!("summation across blocks; the raster baselines carry O(n)-long chains.");
}
