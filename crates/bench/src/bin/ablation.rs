//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **diagonal vs row-major** shared-memory arrangement (Lemma 1):
//!    bank-conflict stages of the block transpose and of the in-shared SAT;
//! 2. **latency sensitivity**: cost of each algorithm as `Λ` varies
//!    (the wavefront algorithms degrade linearly, the block ones barely);
//! 3. **width sensitivity**: cost at `w ∈ {16, 32, 64}`;
//! 4. **2R1W recursion depth**: barrier count with and without recursion.
//!
//! ```sh
//! cargo run --release -p sat-bench --bin ablation [-- --n 1024]
//! ```

use gpu_exec::{GlobalBuffer, TileLayout};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_bench::{bench_device, parsed_flag, run_real, workload};
use sat_core::par::{sat_1r1w, sat_1r1w_mirror};
use sat_core::transpose::transpose_with_layout;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = parsed_flag(&args, "--n", 1024);

    // 1. Diagonal arrangement ablation.
    println!("ABLATION 1 — diagonal vs row-major shared tiles (transpose of {n} x {n}, w = 32)");
    println!(
        "{:>12} {:>16} {:>18}",
        "layout", "shared stages", "conflict factor"
    );
    let mut base = 0u64;
    for layout in [TileLayout::Diagonal, TileLayout::RowMajor] {
        let cfg = MachineConfig::with_width(32);
        let dev = bench_device(cfg);
        let src = GlobalBuffer::from_vec(workload(n).into_vec());
        let dst = GlobalBuffer::filled(0.0f64, n * n);
        dev.reset_stats();
        transpose_with_layout(&dev, &src, &dst, n, n, layout);
        let stages = dev.stats().shared_stages;
        if base == 0 {
            base = stages;
        }
        println!(
            "{:>12} {:>16} {:>17.1}x",
            format!("{layout:?}"),
            stages,
            stages as f64 / base as f64
        );
    }

    // 2. Latency sensitivity (cost model, which Table I validated).
    println!("\nABLATION 2 — window overhead Λ sensitivity at n = {n} (cost in time units)");
    print!("{:<12}", "algorithm");
    let lambdas = [100u64, 400, 1600, 3300, 6400];
    for l in lambdas {
        print!("{:>12}", format!("Λ={l}"));
    }
    println!();
    for alg in SatAlgorithm::ALL {
        print!("{:<12}", alg.name());
        for l in lambdas {
            let cfg = MachineConfig::with_width(32).latency(l);
            let gc = GlobalCost::new(cfg);
            print!("{:>12.0}", gc.cost(alg, n));
        }
        println!();
    }
    println!("(4R1W and 1R1W scale with Λ; the block algorithms barely move — why the crossover shifts with Λ)");

    // 3. Width sensitivity.
    println!("\nABLATION 3 — width w sensitivity at n = {n} (cost in time units)");
    print!("{:<12}", "algorithm");
    let widths = [16usize, 32, 64];
    for w in widths {
        print!("{:>12}", format!("w={w}"));
    }
    println!();
    for alg in SatAlgorithm::ALL {
        print!("{:<12}", alg.name());
        for w in widths {
            let cfg = MachineConfig::with_width(w).latency(3300);
            let gc = GlobalCost::new(cfg);
            print!("{:>12.0}", gc.cost(alg, n));
        }
        println!();
    }

    // 4. 2R1W recursion depth (measured barrier counts).
    println!("\nABLATION 4 — 2R1W recursion (measured barrier steps)");
    println!("{:>8} {:>6} {:>8} {:>10}", "n", "w", "depth k", "barriers");
    for (w, nn) in [(32usize, 1024usize), (32, 2048), (8, 1024), (8, 2048)] {
        let cfg = MachineConfig::with_width(w);
        let gc = GlobalCost::new(cfg);
        let dev = bench_device(cfg);
        let (s, _) = run_real(&dev, SatAlgorithm::TwoR1W, 0.0, nn);
        println!(
            "{:>8} {:>6} {:>8} {:>10}",
            nn,
            w,
            gc.recursion_depth(nn),
            s.barrier_steps
        );
    }
    println!(
        "(k = 0 ⇒ 2 barriers; each recursion level adds one fused prefix+pad launch and its own 3)"
    );

    // 5. 1R1W left-fringe strategy: stride column reads vs coalesced mirror.
    println!("\nABLATION 5 — 1R1W left fringe: stride column read vs transposed mirror (n = {n})");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14}",
        "variant", "stride ops", "coalesced ops", "cost (units)", "Δcost"
    );
    let cfg = MachineConfig::gtx780ti();
    let mut base_cost = 0.0;
    for (name, mirror) in [("plain", false), ("mirror", true)] {
        let dev = bench_device(cfg);
        let a = GlobalBuffer::from_vec(workload(n).into_vec());
        let s = GlobalBuffer::filled(0.0f64, n * n);
        dev.reset_stats();
        if mirror {
            sat_1r1w_mirror(&dev, &a, &s, n, n);
        } else {
            sat_1r1w(&dev, &a, &s, n, n);
        }
        let st = dev.stats();
        let cost = st.global_cost(&cfg);
        if base_cost == 0.0 {
            base_cost = cost;
        }
        println!(
            "{:>10} {:>12} {:>14} {:>14.0} {:>13.2}%",
            name,
            st.stride_ops(),
            st.coalesced_ops(),
            cost,
            100.0 * (cost - base_cost) / base_cost
        );
    }
    println!("(the mirror trades w stride reads per block for w+... coalesced writes: cheaper whenever w > 2)");
}
