//! satprof — profile SAT algorithm executions (or a serving-layer burst)
//! into a Perfetto-loadable Chrome trace plus a per-algorithm counter
//! report checked against the paper's closed forms.
//!
//! ```sh
//! cargo run --release -p sat-bench --bin satprof -- --algo 1r1w --n 1024
//! open https://ui.perfetto.dev  # and load trace.json
//! ```
//!
//! Flags:
//!
//! * `--algo NAME|all` — which algorithm(s) to profile (default `1r1w`);
//! * `--n SIZE` — square matrix side (default 1024);
//! * `--width W` — machine width (default 32);
//! * `--trace PATH` — where to write the Chrome trace (default
//!   `trace.json`); the file is re-parsed and schema-validated after
//!   writing;
//! * `--sim` — additionally replay each run through the discrete-event
//!   machine and export its timeline on the simulated clock (trace
//!   process 2), overlaying model time next to wall time;
//! * `--burst K` — instead of bare algorithm runs, push `K` requests
//!   through a `sat-service` instance sharing the same observer, then
//!   print its Prometheus exposition; the burst's trace goes through the
//!   same `chrome::validate` schema gate as the single-algo path, and the
//!   exposition must carry the request-latency histogram series;
//! * `--phases` — print each algorithm's per-launch cost attribution
//!   table (`obs::profile`); the attribution counter tracks land in the
//!   trace regardless, so Perfetto overlays modeled-vs-measured cost;
//! * `--check` — verify measured C/S/B counters against `hmm_model`'s
//!   closed forms (exact equality for 1R1W on block-aligned sizes, the
//!   Table I leading terms within 25% otherwise) **and** that the
//!   trace-reconstructed attribution totals agree with the device's own
//!   counters, exiting nonzero on any mismatch;
//! * `--conformance` — attach a live [`obs::Conformance`] tracker to every
//!   profiled device and print its report afterwards: the online (w, Λ)
//!   estimate recovered from the profiled launches cross-checked against
//!   the configured machine and the offline closed forms, per-cell
//!   residual statistics, and any drift alerts. Combined with `--check`
//!   the online fit must converge and match the configured machine within
//!   the tracker's tolerance (the fit regresses counter-derived model
//!   units, so this gate is deterministic; wall-clock drift alerts are
//!   reported but not gated).
//!
//! Recording overhead: the observer's disabled path is a no-op (no clock
//! reads, no allocation — asserted by `obs`'s `disabled_path_is_cheap`
//! benchmark test), so the instrumented binaries pay nothing unless a
//! trace was requested.

use std::process::ExitCode;
use std::time::Duration;

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use hmm_sim::{export_sim_timeline, trace_and_simulate};
use obs::profile::{attribution_from_trace, CostModel, PhaseReport};
use obs::{ArgValue, Obs, Registry, Track};
use sat_bench::{flag_value, parsed_flag, run_persistent, run_real, workload};
use sat_service::{Service, ServiceConfig};

fn algo_by_name(s: &str) -> Option<SatAlgorithm> {
    SatAlgorithm::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(s))
}

/// Sum of the device's registry counters relevant to the C/S/B check.
fn device_counter_totals(reg: &Registry) -> (u64, u64) {
    let snap = reg.snapshot();
    let total = |name: &str| snap.counter(name).map_or(0, |c| c.total);
    (total("gpu_coalesced_ops"), total("gpu_stride_ops"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algo_flag = flag_value(&args, "--algo").unwrap_or_else(|| "1r1w".to_string());
    let n: usize = parsed_flag(&args, "--n", 1024);
    let width: usize = parsed_flag(&args, "--width", 32);
    let trace_path = flag_value(&args, "--trace").unwrap_or_else(|| "trace.json".to_string());
    let burst: usize = parsed_flag(&args, "--burst", 0);
    let check = args.iter().any(|a| a == "--check");
    let sim = args.iter().any(|a| a == "--sim");
    let phases = args.iter().any(|a| a == "--phases");
    let conformance = args.iter().any(|a| a == "--conformance");

    // `1r1w-persist` is the persistent-block execution mode of 1R1W — a
    // named cell, not a `SatAlgorithm` variant. `--algo all` includes it.
    let all = algo_flag.eq_ignore_ascii_case("all");
    let persist_only = algo_flag.eq_ignore_ascii_case("1r1w-persist");
    let with_persistent = all || persist_only;
    let algorithms: Vec<SatAlgorithm> = if all {
        SatAlgorithm::ALL.to_vec()
    } else if persist_only {
        Vec::new()
    } else {
        match algo_by_name(&algo_flag) {
            Some(a) => vec![a],
            None => {
                eprintln!(
                    "error: --algo got unknown algorithm {algo_flag:?} \
                     (expected one of {}, 1r1w-persist or all)",
                    SatAlgorithm::ALL.map(|a| a.name()).join(", ")
                );
                return ExitCode::from(2);
            }
        }
    };

    // Bare runs drive the raw kernels, which (unlike the padding
    // `compute_sat` path the `--burst` service uses) require block-aligned
    // sides; fail cleanly instead of panicking mid-kernel.
    if burst == 0 && (n == 0 || n % width != 0) {
        eprintln!("error: --n {n} must be a positive multiple of --width {width}");
        return ExitCode::from(2);
    }

    let cfg = MachineConfig::with_width(width);
    let gc = GlobalCost::new(cfg);
    let obs = Obs::new();
    let registry = obs.registry().expect("enabled observer has a registry");
    // One shared tracker across every profiled device, so the online fit
    // regresses over all algorithms' launches at once (varied (C, S, B)
    // conditions the least-squares system far better than one shape).
    let tracker = conformance.then(|| {
        obs::Conformance::with_registry(
            obs::ConformanceConfig::for_machine(cfg.width as u64, cfg.window_overhead()),
            &registry,
            "sat_service_",
        )
    });
    let mut failed = false;

    if burst > 0 {
        failed |= !run_burst(&obs, cfg, n, burst);
    } else {
        println!("satprof — machine w = {width}, matrix {n} x {n}");
        println!(
            "{:<11} | {:>13} {:>13} | {:>11} {:>11} | {:>9} {:>9} | check",
            "algorithm",
            "coal meas",
            "coal pred",
            "stride meas",
            "stride pred",
            "barr meas",
            "barr pred"
        );
        for alg in algorithms {
            if alg == SatAlgorithm::FourR1W && n > 1024 {
                println!("{:<11} | skipped (2n-1 launches prohibitive)", alg.name());
                continue;
            }
            failed |= !profile_algorithm(
                &obs,
                &registry,
                &gc,
                cfg,
                alg,
                n,
                check,
                sim,
                phases,
                tracker.as_ref(),
            );
        }
        if with_persistent {
            failed |= !profile_persistent(
                &obs,
                &registry,
                &gc,
                cfg,
                n,
                check,
                phases,
                tracker.as_ref(),
            );
        }
    }

    if let Some(t) = &tracker {
        failed |= !report_conformance(t, cfg, check);
    }

    let json = obs.trace_json();
    if let Err(e) = std::fs::write(&trace_path, &json) {
        eprintln!("error: writing {trace_path}: {e}");
        return ExitCode::FAILURE;
    }
    match obs::chrome::validate(&json) {
        Ok(stats) => println!(
            "\nwrote {trace_path}: {} events ({} complete spans, {} instants, {} counter samples) — load it at ui.perfetto.dev",
            stats.events, stats.complete, stats.instants, stats.counters
        ),
        Err(e) => {
            eprintln!("error: {trace_path} failed trace-schema validation: {e}");
            failed = true;
        }
    }

    if failed {
        eprintln!("satprof: CHECK FAILED");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Profile one algorithm on a fresh observed device; returns `false` when
/// `check` was requested and the counters diverge from the closed forms.
#[allow(clippy::too_many_arguments)]
fn profile_algorithm(
    obs: &Obs,
    registry: &Registry,
    gc: &GlobalCost,
    cfg: MachineConfig,
    alg: SatAlgorithm,
    n: usize,
    check: bool,
    sim: bool,
    phases: bool,
    tracker: Option<&obs::Conformance>,
) -> bool {
    let r = if alg == SatAlgorithm::HybridR1W {
        gc.optimal_r(n)
    } else {
        0.0
    };
    let model = CostModel {
        width: cfg.width as u64,
        window_overhead: cfg.window_overhead(),
    };
    let mut opts = DeviceOptions::new(cfg).workers(0).observer(obs.clone());
    if let Some(t) = tracker {
        opts = opts.conformance(t.clone());
    }
    let dev = Device::new(opts);
    if tracker.is_some() {
        dev.set_conformance_cell(Some(obs::conformance::cell_label(alg.name(), n, n)));
    }
    let (coal_before, stride_before) = device_counter_totals(registry);
    // The trace is shared across algorithms; remember how many launch rows
    // it already holds so this algorithm's attribution covers only its own.
    let rows_before = attribution_from_trace(obs, model).rows.len();
    let mut guard = obs.span(Track::wall(0), alg.name());
    guard.arg("n", ArgValue::from(n));
    let (stats, _) = run_real(&dev, alg, r, n);
    drop(guard);

    // The registry's cumulative device counters must agree with the
    // device's own statistics — the two observation paths cross-check.
    let (coal_after, stride_after) = device_counter_totals(registry);
    let coal_meas = coal_after - coal_before;
    let stride_meas = stride_after - stride_before;
    assert_eq!(
        coal_meas,
        stats.coalesced_reads + stats.coalesced_writes,
        "registry and device stats diverged (coalesced)"
    );
    assert_eq!(
        stride_meas,
        stats.stride_reads + stats.stride_writes,
        "registry and device stats diverged (stride)"
    );

    // Per-launch cost attribution, reconstructed from the launch spans this
    // algorithm just appended to the trace. The counter tracks go back into
    // the same trace so Perfetto overlays modeled cost next to wall time.
    let attribution = PhaseReport {
        model,
        rows: attribution_from_trace(obs, model).rows[rows_before..].to_vec(),
    };
    attribution.export_counter_tracks(obs);
    if phases {
        println!(
            "\nper-launch attribution — {}:\n{}",
            alg.name(),
            attribution.to_table()
        );
    }
    let at = attribution.total();
    let attr_ok = at.coalesced_ops == coal_meas
        && at.stride_ops == stride_meas
        && at.barrier_steps == stats.barrier_steps;
    if !attr_ok {
        eprintln!(
            "{}: attribution totals diverge from device counters \
             (C {} vs {}, S {} vs {}, B {} vs {})",
            alg.name(),
            at.coalesced_ops,
            coal_meas,
            at.stride_ops,
            stride_meas,
            at.barrier_steps,
            stats.barrier_steps
        );
    }

    if sim {
        let run = trace_and_simulate(cfg, |d| {
            run_real(d, alg, r, n);
        });
        export_sim_timeline(obs, &run.sim, alg.name());
    }

    // Closed forms: exact for 1R1W on block-aligned squares, Table I
    // leading terms otherwise.
    let ok = if let Some(exact) = gc.exact_counts(alg, n) {
        let ok = exact.matches(&stats);
        print_row(
            alg.name(),
            coal_meas,
            exact.coalesced_ops(),
            stride_meas,
            exact.stride_ops(),
            stats.barrier_steps,
            exact.barrier_steps,
            if ok { "exact" } else { "MISMATCH" },
        );
        ok
    } else {
        let row = gc.table_one_row(alg, n);
        let coal_pred = row.coalesced_reads + row.coalesced_writes;
        let stride_pred = row.stride_reads + row.stride_writes;
        // 25% relative slack plus an additive O(n) term: the closed forms
        // are leading terms and drop fringe work (e.g. 4R1W's column pass
        // touches a handful of coalesced words its 0-term ignores).
        let within = |meas: u64, pred: f64| (meas as f64 - pred).abs() <= pred * 0.25 + n as f64;
        let ok = within(coal_meas, coal_pred)
            && within(stride_meas, stride_pred)
            && within(stats.barrier_steps, row.barrier_steps);
        print_row(
            alg.name(),
            coal_meas,
            coal_pred.round() as u64,
            stride_meas,
            stride_pred.round() as u64,
            stats.barrier_steps,
            row.barrier_steps.round() as u64,
            if ok { "~25%" } else { "MISMATCH" },
        );
        ok
    };
    !check || (ok && attr_ok)
}

/// Profile the **persistent-block** 1R1W driver: the whole wavefront in a
/// single launch with flagged handoffs instead of launch barriers. Checked
/// against [`GlobalCost::persistent_1r1w_exact_counts`] — 1R1W's exact data
/// movement plus one coalesced word per flag operation, and zero barrier
/// steps — and the run must really have been one launch.
#[allow(clippy::too_many_arguments)]
fn profile_persistent(
    obs: &Obs,
    registry: &Registry,
    gc: &GlobalCost,
    cfg: MachineConfig,
    n: usize,
    check: bool,
    phases: bool,
    tracker: Option<&obs::Conformance>,
) -> bool {
    const NAME: &str = "1R1W-persist";
    let model = CostModel {
        width: cfg.width as u64,
        window_overhead: cfg.window_overhead(),
    };
    let mut opts = DeviceOptions::new(cfg).workers(0).observer(obs.clone());
    if let Some(t) = tracker {
        opts = opts.conformance(t.clone());
    }
    let dev = Device::new(opts);
    if tracker.is_some() {
        dev.set_conformance_cell(Some(obs::conformance::cell_label(NAME, n, n)));
    }
    let (coal_before, stride_before) = device_counter_totals(registry);
    let rows_before = attribution_from_trace(obs, model).rows.len();
    let mut guard = obs.span(Track::wall(0), NAME);
    guard.arg("n", ArgValue::from(n));
    let (stats, _) = run_persistent(&dev, n);
    drop(guard);

    let (coal_after, stride_after) = device_counter_totals(registry);
    let coal_meas = coal_after - coal_before;
    let stride_meas = stride_after - stride_before;
    assert_eq!(
        coal_meas,
        stats.coalesced_reads + stats.coalesced_writes,
        "registry and device stats diverged (coalesced)"
    );
    assert_eq!(
        stride_meas,
        stats.stride_reads + stats.stride_writes,
        "registry and device stats diverged (stride)"
    );

    // The persistent launch span is still named "launch" (with a
    // `mode: persistent` arg), so attribution reconstruction covers it.
    let attribution = PhaseReport {
        model,
        rows: attribution_from_trace(obs, model).rows[rows_before..].to_vec(),
    };
    attribution.export_counter_tracks(obs);
    if phases {
        println!(
            "\nper-launch attribution — {NAME}:\n{}",
            attribution.to_table()
        );
    }
    let at = attribution.total();
    let attr_ok = at.coalesced_ops == coal_meas
        && at.stride_ops == stride_meas
        && at.barrier_steps == stats.barrier_steps;
    if !attr_ok {
        eprintln!(
            "{NAME}: attribution totals diverge from device counters \
             (C {} vs {}, S {} vs {}, B {} vs {})",
            at.coalesced_ops,
            coal_meas,
            at.stride_ops,
            stride_meas,
            at.barrier_steps,
            stats.barrier_steps
        );
    }

    let exact = gc
        .persistent_1r1w_exact_counts(n)
        .expect("satprof already rejected non-block-aligned sizes");
    let single_launch = dev.launches() == 1;
    let ok = exact.matches(&stats) && single_launch;
    print_row(
        NAME,
        coal_meas,
        exact.coalesced_ops(),
        stride_meas,
        exact.stride_ops(),
        stats.barrier_steps,
        exact.barrier_steps,
        if ok {
            "exact"
        } else if single_launch {
            "MISMATCH"
        } else {
            "MISMATCH (not one launch)"
        },
    );
    !check || (ok && attr_ok)
}

/// Print the online estimator's view of the profiled launches and
/// cross-check it against the configured machine. With `check`, the fit
/// must converge and recover (w, Λ) within the tracker's tolerance — a
/// deterministic gate, since the estimator regresses counter-derived model
/// units. Wall-clock drift alerts are printed but never gated here: a
/// loaded profiling host legitimately wobbles τ.
fn report_conformance(tracker: &obs::Conformance, cfg: MachineConfig, check: bool) -> bool {
    let fit = tracker.fit();
    let tol = tracker.config().fit_tolerance;
    println!(
        "\nmodel conformance — online fit over {} profiled launches:",
        fit.samples
    );
    println!(
        "  fitted w {:.3} / Λ {:.2} vs configured {} / {} (rms {:.4}, converged {})",
        fit.width,
        fit.window_overhead,
        cfg.width,
        cfg.window_overhead(),
        fit.residual_rms,
        fit.converged
    );
    println!(
        "  {:<24} | {:>8} | {:>12} | {:>12} | drifted",
        "cell", "samples", "tau ns/unit", "resid (rel)"
    );
    for cell in tracker.cells() {
        println!(
            "  {:<24} | {:>8} | {:>12.3} | {:>12.5} | {}",
            cell.cell,
            cell.samples,
            cell.ewma_tau * 1e9,
            cell.mean_abs_residual,
            cell.drifted
        );
    }
    for alert in tracker.alerts() {
        println!(
            "  drift alert: {} via {} (τ ratio {:.2} over {} samples)",
            alert.cell, alert.channel, alert.ratio, alert.samples
        );
    }
    let ok = fit.matches(cfg.width as u64, cfg.window_overhead(), tol);
    if check && !ok {
        eprintln!(
            "conformance: online fit does not recover the configured machine \
             (w {:.3} vs {}, Λ {:.2} vs {}, tol {tol})",
            fit.width,
            cfg.width,
            fit.window_overhead,
            cfg.window_overhead()
        );
    }
    !check || ok
}

#[allow(clippy::too_many_arguments)]
fn print_row(
    name: &str,
    coal_meas: u64,
    coal_pred: u64,
    stride_meas: u64,
    stride_pred: u64,
    barr_meas: u64,
    barr_pred: u64,
    verdict: &str,
) {
    println!(
        "{:<11} | {:>13} {:>13} | {:>11} {:>11} | {:>9} {:>9} | {}",
        name, coal_meas, coal_pred, stride_meas, stride_pred, barr_meas, barr_pred, verdict
    );
}

/// Push `burst` same-shape 1R1W requests through a service sharing `obs`,
/// then print its Prometheus exposition. Returns `false` when the burst
/// produced no trace events or the exposition lacks the request-latency
/// histogram series (`_bucket`/`_sum`/`_count`) — the caller then also
/// schema-validates the written trace, exactly like the single-algo path.
fn run_burst(obs: &Obs, machine: MachineConfig, n: usize, burst: usize) -> bool {
    println!("satprof — burst of {burst} requests ({n} x {n}, 1R1W) through sat-service");
    let service = Service::start(ServiceConfig {
        machine,
        max_linger: Duration::from_millis(2),
        observer: obs.clone(),
        ..ServiceConfig::default()
    });
    std::thread::scope(|s| {
        for t in 0..4usize {
            let client = service.client();
            s.spawn(move || {
                for k in 0..burst.div_ceil(4) {
                    if t * burst.div_ceil(4) + k >= burst {
                        break;
                    }
                    let img = workload(n);
                    let _ = client.submit(img, SatAlgorithm::OneR1W, None);
                }
            });
        }
    });
    let text = service.metrics_text();
    println!("\n{text}");
    let stats = service.shutdown();
    println!(
        "completed {} requests in {} batches (mean width {:.2}, {} launches saved)",
        stats.completed,
        stats.batches,
        stats.mean_batch_width(),
        stats.launches_saved()
    );
    let mut ok = true;
    for series in [
        "sat_service_request_latency_seconds_bucket{le=",
        "sat_service_request_latency_seconds_sum",
        "sat_service_request_latency_seconds_count",
    ] {
        if !text.contains(series) {
            eprintln!("error: burst exposition is missing {series}…");
            ok = false;
        }
    }
    if obs.event_count() == 0 {
        eprintln!("error: burst produced no trace events");
        ok = false;
    }
    ok
}
