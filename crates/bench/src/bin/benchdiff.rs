//! benchdiff — the gated benchmark trajectory: measure every algorithm at
//! fixed sizes, write a canonical `BENCH_perf.json`, append the run to a
//! committed `BENCH_history.jsonl`, and **fail** when the current tree
//! regresses against the committed baseline.
//!
//! ```sh
//! cargo run --release -p sat-bench --bin benchdiff            # compare
//! cargo run --release -p sat-bench --bin benchdiff -- --write # re-baseline
//! ```
//!
//! Flags:
//!
//! * `--sizes LIST` — comma-separated matrix sides (default `128,256`);
//! * `--width W` — machine width (default 32);
//! * `--runs K` — timing repetitions per cell; the median is kept
//!   (default 5);
//! * `--baseline PATH` — baseline to compare against (default
//!   `BENCH_perf.json`);
//! * `--history PATH` — history file `--write` appends to (default
//!   `BENCH_history.jsonl`);
//! * `--tolerance F` — relative band for the calibration-normalized wall
//!   clock (default 0.6, i.e. ±60%);
//! * `--write` — rewrite the baseline from this run and append a history
//!   record instead of comparing;
//! * `--inject-slowdown ALGO:FACTOR` — scale the measured wall clock of
//!   one algorithm (test hook for the wall gate itself); under
//!   `--conformance` it additionally runs that algorithm's cell through a
//!   real per-launch straggler so the drift detector sees the slowdown;
//! * `--conformance` — after the measurement table, replay every cell with
//!   a live [`obs::Conformance`] tracker attached and print its report:
//!   the online (w, Λ) fit must converge to the configured machine within
//!   the tracker's tolerance (the fit regresses counter-derived model
//!   units, so this is deterministic), and a fault-free pass must raise
//!   **zero** drift alerts. With `--inject-slowdown ALGO:FACTOR` the pass
//!   must instead trip **exactly one** `cusum` drift alert on the injected
//!   algorithm's cell, emit the matching flight-recorder event, and dump
//!   one post-mortem bundle (into `--conformance-dir`) that passes
//!   [`obs::flight::validate`] — exiting nonzero on any other outcome;
//! * `--conformance-dir DIR` — where the injected-drift bundle goes
//!   (default `.`);
//! * `--validate-history PATH` — parse a history file and check its
//!   invariants (schema tag, strictly increasing `seq`, non-decreasing
//!   `unix_ms`), then exit.
//!
//! ## Tolerance policy
//!
//! Deterministic metrics — coalesced ops, stride ops, barrier steps and
//! the modeled cost `C/w + S + Λ(B+1)` they imply — are compared
//! **exactly**: any drift is a semantic change, not noise. Wall clock is
//! noisy and host-dependent, so each cell's median-of-`K` is divided by a
//! fixed CPU calibration loop timed in the same process, and only that
//! normalized ratio is compared, within `--tolerance`.
//!
//! Besides the `SatAlgorithm` cells, two named execution-mode cells run
//! at every size: `1R1W-persist` (persistent blocks, one launch total)
//! and `1R1W-fleet4` (the serving layer's banded decomposition on a real
//! four-device fleet; its deterministic columns are checked against the
//! closed-form banded model and its `modeled(u)` column is the fleet
//! *critical-path* cost).

use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gpu_exec::{Device, DeviceFleet, DeviceOptions, FaultPlan, FleetOptions};
use hmm_model::cost::{CostCounters, GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use obs::json::JsonValue;
use obs::profile::CostModel;
use obs::Obs;
use sat_bench::{
    bench_device, flag_value, parsed_flag, run_fleet_banded, run_persistent, run_real,
};
use serde::Serialize;

const PERF_SCHEMA: &str = "sat-hmm/bench-perf/v1";
const HISTORY_SCHEMA: &str = "sat-hmm/bench-history/v1";
/// The persistent-block 1R1W cell name (a named execution mode of 1R1W,
/// not a `SatAlgorithm` variant).
const PERSIST_NAME: &str = "1R1W-persist";
/// The banded-fleet 1R1W cell name: the same decomposition the serving
/// layer shards, run on a real four-device fleet.
const FLEET_NAME: &str = "1R1W-fleet4";
const FLEET_SHARDS: usize = 4;

/// The canonical perf snapshot (`BENCH_perf.json`).
#[derive(Serialize)]
struct PerfFile {
    schema: String,
    width: usize,
    runs: usize,
    /// Median seconds of the fixed calibration loop on the generating host.
    calibration_seconds: f64,
    host: Host,
    entries: Vec<PerfEntry>,
}

#[derive(Serialize)]
struct Host {
    os: String,
    arch: String,
    cpus: usize,
}

/// One (algorithm, n) cell of the benchmark matrix.
#[derive(Serialize, Clone)]
struct PerfEntry {
    algorithm: String,
    n: usize,
    /// Deterministic transaction counters from the measured run.
    coalesced_ops: u64,
    stride_ops: u64,
    barrier_steps: u64,
    /// The paper's global access cost on those counters, in time units.
    modeled_cost_units: f64,
    /// Per-phase attribution totals reconstructed from the launch trace
    /// (`obs::profile::attribution_from_trace`); `launches` is the row
    /// count, `modeled_cost_units` the report's recomputed total.
    attribution: Attribution,
    wall: WallStats,
}

#[derive(Serialize, Clone)]
struct Attribution {
    launches: usize,
    modeled_cost_units: f64,
}

#[derive(Serialize, Clone)]
struct WallStats {
    runs: usize,
    median_seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
    /// `median_seconds` divided by the host's calibration median — the
    /// only wall metric the gate compares.
    normalized: f64,
}

/// One appended line of `BENCH_history.jsonl`.
#[derive(Serialize)]
struct HistoryRecord {
    schema: String,
    /// Strictly increasing per file; `--validate-history` enforces it.
    seq: u64,
    unix_ms: u64,
    commit: String,
    width: usize,
    calibration_seconds: f64,
    entries: Vec<HistoryEntry>,
}

#[derive(Serialize)]
struct HistoryEntry {
    algorithm: String,
    n: usize,
    normalized_wall: f64,
    modeled_cost_units: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(path) = flag_value(&args, "--validate-history") {
        return validate_history(&path);
    }

    let sizes: Vec<usize> = flag_value(&args, "--sizes")
        .unwrap_or_else(|| "128,256".to_string())
        .split(',')
        .map(|s| s.trim().parse().unwrap_or(0))
        .collect();
    let width: usize = parsed_flag(&args, "--width", 32);
    let runs: usize = parsed_flag(&args, "--runs", 5).max(1);
    let baseline_path = flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_perf.json".into());
    let history_path =
        flag_value(&args, "--history").unwrap_or_else(|| "BENCH_history.jsonl".into());
    let tolerance: f64 = parsed_flag(&args, "--tolerance", 0.6);
    let write = args.iter().any(|a| a == "--write");
    let conformance = args.iter().any(|a| a == "--conformance");
    let conformance_dir = flag_value(&args, "--conformance-dir").unwrap_or_else(|| ".".into());
    let inject = match flag_value(&args, "--inject-slowdown").map(|s| parse_injection(&s)) {
        Some(Err(e)) => {
            eprintln!("error: --inject-slowdown: {e}");
            return ExitCode::from(2);
        }
        Some(Ok(pair)) => Some(pair),
        None => None,
    };
    if sizes.iter().any(|&n| n == 0 || n % width != 0) {
        eprintln!("error: --sizes must be positive multiples of --width {width}");
        return ExitCode::from(2);
    }

    let calibration_seconds = calibrate();
    println!(
        "benchdiff — w = {width}, sizes {sizes:?}, {runs} runs/cell, calibration {:.4} s",
        calibration_seconds
    );

    let cfg = MachineConfig::with_width(width);
    let mut entries = Vec::new();
    println!(
        "{:<11} {:>6} | {:>12} {:>9} {:>9} | {:>12} | {:>12} {:>8}",
        "algorithm", "n", "coalesced", "stride", "barriers", "modeled(u)", "wall med(s)", "norm"
    );
    let record = |mut e: PerfEntry, entries: &mut Vec<PerfEntry>| {
        if let Some((ref name, factor)) = inject {
            if e.algorithm.eq_ignore_ascii_case(name) {
                e.wall.median_seconds *= factor;
                e.wall.min_seconds *= factor;
                e.wall.max_seconds *= factor;
                e.wall.normalized *= factor;
            }
        }
        println!(
            "{:<11} {:>6} | {:>12} {:>9} {:>9} | {:>12.1} | {:>12.6} {:>8.3}",
            e.algorithm,
            e.n,
            e.coalesced_ops,
            e.stride_ops,
            e.barrier_steps,
            e.modeled_cost_units,
            e.wall.median_seconds,
            e.wall.normalized
        );
        entries.push(e);
    };
    for &n in &sizes {
        for alg in SatAlgorithm::ALL {
            record(
                measure_cell(cfg, alg, n, runs, calibration_seconds),
                &mut entries,
            );
        }
        record(
            measure_persistent_cell(cfg, n, runs, calibration_seconds),
            &mut entries,
        );
        record(
            measure_fleet_cell(cfg, n, runs, calibration_seconds),
            &mut entries,
        );
    }

    // The persistent gate: at every benchmarked size, the persistent cell's
    // modeled barrier term `Λ·(B + 1)` must be *strictly* below
    // launch-per-stage 1R1W's — that term is the whole point of the mode.
    let lam = cfg.window_overhead() as f64;
    let mut barrier_failures = Vec::new();
    for &n in &sizes {
        let staged = entries
            .iter()
            .find(|e| e.algorithm == SatAlgorithm::OneR1W.name() && e.n == n)
            .expect("1R1W is always measured");
        let pers = entries
            .iter()
            .find(|e| e.algorithm == PERSIST_NAME && e.n == n)
            .expect("the persistent cell is always measured");
        let staged_term = lam * (staged.barrier_steps + 1) as f64;
        let pers_term = lam * (pers.barrier_steps + 1) as f64;
        if pers_term < staged_term {
            println!(
                "persistent barrier term at n = {n}: {pers_term:.0} u vs staged {staged_term:.0} u \
                 ({:.1}x cheaper)",
                staged_term / pers_term
            );
        } else {
            barrier_failures.push(format!(
                "n = {n}: persistent barrier term {pers_term:.0} u is not strictly below \
                 staged 1R1W's {staged_term:.0} u"
            ));
        }
    }
    if !barrier_failures.is_empty() {
        for f in &barrier_failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "benchdiff: FAIL ({} persistent barrier-term violation(s))",
            barrier_failures.len()
        );
        return ExitCode::FAILURE;
    }

    if conformance && !conformance_pass(cfg, &sizes, inject.as_ref(), Path::new(&conformance_dir)) {
        eprintln!("benchdiff: FAIL (model conformance)");
        return ExitCode::FAILURE;
    }

    let perf = PerfFile {
        schema: PERF_SCHEMA.to_string(),
        width,
        runs,
        calibration_seconds,
        host: Host {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
        },
        entries,
    };

    if write {
        return write_baseline(&perf, &baseline_path, &history_path);
    }
    compare(&perf, &baseline_path, tolerance)
}

/// Parse `ALGO:FACTOR` (e.g. `1r1w:2.0`).
fn parse_injection(s: &str) -> Result<(String, f64), String> {
    let (name, factor) = s
        .split_once(':')
        .ok_or_else(|| format!("expected ALGO:FACTOR, got {s:?}"))?;
    let factor: f64 = factor
        .parse()
        .map_err(|_| format!("unparsable factor {factor:?}"))?;
    if !name.eq_ignore_ascii_case(PERSIST_NAME)
        && !name.eq_ignore_ascii_case(FLEET_NAME)
        && SatAlgorithm::ALL
            .iter()
            .all(|a| !a.name().eq_ignore_ascii_case(name))
    {
        return Err(format!("unknown algorithm {name:?}"));
    }
    Ok((name.to_string(), factor))
}

/// The canonical cell name `--inject-slowdown`'s (case-insensitive)
/// algorithm refers to, so the injected run lands in the same conformance
/// cell phase A baselined.
fn canonical_name(name: &str) -> Option<String> {
    if name.eq_ignore_ascii_case(PERSIST_NAME) {
        return Some(PERSIST_NAME.to_string());
    }
    SatAlgorithm::ALL
        .iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .map(|a| a.name().to_string())
}

/// The `--conformance` pass. Phase A replays every (algorithm, n) cell —
/// plus the persistent mode — on tracker-attached devices until each cell
/// has a frozen τ baseline and a healthy post-baseline EWMA, which also
/// feeds the online (w, Λ) fit. Phase B (only with `--inject-slowdown`)
/// reruns the injected algorithm's cell behind a real per-launch straggler
/// sized from the measured healthy launch wall — floored at 50 µs/launch so
/// the detector's signal sits far above scheduler noise — and must trip
/// exactly one `cusum` drift alert, whose flight event then rides the
/// dumped post-mortem bundle.
fn conformance_pass(
    cfg: MachineConfig,
    sizes: &[usize],
    inject: Option<&(String, f64)>,
    dir: &Path,
) -> bool {
    let injected_cell_name = match inject {
        Some((name, _)) => match canonical_name(name) {
            Some(c) => Some(c),
            None => {
                eprintln!(
                    "conformance: --inject-slowdown {name:?} is not a conformance cell \
                     (fleet cells are not covered)"
                );
                return false;
            }
        },
        None => None,
    };

    let obs = Obs::new();
    let registry = obs.registry().expect("enabled observer has a registry");
    let mut ccfg = obs::ConformanceConfig::for_machine(cfg.width as u64, cfg.window_overhead());
    // Short baselines freeze every cell quickly; the widened slack keeps
    // the onset channel quiet under scheduler noise (a loaded host can
    // stretch a healthy launch a few-fold) while the injected straggler
    // below sits at ≥20× and still trips within a handful of launches.
    ccfg.baseline_samples = 8;
    ccfg.drift_slack = 4.0;
    let tracker = obs::Conformance::with_registry(ccfg, &registry, "sat_service_");
    let gc = GlobalCost::new(cfg);

    type Runner<'a> = Box<dyn Fn(&Device) + 'a>;
    let cells_for = |n: usize| -> Vec<(String, Runner)> {
        let mut cells: Vec<(String, Runner)> = Vec::new();
        for alg in SatAlgorithm::ALL {
            if alg == SatAlgorithm::FourR1W && n > 1024 {
                continue;
            }
            let r = if alg == SatAlgorithm::HybridR1W {
                gc.optimal_r(n)
            } else {
                0.0
            };
            cells.push((
                alg.name().to_string(),
                Box::new(move |d: &Device| {
                    run_real(d, alg, r, n);
                }),
            ));
        }
        cells.push((
            PERSIST_NAME.to_string(),
            Box::new(move |d: &Device| {
                run_persistent(d, n);
            }),
        ));
        cells
    };

    // Phase A: healthy replays until every cell's baseline froze and a
    // post-baseline EWMA exists. Also measures the injected cell's healthy
    // per-launch wall, to size the phase-B straggler.
    let mut injected_launch_secs = f64::INFINITY;
    for &n in sizes {
        for (name, run) in cells_for(n) {
            let label = obs::conformance::cell_label(&name, n, n);
            let dev = Device::new(
                DeviceOptions::new(cfg)
                    .workers(0)
                    .observer(obs.clone())
                    .conformance(tracker.clone()),
            );
            dev.set_conformance_cell(Some(label.clone()));
            for _ in 0..20 {
                let launches_before = dev.launches();
                let tick = Instant::now();
                run(&dev);
                let secs = tick.elapsed().as_secs_f64();
                let launches = dev.launches() - launches_before;
                if injected_cell_name.as_deref() == Some(name.as_str()) && launches > 0 {
                    injected_launch_secs = injected_launch_secs.min(secs / launches as f64);
                }
                let samples = tracker
                    .cells()
                    .iter()
                    .find(|c| c.cell == label)
                    .map_or(0, |c| c.samples);
                if samples >= 16 {
                    break;
                }
            }
        }
    }

    // Phase B: the injected slowdown, as a real straggler on every launch.
    if let Some((_, factor)) = inject {
        let name = injected_cell_name.as_deref().expect("resolved above");
        let n = sizes[0];
        let label = obs::conformance::cell_label(name, n, n);
        let extra = (injected_launch_secs * (factor - 1.0)).max(50e-6);
        let plan = FaultPlan::new(7).straggler(1.0, Duration::from_secs_f64(extra));
        let dev = Device::new(
            DeviceOptions::new(cfg)
                .workers(0)
                .observer(obs.clone())
                .conformance(tracker.clone())
                .fault_plan(plan),
        );
        dev.set_conformance_cell(Some(label.clone()));
        let (_, run) = cells_for(n)
            .into_iter()
            .find(|(c, _)| c == name)
            .expect("the injected cell is always replayed");
        for _ in 0..10 {
            run(&dev);
            if tracker.alert_count() > 0 {
                break;
            }
        }
        println!(
            "conformance: injected {:.1}x slowdown on {label} \
             ({:.1} µs straggler per launch)",
            factor,
            extra * 1e6
        );
    }

    // The report, fit cross-check, and the drift-alert contract.
    let fit = tracker.fit();
    let tol = tracker.config().fit_tolerance;
    println!(
        "conformance: fitted w {:.3} / Λ {:.2} vs configured {} / {} \
         (rms {:.4}, {} samples, converged {})",
        fit.width,
        fit.window_overhead,
        cfg.width,
        cfg.window_overhead(),
        fit.residual_rms,
        fit.samples,
        fit.converged
    );
    let alerts = tracker.alerts();
    for a in &alerts {
        println!(
            "conformance: drift alert — {} via {} (τ ratio {:.2} over {} samples)",
            a.cell, a.channel, a.ratio, a.samples
        );
    }
    let mut ok = true;
    // The fit regresses counter-derived model units, so wall-time
    // injection leaves it untouched: it must recover the machine in both
    // modes.
    if !fit.matches(cfg.width as u64, cfg.window_overhead(), tol) {
        eprintln!(
            "conformance: online fit does not recover the configured machine \
             (w {:.3} vs {}, Λ {:.2} vs {}, tol {tol})",
            fit.width,
            cfg.width,
            fit.window_overhead,
            cfg.window_overhead()
        );
        ok = false;
    }
    match inject {
        None => {
            if !alerts.is_empty() {
                eprintln!(
                    "conformance: a fault-free pass raised {} drift alert(s)",
                    alerts.len()
                );
                ok = false;
            }
        }
        Some(_) => {
            let name = injected_cell_name.as_deref().expect("resolved above");
            let expected = obs::conformance::cell_label(name, sizes[0], sizes[0]);
            if alerts.len() != 1 || alerts[0].channel != "cusum" || alerts[0].cell != expected {
                eprintln!(
                    "conformance: injected slowdown must trip exactly one cusum alert \
                     on {expected} (got {alerts:?})"
                );
                return false;
            }
            // The alert's flight event rides a dumped bundle, which must
            // round-trip the validator.
            let trigger = obs::flight::Trigger {
                reason: "drift".to_string(),
                request: 0,
                detail: format!(
                    "injected drift: {} via {} (τ ratio {:.2})",
                    alerts[0].cell, alerts[0].channel, alerts[0].ratio
                ),
            };
            match obs::flight::dump(&obs, dir, "conformance-drift", &trigger) {
                Ok(path) => {
                    let checked = std::fs::read_to_string(&path)
                        .map_err(|e| e.to_string())
                        .and_then(|text| {
                            if !text.contains("\"kind\":\"drift_alert\"") {
                                return Err("bundle lacks the drift_alert flight event".into());
                            }
                            obs::flight::validate(&text)
                        });
                    match checked {
                        Ok(stats) => println!(
                            "conformance: drift bundle {} validates ({} events)",
                            path.display(),
                            stats.events
                        ),
                        Err(e) => {
                            eprintln!("conformance: drift bundle {} invalid: {e}", path.display());
                            ok = false;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("conformance: cannot dump drift bundle into {dir:?}: {e}");
                    ok = false;
                }
            }
        }
    }
    ok
}

/// Median seconds of a fixed, allocation-free integer loop. Dividing the
/// measured wall clocks by this folds away absolute host speed, so a
/// baseline generated on one machine gates runs on another.
fn calibrate() -> f64 {
    let spin = || {
        let start = Instant::now();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..1 << 24 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
        start.elapsed().as_secs_f64()
    };
    let mut t: Vec<f64> = (0..5).map(|_| spin()).collect();
    t.sort_by(f64::total_cmp);
    t[t.len() / 2]
}

/// Measure one cell: `runs` timed executions on a bare sequential device
/// (median wall), one traced execution for the attribution totals.
fn measure_cell(
    cfg: MachineConfig,
    alg: SatAlgorithm,
    n: usize,
    runs: usize,
    calibration: f64,
) -> PerfEntry {
    let gc = GlobalCost::new(cfg);
    let r = if alg == SatAlgorithm::HybridR1W {
        gc.optimal_r(n)
    } else {
        0.0
    };
    measure_named_cell(cfg, alg.name(), n, runs, calibration, &|dev| {
        run_real(dev, alg, r, n)
    })
}

/// Measure the persistent-block 1R1W cell — same harness, different driver.
fn measure_persistent_cell(
    cfg: MachineConfig,
    n: usize,
    runs: usize,
    calibration: f64,
) -> PerfEntry {
    measure_named_cell(cfg, PERSIST_NAME, n, runs, calibration, &|dev| {
        run_persistent(dev, n)
    })
}

/// Measure the banded-fleet 1R1W cell: the serving layer's shard
/// decomposition on a real four-device fleet. The deterministic columns
/// come from the closed-form banded model — merged device counters must
/// reproduce its coalesced/stride totals exactly, and the fleet must
/// issue exactly `total_launches()` kernel launches. `barrier_steps`
/// stores the launch-normalized total (launches − 1): per-device barrier
/// counters partition the work differently than a single device would,
/// so launch counts are the comparable quantity. `modeled_cost_units` is
/// the *critical-path* cost — the quantity the fleet actually buys down.
fn measure_fleet_cell(cfg: MachineConfig, n: usize, runs: usize, calibration: f64) -> PerfEntry {
    let model = GlobalCost::new(cfg)
        .banded_1r1w_exact_counts(n, n, FLEET_SHARDS)
        .expect("benchmarked sizes are width-aligned");
    let expect = model.total();

    let fleet = DeviceFleet::new(FleetOptions::new(
        DeviceOptions::new(cfg).workers(0),
        FLEET_SHARDS,
    ));
    let mut walls = Vec::with_capacity(runs);
    let mut measured = None;
    for _ in 0..runs {
        let (stats, secs, launches) = run_fleet_banded(&fleet, n);
        walls.push(secs);
        measured = Some((stats, launches));
    }
    let (stats, launches) = measured.expect("runs >= 1");
    walls.sort_by(f64::total_cmp);
    let median = walls[walls.len() / 2];

    assert_eq!(
        stats.coalesced_reads + stats.coalesced_writes,
        expect.coalesced_reads + expect.coalesced_writes,
        "{FLEET_NAME} n={n}: merged coalesced ops diverge from the banded model"
    );
    assert_eq!(
        stats.stride_reads + stats.stride_writes,
        expect.stride_reads + expect.stride_writes,
        "{FLEET_NAME} n={n}: merged stride ops diverge from the banded model"
    );
    assert_eq!(
        launches,
        model.total_launches(),
        "{FLEET_NAME} n={n}: fleet launch count diverges from the banded model"
    );

    // One traced execution with every device reporting into a single
    // recorder; the trace-side attribution must agree with the devices'
    // own counters (two independent observation paths).
    let obs = Obs::new();
    let traced = DeviceFleet::new(FleetOptions::new(
        DeviceOptions::new(cfg).workers(0).observer(obs.clone()),
        FLEET_SHARDS,
    ));
    run_fleet_banded(&traced, n);
    let report = obs::profile::attribution_from_trace(
        &obs,
        CostModel {
            width: cfg.width as u64,
            window_overhead: cfg.window_overhead(),
        },
    );
    let total = report.total();
    assert_eq!(
        total.coalesced_ops,
        stats.coalesced_reads + stats.coalesced_writes,
        "{FLEET_NAME} n={n}: attribution and device counters diverged"
    );

    PerfEntry {
        algorithm: FLEET_NAME.to_string(),
        n,
        coalesced_ops: stats.coalesced_reads + stats.coalesced_writes,
        stride_ops: stats.stride_reads + stats.stride_writes,
        barrier_steps: expect.barrier_steps,
        modeled_cost_units: model.critical_path_cost(&cfg),
        attribution: Attribution {
            launches: report.rows.len(),
            modeled_cost_units: total.modeled_cost,
        },
        wall: WallStats {
            runs,
            median_seconds: median,
            min_seconds: walls[0],
            max_seconds: *walls.last().unwrap(),
            normalized: median / calibration,
        },
    }
}

/// The shared cell harness behind [`measure_cell`] /
/// [`measure_persistent_cell`]: `runs` timed executions (median wall), one
/// traced execution for the attribution totals, which must agree with the
/// device's own counters (two independent observation paths).
fn measure_named_cell(
    cfg: MachineConfig,
    name: &str,
    n: usize,
    runs: usize,
    calibration: f64,
    run: &dyn Fn(&Device) -> (CostCounters, f64),
) -> PerfEntry {
    let dev = bench_device(cfg);
    let mut walls = Vec::with_capacity(runs);
    let mut stats = None;
    for _ in 0..runs {
        let (s, secs) = run(&dev);
        walls.push(secs);
        stats = Some(s);
    }
    let stats = stats.expect("runs >= 1");
    walls.sort_by(f64::total_cmp);
    let median = walls[walls.len() / 2];

    let obs = Obs::new();
    let traced = Device::new(DeviceOptions::new(cfg).workers(0).observer(obs.clone()));
    run(&traced);
    let report = obs::profile::attribution_from_trace(
        &obs,
        CostModel {
            width: cfg.width as u64,
            window_overhead: cfg.window_overhead(),
        },
    );
    let total = report.total();
    assert_eq!(
        total.coalesced_ops,
        stats.coalesced_reads + stats.coalesced_writes,
        "{name} n={n}: attribution and device counters diverged"
    );

    PerfEntry {
        algorithm: name.to_string(),
        n,
        coalesced_ops: stats.coalesced_reads + stats.coalesced_writes,
        stride_ops: stats.stride_reads + stats.stride_writes,
        barrier_steps: stats.barrier_steps,
        modeled_cost_units: stats.global_cost(&cfg),
        attribution: Attribution {
            launches: report.rows.len(),
            modeled_cost_units: total.modeled_cost,
        },
        wall: WallStats {
            runs,
            median_seconds: median,
            min_seconds: walls[0],
            max_seconds: *walls.last().unwrap(),
            normalized: median / calibration,
        },
    }
}

fn write_baseline(perf: &PerfFile, baseline_path: &str, history_path: &str) -> ExitCode {
    let json = serde_json::to_string_pretty(perf).expect("serializable perf file");
    if let Err(e) = std::fs::write(baseline_path, json + "\n") {
        eprintln!("error: writing {baseline_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {baseline_path} ({} entries)", perf.entries.len());

    let next_seq = match last_history_seq(history_path) {
        Ok(seq) => seq + 1,
        Err(e) => {
            eprintln!("error: {history_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let record = HistoryRecord {
        schema: HISTORY_SCHEMA.to_string(),
        seq: next_seq,
        unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64),
        commit: current_commit(),
        width: perf.width,
        calibration_seconds: perf.calibration_seconds,
        entries: perf
            .entries
            .iter()
            .map(|e| HistoryEntry {
                algorithm: e.algorithm.clone(),
                n: e.n,
                normalized_wall: e.wall.normalized,
                modeled_cost_units: e.modeled_cost_units,
            })
            .collect(),
    };
    let line = serde_json::to_string(&record).expect("serializable history record");
    let mut contents = std::fs::read_to_string(history_path).unwrap_or_default();
    if !contents.is_empty() && !contents.ends_with('\n') {
        contents.push('\n');
    }
    contents.push_str(&line);
    contents.push('\n');
    if let Err(e) = std::fs::write(history_path, contents) {
        eprintln!("error: appending to {history_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("appended seq {next_seq} to {history_path}");
    ExitCode::SUCCESS
}

/// Largest `seq` already in the history file (0 when absent/empty).
fn last_history_seq(path: &str) -> Result<u64, String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(0);
    };
    let mut last = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let seq = v
            .get("seq")
            .and_then(|s| s.as_f64())
            .ok_or_else(|| format!("line {}: missing seq", i + 1))? as u64;
        last = last.max(seq);
    }
    Ok(last)
}

/// `BENCH_COMMIT` env override, else `git rev-parse --short HEAD`, else
/// `"unknown"` — the history stays appendable outside a git checkout.
fn current_commit() -> String {
    if let Ok(c) = std::env::var("BENCH_COMMIT") {
        return c;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Compare the fresh measurement against the committed baseline. Exits
/// nonzero naming every regressed metric.
fn compare(perf: &PerfFile, baseline_path: &str, tolerance: f64) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading baseline {baseline_path}: {e} (generate one with --write)");
            return ExitCode::FAILURE;
        }
    };
    let base = match JsonValue::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: baseline {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if base.get("schema").and_then(|s| s.as_str()) != Some(PERF_SCHEMA) {
        eprintln!("error: baseline {baseline_path} lacks schema {PERF_SCHEMA:?}");
        return ExitCode::FAILURE;
    }
    let base_width = base.get("width").and_then(|w| w.as_f64()).unwrap_or(0.0) as usize;
    if base_width != perf.width {
        eprintln!(
            "error: baseline width {base_width} != current width {} (re-baseline with --write)",
            perf.width
        );
        return ExitCode::FAILURE;
    }
    let empty: [JsonValue; 0] = [];
    let base_entries = base
        .get("entries")
        .and_then(|e| e.as_array())
        .unwrap_or(&empty);

    println!(
        "\ncomparing {} cells against {baseline_path} (wall tolerance ±{:.0}%)",
        perf.entries.len(),
        tolerance * 100.0
    );
    let mut failures = Vec::new();
    for e in &perf.entries {
        let Some(b) = base_entries.iter().find(|b| {
            b.get("algorithm").and_then(|a| a.as_str()) == Some(e.algorithm.as_str())
                && b.get("n").and_then(|n| n.as_f64()) == Some(e.n as f64)
        }) else {
            failures.push(format!(
                "{} n={}: no baseline entry (add it with --write)",
                e.algorithm, e.n
            ));
            continue;
        };
        let num = |key: &str| b.get(key).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
        // Deterministic metrics: exact.
        for (metric, cur, basev) in [
            (
                "coalesced_ops",
                e.coalesced_ops as f64,
                num("coalesced_ops"),
            ),
            ("stride_ops", e.stride_ops as f64, num("stride_ops")),
            (
                "barrier_steps",
                e.barrier_steps as f64,
                num("barrier_steps"),
            ),
            (
                "modeled_cost_units",
                e.modeled_cost_units,
                num("modeled_cost_units"),
            ),
        ] {
            if cur != basev {
                failures.push(format!(
                    "REGRESSION {} n={}: {metric} {cur} vs baseline {basev} (deterministic metric must match exactly)",
                    e.algorithm, e.n
                ));
            }
        }
        // Wall clock: normalized ratio within the tolerance band.
        let base_norm = b
            .get("wall")
            .and_then(|w| w.get("normalized"))
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::NAN);
        let cur_norm = e.wall.normalized;
        // A NaN baseline must fail the gate, so test for being *within*
        // the band and negate the boolean.
        let within = (cur_norm - base_norm).abs() <= tolerance * base_norm;
        if !within {
            failures.push(format!(
                "REGRESSION {} n={}: normalized_wall {cur_norm:.3} vs baseline {base_norm:.3} ({:+.1}% outside ±{:.0}%)",
                e.algorithm,
                e.n,
                (cur_norm / base_norm - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }

    if failures.is_empty() {
        println!("benchdiff: OK — no regressions");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("benchdiff: FAIL ({} regressed metric(s))", failures.len());
        ExitCode::FAILURE
    }
}

/// `--validate-history`: every line parses, carries the history schema,
/// `seq` strictly increases and `unix_ms` never decreases.
fn validate_history(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut prev_seq: Option<u64> = None;
    let mut prev_ms: Option<u64> = None;
    let mut records = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {path}:{lineno}: invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        if v.get("schema").and_then(|s| s.as_str()) != Some(HISTORY_SCHEMA) {
            eprintln!("error: {path}:{lineno}: schema is not {HISTORY_SCHEMA:?}");
            return ExitCode::FAILURE;
        }
        let (Some(seq), Some(ms)) = (
            v.get("seq").and_then(|s| s.as_f64()).map(|s| s as u64),
            v.get("unix_ms").and_then(|s| s.as_f64()).map(|s| s as u64),
        ) else {
            eprintln!("error: {path}:{lineno}: missing seq / unix_ms");
            return ExitCode::FAILURE;
        };
        if v.get("commit").and_then(|c| c.as_str()).is_none() {
            eprintln!("error: {path}:{lineno}: missing commit");
            return ExitCode::FAILURE;
        }
        if prev_seq.is_some_and(|p| seq <= p) {
            eprintln!(
                "error: {path}:{lineno}: seq {seq} does not increase (previous {})",
                prev_seq.unwrap()
            );
            return ExitCode::FAILURE;
        }
        if prev_ms.is_some_and(|p| ms < p) {
            eprintln!(
                "error: {path}:{lineno}: unix_ms {ms} went backwards (previous {})",
                prev_ms.unwrap()
            );
            return ExitCode::FAILURE;
        }
        prev_seq = Some(seq);
        prev_ms = Some(ms);
        records += 1;
    }
    println!("{path}: ok — {records} record(s), monotone seq and timestamps");
    ExitCode::SUCCESS
}
