//! `loadgen` — drive the `sat-service` batch-forming serving layer with
//! many client threads and record its serving profile.
//!
//! ```sh
//! cargo run --release -p sat-bench --bin loadgen -- \
//!     [--threads 16] [--requests 64] [--n 64] [--width 32] [--rate 0] \
//!     [--max-batch 16] [--linger-us 500] [--mixed] [--shards 1] \
//!     [--min-model-speedup 0] [--json BENCH_service.json] \
//!     [--trace trace.json] [--metrics-snapshot metrics.prom]
//! ```
//!
//! Each of `--threads` client threads submits `--requests` SAT requests of
//! an `--n × --n` matrix (with `--mixed`, shapes alternate so the batch
//! former must segregate groups), optionally throttled to `--rate`
//! requests/second per thread. Every response is verified **bit-equal**
//! against `sat_core::compute_sat` on an independent device. The summary —
//! throughput, p50/p95/p99 latency, mean batch width, and kernel launches
//! issued vs. what per-request execution would have cost — is printed and
//! always written as one JSON object (default `BENCH_service.json`).
//!
//! With `--trace PATH` the run is observed: the Chrome trace is written to
//! PATH, validated with [`obs::chrome::validate`], and required to contain
//! at least one complete request flow chain (admit → batch → launch →
//! complete linked by flow arrows). With `--metrics-snapshot PATH` the
//! final Prometheus exposition (exemplars included) is written to PATH and
//! parsed *strictly*: any metric family missing from
//! [`sat_bench::known_metric_families`] fails the run.
//!
//! With `--check-conformance` the run additionally gates on the model
//! observatory: the online (w, Λ) fit must converge to the configured
//! machine within its tolerance and the run must raise zero drift alerts
//! — the fault-free conformance gate in `scripts/check.sh`.
//!
//! With `--shards D` (D > 1) the service serves over a [`DeviceFleet`]:
//! each 1R1W request is decomposed into row bands work-stolen by D
//! independent fault domains. The record then carries the per-shard launch
//! counters plus the closed-form fleet model at the nominal `--n`: the
//! D-band critical-path launch count and cost versus single-device
//! (`hmm_model::cost::BandedCounts`), whose ratio is `model_speedup`. The
//! fleet gate requires the critical-path launch count to genuinely scale
//! (fewer launches per shard than one device pays alone), and
//! `--min-model-speedup X` additionally requires `model_speedup >= X` —
//! `scripts/check.sh` pins `>= 3` at `n = 512, w = 4, D = 4`.
//!
//! Exits nonzero on any result mismatch, rejected request, trace
//! validation failure, or fleet-gate failure, so it doubles as the
//! serving-layer smoke gate in `scripts/check.sh`.
//!
//! [`DeviceFleet`]: gpu_exec::DeviceFleet

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gpu_exec::{Device, DeviceOptions};
use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_bench::{flag_value, parsed_flag, unknown_families};
use sat_core::{compute_sat, Matrix};
use sat_service::{LatencySummary, Service, ServiceConfig, ServiceStats};
use serde::{Deserialize, Serialize};

/// The record `BENCH_service.json` holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServingRecord {
    threads: usize,
    requests_per_thread: usize,
    n: usize,
    width: usize,
    mixed_shapes: bool,
    rate_per_thread: f64,
    max_batch: usize,
    linger_us: u64,
    wall_seconds: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_latency_ms: f64,
    queue_p99_ms: f64,
    mean_batch_width: f64,
    batch_width_hist: Vec<u64>,
    launches_issued: u64,
    launches_unbatched_equiv: u64,
    launch_reduction: f64,
    barrier_windows_saved: u64,
    completed: u64,
    rejected: u64,
    mismatches: u64,
    /// Fleet shape: 1 = single device (the shard fields below stay
    /// empty/zero), D > 1 = banded fleet serving.
    shards: usize,
    /// Per-shard launch counters as issued by the fleet router.
    shard_launches: Vec<u64>,
    max_shard_launches: u64,
    /// Closed-form critical-path launches for one `--n × --n` image:
    /// single device vs. the D-band fleet decomposition.
    model_single_launches: u64,
    model_fleet_launches: u64,
    /// Closed-form critical-path cost ratio (single / fleet) at `--n`.
    model_speedup: f64,
    /// Online model-conformance fit at the end of the run.
    model_fit_converged: bool,
    model_fitted_width: f64,
    model_fitted_window_overhead: f64,
    model_residual_rms: f64,
    /// Drift alerts the observatory raised during the run.
    model_drift_alerts: u64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = parsed_flag(&args, "--threads", 16);
    let requests: usize = parsed_flag(&args, "--requests", 64);
    let n: usize = parsed_flag(&args, "--n", 64);
    let width: usize = parsed_flag(&args, "--width", 32);
    let rate: f64 = parsed_flag(&args, "--rate", 0.0);
    let max_batch: usize = parsed_flag(&args, "--max-batch", 16);
    let linger_us: u64 = parsed_flag(&args, "--linger-us", 500);
    let mixed = args.iter().any(|a| a == "--mixed");
    let shards: usize = parsed_flag(&args, "--shards", 1);
    let check_conformance = args.iter().any(|a| a == "--check-conformance");
    let min_model_speedup: f64 = parsed_flag(&args, "--min-model-speedup", 0.0);
    let json_path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_service.json".into());
    let trace_path = flag_value(&args, "--trace");
    let snapshot_path = flag_value(&args, "--metrics-snapshot");

    let machine = MachineConfig::with_width(width);
    // Request pool: a few distinct images with their expected SATs,
    // precomputed on an independent verification device.
    let verify_dev = Device::new(DeviceOptions::new(machine).workers(0).record_stats(false));
    let shapes: Vec<(usize, usize)> = if mixed {
        vec![(n, n), (n / 2, n), (n, n / 2), (n / 2, n / 2)]
    } else {
        vec![(n, n)]
    };
    let pool: Vec<(Matrix<f64>, Matrix<f64>)> = (0..8usize)
        .map(|k| {
            let (rows, cols) = shapes[k % shapes.len()];
            let img = Matrix::from_fn(rows.max(1), cols.max(1), |i, j| {
                ((i.wrapping_mul(2654435761) ^ j.wrapping_mul(40503) ^ k) % 256) as f64
            });
            let want = compute_sat(&verify_dev, SatAlgorithm::OneR1W, &img);
            (img, want)
        })
        .collect();

    // Tracing is opt-in: an observed run pays for span/flow recording, an
    // unobserved one keeps the serving profile honest.
    let observer = if trace_path.is_some() {
        obs::Obs::new()
    } else {
        obs::Obs::disabled()
    };
    let service = Service::start(ServiceConfig {
        machine,
        device_workers: None,
        queue_capacity: (threads * 4).max(64),
        max_batch,
        max_linger: Duration::from_micros(linger_us),
        default_deadline: Duration::from_secs(60),
        observer: observer.clone(),
        shards,
        ..ServiceConfig::default()
    });

    println!(
        "loadgen: {threads} threads x {requests} requests, {n}x{n} (mixed: {mixed}), \
         w = {width}, max batch {max_batch}, linger {linger_us} us, shards {shards}"
    );
    let mismatches = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let client = service.client();
            let pool = &pool;
            let mismatches = &mismatches;
            let rejected = &rejected;
            s.spawn(move || {
                let interval = if rate > 0.0 {
                    Some(Duration::from_secs_f64(1.0 / rate))
                } else {
                    None
                };
                for k in 0..requests {
                    let tick = Instant::now();
                    let (img, want) = &pool[(t * requests + k) % pool.len()];
                    match client.submit(img.clone(), SatAlgorithm::OneR1W, None) {
                        Ok(table) => {
                            if table.sat().as_slice() != want.as_slice() {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(iv) = interval {
                        let used = tick.elapsed();
                        if used < iv {
                            std::thread::sleep(iv - used);
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let metrics_snapshot = snapshot_path.as_ref().map(|_| service.metrics_text());
    let fit = service.conformance().fit();
    let drift_alerts = service.conformance().alerts();
    let stats: ServiceStats = service.shutdown();

    // Closed-form fleet model at the nominal image size: the D-band
    // decomposition's critical-path launches and cost versus what a
    // single-device service actually runs per image — the paper's 1R1W
    // wavefront (`GlobalCost::one_r1w`), not the fleet's mirror variant.
    let gc = GlobalCost::new(machine);
    let pn = n.max(1).next_multiple_of(width);
    let (model_speedup, model_single_launches, model_fleet_launches) = match (
        gc.exact_counts(SatAlgorithm::OneR1W, pn),
        gc.banded_1r1w_exact_counts(pn, pn, shards),
    ) {
        (Some(single), Some(fleet)) => (
            gc.cost(SatAlgorithm::OneR1W, pn) / fleet.critical_path_cost(&machine),
            single.barrier_steps + 1,
            fleet.critical_path_launches(),
        ),
        _ => (1.0, 0, 0),
    };

    let record = ServingRecord {
        threads,
        requests_per_thread: requests,
        n,
        width,
        mixed_shapes: mixed,
        rate_per_thread: rate,
        max_batch,
        linger_us,
        wall_seconds: wall,
        throughput_rps: stats.completed as f64 / wall,
        p50_ms: stats.total_latency.p50_ms,
        p95_ms: stats.total_latency.p95_ms,
        p99_ms: stats.total_latency.p99_ms,
        mean_latency_ms: stats.total_latency.mean_ms,
        queue_p99_ms: stats.queue_latency.p99_ms,
        mean_batch_width: stats.mean_batch_width(),
        batch_width_hist: stats.batch_width_hist.clone(),
        launches_issued: stats.launches_issued,
        launches_unbatched_equiv: stats.launches_unbatched_equiv,
        launch_reduction: stats.launch_reduction(),
        barrier_windows_saved: stats.barrier_windows_saved(),
        completed: stats.completed,
        rejected: rejected.load(Ordering::Relaxed),
        mismatches: mismatches.load(Ordering::Relaxed),
        shards,
        max_shard_launches: stats.shard_launches.iter().copied().max().unwrap_or(0),
        shard_launches: stats.shard_launches.clone(),
        model_single_launches,
        model_fleet_launches,
        model_speedup,
        model_fit_converged: fit.converged,
        model_fitted_width: fit.width,
        model_fitted_window_overhead: fit.window_overhead,
        model_residual_rms: fit.residual_rms,
        model_drift_alerts: drift_alerts.len() as u64,
    };

    println!();
    print_summary(&record, &stats.total_latency);
    let json = serde_json::to_string_pretty(&record).expect("serializable record");
    if let Err(e) = std::fs::write(&json_path, json + "\n") {
        eprintln!("loadgen: cannot write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {json_path}");

    if let (Some(path), Some(text)) = (&snapshot_path, &metrics_snapshot) {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        // Strict parse: a family the allow-list does not know about means
        // a metric was registered without updating the scrape schema.
        let unknown = unknown_families(text);
        if !unknown.is_empty() {
            eprintln!("loadgen: FAILED — snapshot has unknown metric families: {unknown:?}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} (metrics snapshot, strict parse ok)");
    }
    if let Some(path) = &trace_path {
        let json = observer.trace_json();
        if let Err(e) = obs::chrome::validate(&json) {
            eprintln!("loadgen: FAILED — trace does not validate: {e}");
            return ExitCode::FAILURE;
        }
        match trace_links_request_chain(&json) {
            Ok(id) => println!("trace links request {id} admit -> batch -> launch -> complete"),
            Err(e) => {
                eprintln!("loadgen: FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} (chrome trace)");
    }

    if record.mismatches > 0 || record.rejected > 0 {
        eprintln!(
            "loadgen: FAILED — {} mismatches, {} rejections",
            record.mismatches, record.rejected
        );
        return ExitCode::FAILURE;
    }
    if check_conformance {
        let tol =
            obs::ConformanceConfig::for_machine(machine.width as u64, machine.window_overhead())
                .fit_tolerance;
        println!(
            "conformance: fitted w {:.3} / Λ {:.2} vs configured {} / {} \
             (rms {:.4}, {} samples, converged {}), {} drift alert(s)",
            fit.width,
            fit.window_overhead,
            machine.width,
            machine.window_overhead(),
            fit.residual_rms,
            fit.samples,
            fit.converged,
            drift_alerts.len()
        );
        if !fit.converged || !fit.matches(machine.width as u64, machine.window_overhead(), tol) {
            eprintln!(
                "loadgen: FAILED — online fit does not recover the configured machine \
                 within tolerance {tol}"
            );
            return ExitCode::FAILURE;
        }
        if !drift_alerts.is_empty() {
            eprintln!("loadgen: FAILED — fault-free run raised drift alerts: {drift_alerts:?}");
            return ExitCode::FAILURE;
        }
    }
    if shards > 1 {
        // Launch-count scaling: the fleet's critical path must be strictly
        // shorter than what one device pays for the same image.
        if record.model_fleet_launches >= record.model_single_launches {
            eprintln!(
                "loadgen: FAILED — {} critical-path launches across {} shards \
                 does not beat {} on one device",
                record.model_fleet_launches, shards, record.model_single_launches
            );
            return ExitCode::FAILURE;
        }
        if min_model_speedup > 0.0 && record.model_speedup < min_model_speedup {
            eprintln!(
                "loadgen: FAILED — closed-form fleet speedup {:.2}x below the \
                 required {min_model_speedup:.2}x",
                record.model_speedup
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Require at least one request id whose flow arrows span the whole chain:
/// a Start at admission, Steps through batch dispatch and device launch,
/// and an End at completion. Returns one qualifying request id.
fn trace_links_request_chain(json: &str) -> Result<u64, String> {
    let parsed = obs::json::JsonValue::parse(json).map_err(|e| format!("trace parse: {e}"))?;
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "trace has no traceEvents array".to_string())?;
    // id -> (saw Start, Step count, saw End)
    let mut chains: std::collections::HashMap<u64, (bool, usize, bool)> =
        std::collections::HashMap::new();
    for e in events {
        let Some(ph) = e.get("ph").and_then(|p| p.as_str()) else {
            continue;
        };
        if !matches!(ph, "s" | "t" | "f") {
            continue;
        }
        let Some(id) = e.get("id").and_then(|i| i.as_f64()) else {
            continue;
        };
        let entry = chains.entry(id as u64).or_default();
        match ph {
            "s" => entry.0 = true,
            "t" => entry.1 += 1,
            _ => entry.2 = true,
        }
    }
    chains
        .iter()
        .filter(|(_, (start, steps, end))| *start && *steps >= 2 && *end)
        .map(|(id, _)| *id)
        .max()
        .ok_or_else(|| {
            "no request id carries a complete admit -> batch -> launch -> complete flow chain"
                .to_string()
        })
}

fn print_summary(r: &ServingRecord, total: &LatencySummary) {
    println!(
        "served {} requests in {:.3} s  ->  {:.0} req/s",
        r.completed, r.wall_seconds, r.throughput_rps
    );
    println!(
        "latency (ms): mean {:.3}  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}",
        total.mean_ms, total.p50_ms, total.p95_ms, total.p99_ms, total.max_ms
    );
    println!(
        "batches: mean width {:.2}, histogram {:?}",
        r.mean_batch_width, r.batch_width_hist
    );
    println!(
        "launches: {} issued vs {} per-request equivalent  ->  {:.1}x fewer \
         ({} barrier windows saved)",
        r.launches_issued, r.launches_unbatched_equiv, r.launch_reduction, r.barrier_windows_saved
    );
    if r.shards > 1 {
        println!(
            "fleet: {} shards, launches per shard {:?} (max {}), \
             model critical path {} vs {} single-device launches, \
             model speedup {:.2}x",
            r.shards,
            r.shard_launches,
            r.max_shard_launches,
            r.model_fleet_launches,
            r.model_single_launches,
            r.model_speedup
        );
    }
}
