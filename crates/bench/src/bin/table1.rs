//! Regenerate **Table I**: global/shared memory access operations, barrier
//! synchronisation steps and the global memory access cost per SAT
//! algorithm — the paper's closed forms next to counters measured from real
//! executions on the virtual GPU.
//!
//! ```sh
//! cargo run --release -p sat-bench --bin table1 [-- --n 1024] [--json t1.jsonl]
//! ```

use hmm_model::cost::{GlobalCost, SatAlgorithm};
use hmm_model::MachineConfig;
use sat_bench::{bench_device, maybe_write_json, parsed_flag, run_real, units_to_ms, AlgoRecord};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = parsed_flag(&args, "--n", 1024);
    let cfg = MachineConfig::gtx780ti();
    let gc = GlobalCost::new(cfg);
    let dev = bench_device(cfg);

    println!("TABLE I — memory access operations and global memory access cost");
    println!(
        "machine: w = {}, Λ = {} time units/window; matrix: {n} x {n}\n",
        cfg.width,
        cfg.window_overhead()
    );
    println!(
        "{:<11} | {:>13} {:>13} | {:>13} {:>13} | {:>10} | {:>14} {:>14}",
        "algorithm",
        "coal.R meas",
        "coal.R pred",
        "str.R meas",
        "str.R pred",
        "barriers",
        "cost meas",
        "cost pred"
    );
    println!("{}", "-".repeat(126));

    let mut records: Vec<AlgoRecord> = Vec::new();
    for alg in SatAlgorithm::ALL {
        let r = if alg == SatAlgorithm::HybridR1W {
            gc.optimal_r(n)
        } else {
            0.0
        };
        let row = gc.table_one_row(alg, n);
        if alg == SatAlgorithm::FourR1W && n > 1024 {
            println!(
                "{:<11} | {:>13} {:>13.0} | {:>13} {:>13.0} | {:>10.0} | {:>14} {:>14.0}",
                alg.name(),
                "—",
                row.coalesced_reads,
                "—",
                row.stride_reads,
                row.barrier_steps,
                "—",
                row.cost
            );
            continue;
        }
        let (s, secs) = run_real(&dev, alg, r, n);
        let cost = s.global_cost(&cfg);
        println!(
            "{:<11} | {:>13} {:>13.0} | {:>13} {:>13.0} | {:>10} | {:>14.0} {:>14.0}",
            alg.name(),
            s.coalesced_reads,
            row.coalesced_reads,
            s.stride_reads,
            row.stride_reads,
            s.barrier_steps,
            cost,
            row.cost
        );
        records.push(AlgoRecord {
            algorithm: alg.name().to_string(),
            n,
            measured: true,
            cost_units: cost,
            cost_ms: units_to_ms(cost),
            reads_per_elt: s.reads_per_element(n),
            writes_per_elt: s.writes_per_element(n),
            barriers: s.barrier_steps as f64,
            hybrid_r: r,
            host_seconds: Some(secs),
        });
    }

    println!("\nper-element traffic (measured):");
    println!(
        "{:<11} {:>8} {:>8} {:>12} {:>12}",
        "algorithm", "R/elt", "W/elt", "shared R/elt", "shared W/elt"
    );
    for alg in SatAlgorithm::ALL {
        if alg == SatAlgorithm::FourR1W && n > 1024 {
            continue;
        }
        let r = if alg == SatAlgorithm::HybridR1W {
            gc.optimal_r(n)
        } else {
            0.0
        };
        let (s, _) = run_real(&dev, alg, r, n);
        let n2 = (n * n) as f64;
        println!(
            "{:<11} {:>8.3} {:>8.3} {:>12.3} {:>12.3}",
            alg.name(),
            s.reads_per_element(n),
            s.writes_per_element(n),
            s.shared_reads as f64 / n2,
            s.shared_writes as f64 / n2,
        );
    }
    maybe_write_json(&args, &records);
}
